"""Time-unit-flow: float seconds must not cross a ticks boundary.

The repo's timebase is integer microseconds (``Ticks``); the per-file
``float-timestamp-eq`` rule polices comparisons, but it cannot see a
float-seconds value handed to a *function defined in another file*
whose parameter is named ``*_us`` / ``*_ticks``.  That silent
1e6-scale unit error is exactly the cross-file gap this rule closes:

* phase 1 records every call whose argument *looks like* seconds
  (``timestamp``, ``ts``, ``deadline``, a float literal, ...),
* phase 2 resolves the callee through the import bindings to its
  defining module, maps the argument onto the callee's parameter
  list (dataclass constructors use their field names), and
* flags the call when the receiving parameter's name says it wants
  integer microseconds, attaching the callee definition as a
  related location.

Calls that cannot be resolved inside the model (stdlib, third party)
are left alone — the rule only speaks when both sides of the edge
are in view.
"""

from __future__ import annotations

from typing import Iterator

from ...findings import Finding, RelatedLocation, Severity
from ...project import (TICK_NAME_RE, ModuleSummary, ProjectModel,
                        callable_params)
from ...registry import CrossFileRule, register


@register
class TimeUnitFlowRule(CrossFileRule):
    """Float-seconds arguments bound to ``*_us``/``*_ticks`` params."""

    rule_id = "time-unit-flow"
    description = ("flag float-seconds-shaped arguments that bind "
                   "to an integer-microsecond parameter of a "
                   "callable defined in another module — a silent "
                   "1e6-scale unit error")
    severity = Severity.ERROR
    version = 1

    def check_module(self, model: ProjectModel,
                     summary: ModuleSummary) -> Iterator[Finding]:
        for call in summary.suspect_calls:
            resolved = model.resolve_callable(summary.module,
                                              call.callee)
            if resolved is None:
                continue
            target_module, info = resolved
            positional, kwonly = callable_params(info)
            for arg in call.suspect:
                if arg.keyword is not None:
                    if arg.keyword not in positional \
                            and arg.keyword not in kwonly:
                        continue
                    param = arg.keyword
                elif arg.position is not None \
                        and arg.position < len(positional):
                    param = positional[arg.position]
                else:
                    continue
                if not TICK_NAME_RE.search(param):
                    continue
                target = model.summaries[target_module]
                yield Finding(
                    path=summary.path, line=call.lineno,
                    col=call.col, rule_id=self.rule_id,
                    message=(f"{arg.desc} flows into integer-"
                             f"microsecond parameter `{param}` of "
                             f"`{target_module}.{info.name}` — "
                             "convert with round(seconds * 1_000_"
                             "000) (or Ticks helpers) before the "
                             "call"),
                    severity=self.severity,
                    related=(RelatedLocation(
                        path=target.path, line=info.lineno,
                        message=f"`{info.name}` defined here; "
                                f"`{param}` is integer "
                                "microseconds"),))
