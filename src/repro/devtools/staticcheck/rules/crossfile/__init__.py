"""Cross-file rules (phase 2): run against the project model.

Importing this package registers the four whole-program rule
families: shard-safety, schema-drift, deprecation-expiry and
time-unit-flow.
"""

from . import (deprecation, schemadrift, shardsafety,  # noqa: F401
               timeflow)
