"""Built-in staticcheck rules.

Importing this package registers every built-in rule with the
registry; adding a module here (and importing it below) is all a new
rule needs to appear in ``repro lint``.
"""

from . import (consistency, crossfile, determinism,  # noqa: F401
               hygiene, structfmt)
