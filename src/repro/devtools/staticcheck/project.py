"""Phase 1 of the whole-program pass: the project model.

The per-file rules see one AST at a time; the cross-file rules (shard
safety, schema drift, deprecation expiry, time-unit flow) need to see
the program.  This module reduces every source file to a compact
:class:`ModuleSummary` — imports, symbol tables, dataclass field
inventories, module-level mutable state, ``DeprecationWarning`` sites
and a call-edge approximation — and assembles the summaries into a
:class:`ProjectModel` with an import graph over them.

Summaries are pure data (JSON round-trippable), so the engine caches
them per file alongside the per-file findings.  The model derives a
*deep digest* per module — a hash over the module's own summary plus
the summaries of everything it transitively imports — which is what
makes cross-file result caching dependency-aware: editing
``iec104/constants.py`` changes the deep digest of every module that
imports it, however indirectly, even though their mtimes are
untouched.  The mtime-only cache cannot see that.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

#: Names whose call mutates the receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "appendleft",
    "extendleft", "sort", "reverse",
})

#: Constructors of mutable containers (module-level state suspects).
_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque",
    "Counter", "OrderedDict",
})

#: Identifier shapes that smell like a float-seconds timestamp.  Kept
#: in sync with the per-file ``float-timestamp-eq`` rule; the
#: cross-file ``time-unit-flow`` rule consumes the classification the
#: extractor bakes into :class:`SuspectArg`.
TIME_NAME_RE = re.compile(
    r"(?:^|_)(?:time(?:stamp)?s?|ts|now|deadline|seconds)(?:_|$)"
    r"|_s$|^t\d$")

#: Integer-microsecond tick names — the canonical timebase, exempt.
TICK_NAME_RE = re.compile(r"(?:_us|_ticks)$|^ticks?$")

#: ``# staticcheck: remove-in=X.Y[.Z]`` next to a deprecation site.
_REMOVE_IN_RE = re.compile(
    r"#\s*staticcheck:\s*remove-in=(?P<version>\d+(?:\.\d+)*)")


@dataclass(frozen=True)
class FieldInfo:
    """One dataclass field (name + annotation source text)."""

    name: str
    annotation: str
    lineno: int


@dataclass(frozen=True)
class ClassInfo:
    """One top-level class: dataclass flags, fields, JSON keys.

    ``json_keys`` maps a serializer method name (``to_json`` /
    ``as_dict``) to the string keys of the dict literal it returns;
    a method whose return is not a plain dict literal with constant
    keys is recorded with ``complete=False`` so rules skip it rather
    than reason from a partial key set.
    """

    name: str
    lineno: int
    is_dataclass: bool = False
    frozen: bool = False
    slots: bool = False
    bases: tuple[str, ...] = ()
    fields: tuple[FieldInfo, ...] = ()
    json_keys: tuple["JsonMethod", ...] = ()


@dataclass(frozen=True)
class JsonMethod:
    """Keys emitted by one serializer method of a class."""

    method: str
    lineno: int
    keys: tuple[str, ...] = ()
    complete: bool = True


@dataclass(frozen=True)
class FunctionInfo:
    """Callable signature approximation (positional + kw-only names)."""

    name: str
    qualname: str
    lineno: int
    params: tuple[str, ...] = ()
    kwonly: tuple[str, ...] = ()


@dataclass(frozen=True)
class MutationSite:
    """One statement that mutates a module-level container."""

    lineno: int
    col: int
    how: str


@dataclass(frozen=True)
class MutableGlobal:
    """A module-level mutable container and its in-function mutations."""

    name: str
    lineno: int
    col: int
    kind: str
    mutations: tuple[MutationSite, ...] = ()


@dataclass(frozen=True)
class DeprecationSite:
    """One ``warnings.warn(..., DeprecationWarning)`` call."""

    owner: str
    lineno: int
    col: int
    remove_in: str | None = None


@dataclass(frozen=True)
class SuspectArg:
    """A float-seconds-shaped argument at a call site."""

    position: int | None
    keyword: str | None
    desc: str


@dataclass(frozen=True)
class CallInfo:
    """A call carrying at least one :class:`SuspectArg`."""

    callee: str
    lineno: int
    col: int
    suspect: tuple[SuspectArg, ...] = ()


@dataclass(frozen=True)
class ClosureArg:
    """A lambda or locally-defined function passed as a call argument.

    Neither survives pickling (locals have no importable qualified
    name), so the shard-safety rule uses these records to flag
    factories that would have to cross a process boundary.
    """

    callee: str
    kind: str
    lineno: int
    col: int
    position: int | None = None
    keyword: str | None = None


@dataclass(frozen=True)
class ModuleSummary:
    """Everything phase 2 knows about one module."""

    module: str
    path: str
    digest: str
    imports: tuple[str, ...] = ()
    #: local name -> (module, symbol or None for module bindings)
    bindings: tuple[tuple[str, str, str | None], ...] = ()
    functions: tuple[FunctionInfo, ...] = ()
    classes: tuple[ClassInfo, ...] = ()
    mutable_globals: tuple[MutableGlobal, ...] = ()
    deprecations: tuple[DeprecationSite, ...] = ()
    suspect_calls: tuple[CallInfo, ...] = ()
    closure_args: tuple[ClosureArg, ...] = ()
    #: terminal callee name -> (line, col) occurrences, for the
    #: deprecation call-site inventory.
    call_names: tuple[tuple[str, tuple[tuple[int, int], ...]], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return _encode(self)

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "ModuleSummary":
        return _decode_summary(raw)

    def binding_map(self) -> dict[str, tuple[str, str | None]]:
        return {name: (module, symbol)
                for name, module, symbol in self.bindings}

    def function(self, name: str) -> FunctionInfo | None:
        for info in self.functions:
            if info.qualname == name:
                return info
        return None

    def class_named(self, name: str) -> ClassInfo | None:
        for info in self.classes:
            if info.name == name:
                return info
        return None


# -- summary (de)serialisation ---------------------------------------

def _encode(obj: Any) -> Any:
    if isinstance(obj, tuple):
        return [_encode(item) for item in obj]
    if hasattr(obj, "__dataclass_fields__"):
        return {name: _encode(getattr(obj, name))
                for name in obj.__dataclass_fields__}
    return obj


def _tup(items: Any, decode) -> tuple:
    return tuple(decode(item) for item in items)


def _decode_summary(raw: Mapping[str, Any]) -> ModuleSummary:
    return ModuleSummary(
        module=raw["module"], path=raw["path"], digest=raw["digest"],
        imports=tuple(raw["imports"]),
        bindings=tuple((n, m, s) for n, m, s in raw["bindings"]),
        functions=_tup(raw["functions"], lambda f: FunctionInfo(
            name=f["name"], qualname=f["qualname"],
            lineno=f["lineno"], params=tuple(f["params"]),
            kwonly=tuple(f["kwonly"]))),
        classes=_tup(raw["classes"], _decode_class),
        mutable_globals=_tup(
            raw["mutable_globals"], lambda g: MutableGlobal(
                name=g["name"], lineno=g["lineno"], col=g["col"],
                kind=g["kind"],
                mutations=_tup(g["mutations"], lambda m: MutationSite(
                    lineno=m["lineno"], col=m["col"], how=m["how"])))),
        deprecations=_tup(raw["deprecations"], lambda d:
                          DeprecationSite(
                              owner=d["owner"], lineno=d["lineno"],
                              col=d["col"],
                              remove_in=d["remove_in"])),
        suspect_calls=_tup(raw["suspect_calls"], lambda c: CallInfo(
            callee=c["callee"], lineno=c["lineno"], col=c["col"],
            suspect=_tup(c["suspect"], lambda a: SuspectArg(
                position=a["position"], keyword=a["keyword"],
                desc=a["desc"])))),
        closure_args=_tup(
            raw.get("closure_args", ()), lambda a: ClosureArg(
                callee=a["callee"], kind=a["kind"],
                lineno=a["lineno"], col=a["col"],
                position=a["position"], keyword=a["keyword"])),
        call_names=tuple(
            (name, tuple((line, col) for line, col in spots))
            for name, spots in raw["call_names"]),
    )


def _decode_class(raw: Mapping[str, Any]) -> ClassInfo:
    return ClassInfo(
        name=raw["name"], lineno=raw["lineno"],
        is_dataclass=raw["is_dataclass"], frozen=raw["frozen"],
        slots=raw["slots"], bases=tuple(raw["bases"]),
        fields=_tup(raw["fields"], lambda f: FieldInfo(
            name=f["name"], annotation=f["annotation"],
            lineno=f["lineno"])),
        json_keys=_tup(raw["json_keys"], lambda m: JsonMethod(
            method=m["method"], lineno=m["lineno"],
            keys=tuple(m["keys"]), complete=m["complete"])))


# -- AST helpers -----------------------------------------------------

def _dotted(expr: ast.expr) -> str:
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _terminal(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _mutable_kind(expr: ast.expr) -> str | None:
    """Describe a mutable container initializer, or ``None``."""
    if isinstance(expr, ast.List):
        return "list literal"
    if isinstance(expr, ast.Dict):
        return "dict literal"
    if isinstance(expr, (ast.Set, ast.SetComp, ast.ListComp,
                         ast.DictComp)):
        return "set/comprehension"
    if isinstance(expr, ast.Call):
        name = _terminal(expr.func)
        if name in _MUTABLE_CALLS:
            return f"{name}()"
    return None


def _is_timey_expr(expr: ast.expr) -> str | None:
    """Describe a float-seconds-shaped expression, or ``None``."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, float):
        return f"float literal {expr.value!r}"
    name = _terminal(expr)
    if name is None:
        return None
    if TICK_NAME_RE.search(name):
        return None
    if TIME_NAME_RE.search(name):
        return f"`{_dotted(expr) or name}`"
    return None


def _resolve_relative(package: str, module: str | None,
                      level: int) -> str | None:
    """Absolute dotted module for a (possibly relative) import."""
    if level == 0:
        return module
    parts = package.split(".") if package else []
    if level - 1 > len(parts):
        return None
    base = parts[:len(parts) - (level - 1)]
    if module:
        base.append(module)
    return ".".join(base) if base else None


def _dataclass_flags(node: ast.ClassDef) -> tuple[bool, bool, bool]:
    """(is_dataclass, frozen, slots) from the decorator list."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = _terminal(target)
        if name != "dataclass":
            continue
        frozen = slots = False
        if isinstance(decorator, ast.Call):
            for kw in decorator.keywords:
                if not isinstance(kw.value, ast.Constant):
                    continue
                if kw.arg == "frozen":
                    frozen = bool(kw.value.value)
                elif kw.arg == "slots":
                    slots = bool(kw.value.value)
        return True, frozen, slots
    return False, False, False


def _annotation_text(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.10+
        return ""


def _json_methods(node: ast.ClassDef) -> Iterator[JsonMethod]:
    for stmt in node.body:
        if not isinstance(stmt, ast.FunctionDef) \
                or stmt.name not in ("to_json", "as_dict"):
            continue
        returns = [sub for sub in ast.walk(stmt)
                   if isinstance(sub, ast.Return)
                   and sub.value is not None]
        keys: list[str] = []
        complete = len(returns) == 1
        for ret in returns:
            value = ret.value
            if isinstance(value, ast.Dict) and all(
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    for key in value.keys):
                keys.extend(key.value for key in value.keys
                            if isinstance(key, ast.Constant))
            else:
                complete = False
        yield JsonMethod(method=stmt.name, lineno=stmt.lineno,
                         keys=tuple(keys), complete=complete)


def _params(node: ast.FunctionDef | ast.AsyncFunctionDef,
            method: bool) -> tuple[tuple[str, ...], tuple[str, ...]]:
    args = node.args
    positional = [arg.arg for arg in args.posonlyargs + args.args]
    if method and positional and positional[0] in ("self", "cls"):
        positional = positional[1:]
    return tuple(positional), tuple(a.arg for a in args.kwonlyargs)


class _Extractor(ast.NodeVisitor):
    """Single-pass walk collecting every summary ingredient."""

    def __init__(self, module: str, source: str, package: str):
        self.module = module
        self.lines = source.splitlines()
        self.package = package
        self.imports: set[str] = set()
        self.bindings: dict[str, tuple[str, str | None]] = {}
        self.functions: list[FunctionInfo] = []
        self.classes: list[ClassInfo] = []
        self.globals: dict[str, MutableGlobal] = {}
        self.mutations: dict[str, list[MutationSite]] = {}
        self.deprecations: list[DeprecationSite] = []
        self.suspect_calls: list[CallInfo] = []
        self.closure_args: list[ClosureArg] = []
        self.call_names: dict[str, list[tuple[int, int]]] = {}
        self._scope: list[str] = []
        #: One set of locally-defined function names per enclosing
        #: *function* scope (closure candidates for calls inside it).
        self._local_funcs: list[set[str]] = []

    # imports -----------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.imports.add(alias.name)
            local = alias.asname or alias.name.partition(".")[0]
            bound = alias.name if alias.asname else \
                alias.name.partition(".")[0]
            self.bindings[local] = (bound, None)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        resolved = _resolve_relative(self.package, node.module,
                                     node.level)
        if resolved:
            self.imports.add(resolved)
            for alias in node.names:
                local = alias.asname or alias.name
                if alias.name == "*":
                    continue
                self.bindings[local] = (resolved, alias.name)
                # ``from pkg import mod``: the imported name may be
                # a submodule.  Record the dotted candidate; the
                # model narrows it onto a known module and a plain
                # symbol candidate falls back to ``resolved``.
                self.imports.add(f"{resolved}.{alias.name}")
        self.generic_visit(node)

    # module-level state ------------------------------------------

    def _record_global(self, target: ast.expr,
                       value: ast.expr | None) -> None:
        if value is None or not isinstance(target, ast.Name):
            return
        kind = _mutable_kind(value)
        if kind is not None:
            self.globals[target.id] = MutableGlobal(
                name=target.id, lineno=target.lineno,
                col=target.col_offset + 1, kind=kind)

    # defs --------------------------------------------------------

    def _visit_def(self, node: ast.FunctionDef
                   | ast.AsyncFunctionDef) -> None:
        method = bool(self._scope)
        positional, kwonly = _params(node, method)
        qualname = ".".join([*self._scope, node.name])
        if len(self._scope) <= 1:
            self.functions.append(FunctionInfo(
                name=node.name, qualname=qualname,
                lineno=node.lineno, params=positional,
                kwonly=kwonly))
        if self._local_funcs:
            # Defined inside another function: a closure candidate.
            self._local_funcs[-1].add(node.name)
        self._scope.append(node.name)
        self._local_funcs.append(set())
        self.generic_visit(node)
        self._local_funcs.pop()
        self._scope.pop()

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._scope:
            is_dc, frozen, slots = _dataclass_flags(node)
            fields = tuple(
                FieldInfo(name=stmt.target.id,
                          annotation=_annotation_text(stmt.annotation),
                          lineno=stmt.lineno)
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name))
            self.classes.append(ClassInfo(
                name=node.name, lineno=node.lineno,
                is_dataclass=is_dc, frozen=frozen, slots=slots,
                bases=tuple(filter(None, (_dotted(base)
                                          for base in node.bases))),
                fields=fields,
                json_keys=tuple(_json_methods(node))))
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    # mutation tracking -------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self.mutations.setdefault(name, []).append(MutationSite(
                lineno=node.lineno, col=node.col_offset + 1,
                how="rebound via `global`"))

    def _record_mutation(self, name: str, node: ast.AST,
                         how: str) -> None:
        if not self._scope:
            return  # import-time population is per-process, fine
        self.mutations.setdefault(name, []).append(MutationSite(
            lineno=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1, how=how))

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._scope:
            for target in node.targets:
                self._record_global(target, node.value)
        for target in node.targets:
            self._check_subscript_store(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self._scope:
            self._record_global(node.target, node.value)
        self._check_subscript_store(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_subscript_store(node.target)
        if isinstance(node.target, ast.Name):
            self._record_mutation(node.target.id, node,
                                  "augmented assignment")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_subscript_store(target)
        self.generic_visit(node)

    def _check_subscript_store(self, target: ast.expr) -> None:
        if isinstance(target, ast.Subscript) \
                and isinstance(target.value, ast.Name):
            self._record_mutation(target.value.id, target,
                                  "item assignment")

    # calls -------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        callee = _dotted(node.func)
        terminal = _terminal(node.func)
        if terminal:
            self.call_names.setdefault(terminal, []).append(
                (node.lineno, node.col_offset + 1))
            if terminal in _MUTATOR_METHODS \
                    and isinstance(node.func, ast.Attribute) \
                    and isinstance(node.func.value, ast.Name):
                self._record_mutation(
                    node.func.value.id, node, f"{terminal}() call")
        if terminal == "warn" and self._is_deprecation(node):
            owner = ".".join(self._scope) or "<module>"
            self.deprecations.append(DeprecationSite(
                owner=owner, lineno=node.lineno,
                col=node.col_offset + 1,
                remove_in=self._remove_in(node)))
        if callee:
            suspects = self._suspect_args(node)
            if suspects:
                self.suspect_calls.append(CallInfo(
                    callee=callee, lineno=node.lineno,
                    col=node.col_offset + 1, suspect=suspects))
            self._record_closure_args(callee, node)
        self.generic_visit(node)

    def _closure_kind(self, expr: ast.expr) -> str | None:
        """Describe an unpicklable callable argument, or ``None``."""
        if isinstance(expr, ast.Lambda):
            return "a lambda"
        if isinstance(expr, ast.Name):
            for local_names in self._local_funcs:
                if expr.id in local_names:
                    return f"the local function `{expr.id}`"
        return None

    def _record_closure_args(self, callee: str,
                             node: ast.Call) -> None:
        for position, arg in enumerate(node.args):
            kind = self._closure_kind(arg)
            if kind:
                self.closure_args.append(ClosureArg(
                    callee=callee, kind=kind, lineno=arg.lineno,
                    col=arg.col_offset + 1, position=position))
        for kw in node.keywords:
            if kw.arg is None:
                continue
            kind = self._closure_kind(kw.value)
            if kind:
                self.closure_args.append(ClosureArg(
                    callee=callee, kind=kind, lineno=kw.value.lineno,
                    col=kw.value.col_offset + 1, keyword=kw.arg))

    @staticmethod
    def _is_deprecation(node: ast.Call) -> bool:
        exprs = list(node.args) + [kw.value for kw in node.keywords
                                   if kw.arg == "category"]
        return any(_terminal(expr) == "DeprecationWarning"
                   for expr in exprs)

    def _remove_in(self, node: ast.Call) -> str | None:
        first = max(node.lineno - 1, 1)
        last = node.end_lineno or node.lineno
        for lineno in range(first, last + 1):
            if lineno > len(self.lines):
                break
            match = _REMOVE_IN_RE.search(self.lines[lineno - 1])
            if match:
                return match.group("version")
        return None

    @staticmethod
    def _suspect_args(node: ast.Call) -> tuple[SuspectArg, ...]:
        found: list[SuspectArg] = []
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                continue
            desc = _is_timey_expr(arg)
            if desc:
                found.append(SuspectArg(position=position,
                                        keyword=None, desc=desc))
        for kw in node.keywords:
            if kw.arg is None:
                continue
            desc = _is_timey_expr(kw.value)
            if desc:
                found.append(SuspectArg(position=None,
                                        keyword=kw.arg, desc=desc))
        return tuple(found)


def extract_summary(path: str, source: str, tree: ast.Module,
                    module: str) -> ModuleSummary:
    """Reduce one parsed file to its :class:`ModuleSummary`."""
    # Relative imports resolve against the containing package: the
    # module itself for an ``__init__.py``, its parent otherwise.
    if path.endswith("__init__.py"):
        package = module
    else:
        package = module.rpartition(".")[0]
    extractor = _Extractor(module, source, package)
    extractor.visit(tree)
    mutable_globals = tuple(
        MutableGlobal(
            name=info.name, lineno=info.lineno, col=info.col,
            kind=info.kind,
            mutations=tuple(extractor.mutations.get(info.name, ())))
        for info in extractor.globals.values())
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return ModuleSummary(
        module=module, path=path, digest=digest,
        imports=tuple(sorted(extractor.imports)),
        bindings=tuple(sorted(
            (name, mod, sym)
            for name, (mod, sym) in extractor.bindings.items())),
        functions=tuple(extractor.functions),
        classes=tuple(extractor.classes),
        mutable_globals=mutable_globals,
        deprecations=tuple(extractor.deprecations),
        suspect_calls=tuple(extractor.suspect_calls),
        closure_args=tuple(extractor.closure_args),
        call_names=tuple(sorted(
            (name, tuple(spots))
            for name, spots in extractor.call_names.items())),
    )


class ProjectModel:
    """The import graph over a set of module summaries.

    All derived views (closures, deep digests, reachability) are
    memoized; the model is immutable once built.
    """

    def __init__(self, summaries: Mapping[str, ModuleSummary]):
        self.summaries: dict[str, ModuleSummary] = dict(summaries)
        #: module -> project modules it imports (edges inside model).
        self.graph: dict[str, frozenset[str]] = {}
        known = set(self.summaries)
        for name, summary in self.summaries.items():
            edges = set()
            for imported in summary.imports:
                resolved = self._narrow(imported, known)
                if resolved and resolved != name:
                    edges.add(resolved)
            self.graph[name] = frozenset(edges)
        self._closures: dict[str, frozenset[str]] = {}
        self._deep: dict[str, str] = {}

    @staticmethod
    def _narrow(imported: str, known: set[str]) -> str | None:
        """Map an imported dotted path onto a module in the model.

        ``import repro.netstack.pcap`` resolves directly; importing a
        package maps to its ``__init__`` module when that file is in
        the model under the package's dotted name.
        """
        candidate = imported
        while candidate:
            if candidate in known:
                return candidate
            candidate = candidate.rpartition(".")[0]
        return None

    def modules(self) -> list[str]:
        return sorted(self.summaries)

    def closure(self, module: str) -> frozenset[str]:
        """Transitive imports of ``module`` (module excluded)."""
        cached = self._closures.get(module)
        if cached is not None:
            return cached
        seen: set[str] = set()
        stack = list(self.graph.get(module, ()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.graph.get(current, ()))
        seen.discard(module)
        result = frozenset(seen)
        self._closures[module] = result
        return result

    def deep_digest(self, module: str) -> str:
        """Hash over the module's summary and its whole closure."""
        cached = self._deep.get(module)
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        members = sorted({module, *self.closure(module)})
        for member in members:
            summary = self.summaries.get(member)
            digest.update(member.encode())
            digest.update(b"\0")
            digest.update((summary.digest if summary else "").encode())
            digest.update(b"\0")
        result = digest.hexdigest()
        self._deep[module] = result
        return result

    def reachable_from(self, root: str) -> frozenset[str]:
        """Modules in ``root``'s package plus everything they import."""
        prefix = root + "."
        roots = [name for name in self.summaries
                 if name == root or name.startswith(prefix)]
        reachable: set[str] = set(roots)
        for name in roots:
            reachable |= self.closure(name)
        return frozenset(reachable)

    def resolve_callable(self, module: str, callee: str) -> \
            tuple[str, FunctionInfo | ClassInfo] | None:
        """Resolve a dotted call target through the import bindings.

        Handles ``f(...)`` (``from x import f``), ``mod.f(...)``
        (``import x as mod`` / ``from pkg import mod``) and
        ``Class(...)`` constructor calls (dataclass field names act
        as the parameter list).  Returns ``(defining_module, info)``
        or ``None`` when the target is outside the model.
        """
        summary = self.summaries.get(module)
        if summary is None:
            return None
        bindings = summary.binding_map()
        head, _, rest = callee.partition(".")
        target_module: str | None = None
        symbol: str | None = None
        if head in bindings:
            bound_module, bound_symbol = bindings[head]
            if bound_symbol is None:
                # A module binding: the rest names the symbol (one
                # attribute hop only — deeper chains are methods).
                if rest and "." not in rest:
                    target_module, symbol = bound_module, rest
                elif rest:
                    deeper, _, last = rest.rpartition(".")
                    target_module = f"{bound_module}.{deeper}"
                    symbol = last
            elif not rest:
                target_module, symbol = bound_module, bound_symbol
            elif "." not in rest:
                # ``from pkg import mod`` then ``mod.f(...)`` — the
                # bound name is a submodule when the model knows it.
                candidate = f"{bound_module}.{bound_symbol}"
                if candidate in self.summaries:
                    target_module, symbol = candidate, rest
        elif not rest:
            target_module, symbol = module, head
        if target_module is None or symbol is None:
            return None
        target = self.summaries.get(target_module)
        if target is None:
            return None
        info = target.function(symbol)
        if info is not None:
            return target_module, info
        cls = target.class_named(symbol)
        if cls is not None and cls.is_dataclass:
            return target_module, cls
        return None

    def call_sites(self, name: str,
                   limit: int = 5) -> list[tuple[str, int, int]]:
        """Up to ``limit`` call sites of ``name`` across the model."""
        sites: list[tuple[str, int, int]] = []
        for module in self.modules():
            summary = self.summaries[module]
            for called, spots in summary.call_names:
                if called != name:
                    continue
                for line, col in spots:
                    sites.append((summary.path, line, col))
        return sites[:limit]


def callable_params(info: FunctionInfo | ClassInfo
                    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """(positional, kw-only) parameter names of a resolved callable."""
    if isinstance(info, FunctionInfo):
        return info.params, info.kwonly
    return tuple(field.name for field in info.fields), ()


def summaries_digest(summaries: Mapping[str, ModuleSummary]) -> str:
    """One hash over every summary (whole-model cache key)."""
    digest = hashlib.sha256()
    for name in sorted(summaries):
        digest.update(name.encode())
        digest.update(b"\0")
        digest.update(summaries[name].digest.encode())
        digest.update(b"\0")
    return digest.hexdigest()


__all__ = [
    "CallInfo", "ClassInfo", "ClosureArg", "DeprecationSite",
    "FieldInfo", "FunctionInfo", "JsonMethod", "ModuleSummary",
    "MutableGlobal", "MutationSite", "ProjectModel", "SuspectArg",
    "TICK_NAME_RE", "TIME_NAME_RE", "callable_params",
    "extract_summary", "summaries_digest",
]
