"""The finding model shared by every staticcheck rule and reporter.

A :class:`Finding` is one diagnostic anchored to a ``file:line:col``
span.  Findings compare by location so reports are stable regardless of
rule execution order — determinism the project demands of its own
tooling as much as of the simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from pathlib import Path


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case name used by the text reporter."""
        return self.name.lower()

    @property
    def sarif_level(self) -> str:
        """SARIF 2.1.0 ``result.level`` value."""
        return {Severity.NOTE: "note",
                Severity.WARNING: "warning",
                Severity.ERROR: "error"}[self]


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by a rule.

    ``path`` is kept repo-relative by the engine so reports are
    machine-independent (and so suppression baselines, should we ever
    grow one, survive checkouts at different absolute paths).
    """

    path: str
    line: int
    col: int
    rule_id: str = field(compare=False)
    message: str = field(compare=False)
    severity: Severity = field(compare=False, default=Severity.ERROR)

    def render(self) -> str:
        """``path:line:col: severity rule-id: message`` (text reporter)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity.label} [{self.rule_id}] {self.message}")

    def relative_to(self, root: Path) -> "Finding":
        """Re-anchor ``path`` relative to ``root`` when it is inside."""
        try:
            rel = Path(self.path).resolve().relative_to(root.resolve())
        except ValueError:
            return self
        return replace(self, path=rel.as_posix())
