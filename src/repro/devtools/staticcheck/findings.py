"""The finding model shared by every staticcheck rule and reporter.

A :class:`Finding` is one diagnostic anchored to a ``file:line:col``
span.  Findings compare by location so reports are stable regardless of
rule execution order — determinism the project demands of its own
tooling as much as of the simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from pathlib import Path


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case name used by the text reporter."""
        return self.name.lower()

    @property
    def sarif_level(self) -> str:
        """SARIF 2.1.0 ``result.level`` value."""
        return {Severity.NOTE: "note",
                Severity.WARNING: "warning",
                Severity.ERROR: "error"}[self]


@dataclass(frozen=True)
class RelatedLocation:
    """A secondary anchor of a multi-file finding.

    Cross-file rules point at the *other* end of a relationship —
    the callee definition a float-seconds value flows into, the call
    sites of an expired deprecation — rendered as SARIF
    ``relatedLocations`` so code scanning links both ends.
    """

    path: str
    line: int
    message: str = ""

    def render(self) -> str:
        tail = f" ({self.message})" if self.message else ""
        return f"{self.path}:{self.line}{tail}"


def _relative_path(path: str, root: Path) -> str:
    try:
        return Path(path).resolve().relative_to(
            root.resolve()).as_posix()
    except ValueError:
        return path


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by a rule.

    ``path`` is kept repo-relative by the engine so reports are
    machine-independent and baseline fingerprints survive checkouts
    at different absolute paths.  ``related`` carries the secondary
    locations of cross-file findings (never part of identity).
    """

    path: str
    line: int
    col: int
    rule_id: str = field(compare=False)
    message: str = field(compare=False)
    severity: Severity = field(compare=False, default=Severity.ERROR)
    related: tuple[RelatedLocation, ...] = field(compare=False,
                                                default=())

    def render(self) -> str:
        """``path:line:col: severity rule-id: message`` (text reporter)."""
        text = (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity.label} [{self.rule_id}] {self.message}")
        for location in self.related:
            text += f"\n    related: {location.render()}"
        return text

    def relative_to(self, root: Path) -> "Finding":
        """Re-anchor ``path`` (and related paths) under ``root``."""
        return replace(
            self, path=_relative_path(self.path, root),
            related=tuple(replace(loc,
                                  path=_relative_path(loc.path, root))
                          for loc in self.related))
