"""The findings baseline: a ratchet for new, stricter rules.

A strict cross-file rule cannot land as a flag day on a tree that
already violates it.  The baseline grandfathers the *pre-existing*
findings — recorded by ``repro lint --update-baseline`` and committed
— so CI fails only on findings that are **new** relative to it.  The
ratchet only tightens: fixing a finding and re-recording shrinks the
baseline; nothing is ever added to it silently.

Findings are matched by a location-free fingerprint
``sha256(path | rule_id | message)`` so that unrelated edits moving a
finding a few lines do not un-grandfather it.  Identical findings
(same fingerprint, e.g. one message firing twice in a file) are
counted: the baseline allows up to the recorded count, and any excess
is new.

The file format is deliberately human-auditable JSON — each entry
repeats the path/rule/message next to its fingerprint so a reviewer
can see exactly what was waved through::

    {"version": 1,
     "entries": [{"fingerprint": "…", "count": 1,
                  "path": "repro/stream/x.py",
                  "rule": "shard-safety", "message": "…"}]}
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .findings import Finding

BASELINE_VERSION = 1

#: Conventional baseline location (repo root, committed).
DEFAULT_BASELINE_NAME = ".staticcheck-baseline.json"


def fingerprint(finding: Finding) -> str:
    """Location-free identity of one finding."""
    digest = hashlib.sha256()
    for part in (finding.path, finding.rule_id, finding.message):
        digest.update(part.encode("utf-8"))
        digest.update(b"\0")
    return digest.hexdigest()[:16]


@dataclass
class Baseline:
    """Grandfathered finding counts, keyed by fingerprint."""

    counts: dict[str, int] = field(default_factory=dict)
    #: fingerprint -> (path, rule, message) for the audit trail.
    detail: dict[str, tuple[str, str, str]] = field(
        default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline; a missing file is the empty baseline."""
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return cls()
        except (OSError, ValueError) as exc:
            raise ValueError(f"unreadable baseline {path}: {exc}") \
                from exc
        baseline = cls()
        for entry in raw.get("entries", []):
            key = entry["fingerprint"]
            baseline.counts[key] = int(entry.get("count", 1))
            baseline.detail[key] = (entry.get("path", ""),
                                    entry.get("rule", ""),
                                    entry.get("message", ""))
        return baseline

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            key = fingerprint(finding)
            baseline.counts[key] = baseline.counts.get(key, 0) + 1
            baseline.detail.setdefault(
                key, (finding.path, finding.rule_id, finding.message))
        return baseline

    def apply(self, findings: Sequence[Finding]
              ) -> tuple[list[Finding], int]:
        """Split findings into (new, grandfathered-count).

        Findings are consumed in report order, so when a fingerprint
        occurs more often than the baseline allows, the *later*
        occurrences are the new ones.
        """
        remaining = dict(self.counts)
        new: list[Finding] = []
        grandfathered = 0
        for finding in findings:
            key = fingerprint(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                grandfathered += 1
            else:
                new.append(finding)
        return new, grandfathered

    def save(self, path: Path) -> None:
        entries = [
            {"fingerprint": key, "count": count,
             "path": self.detail.get(key, ("", "", ""))[0],
             "rule": self.detail.get(key, ("", "", ""))[1],
             "message": self.detail.get(key, ("", "", ""))[2]}
            for key, count in sorted(self.counts.items())
        ]
        document = {"version": BASELINE_VERSION, "entries": entries}
        path.write_text(json.dumps(document, indent=2,
                                   sort_keys=True) + "\n",
                        encoding="utf-8")

    def __len__(self) -> int:
        return sum(self.counts.values())
