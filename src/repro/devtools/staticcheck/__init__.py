"""AST-based protocol-conformance and determinism linter.

``repro lint`` enforces the invariants the reproduction's correctness
rests on: cross-consistent TypeID dispatch tables (paper Tables
5/7/8), deterministic simulation code (no wall clocks or ambient
randomness in ``simnet``/``grid``/``datasets``), byte-exact struct
wire formats, and a handful of hygiene bans (bare except, silent
swallow, mutable defaults, float-timestamp equality).

Public API::

    from repro.devtools.staticcheck import lint_paths, Finding
    result = lint_paths(["src"])
    for finding in result.findings:
        print(finding.render())

See ``docs/static-analysis.md`` for rule descriptions, the
``# staticcheck: ignore[rule-id]`` suppression syntax, and how to add
a rule.
"""

from .baseline import Baseline, fingerprint
from .engine import RunResult, discover_files, lint_paths
from .findings import Finding, RelatedLocation, Severity
from .project import ModuleSummary, ProjectModel, extract_summary
from .registry import (AstRule, CrossFileRule, FileContext,
                       ProjectRule, Rule, build_rules, register,
                       registered_rule_ids)
from .reporters import (FORMATTERS, format_json, format_sarif,
                        format_text)
from .suppressions import SuppressionIndex

__all__ = [
    "AstRule",
    "Baseline",
    "CrossFileRule",
    "FileContext",
    "Finding",
    "FORMATTERS",
    "ModuleSummary",
    "ProjectModel",
    "ProjectRule",
    "RelatedLocation",
    "Rule",
    "RunResult",
    "Severity",
    "SuppressionIndex",
    "build_rules",
    "discover_files",
    "extract_summary",
    "fingerprint",
    "format_json",
    "format_sarif",
    "format_text",
    "lint_paths",
    "register",
    "registered_rule_ids",
]
