"""Developer tooling for the reproduction (not used at analysis time).

Currently contains :mod:`repro.devtools.staticcheck`, the project
linter behind ``repro lint``.
"""
