"""Command-line interface.

Two subcommands mirror the paper's workflow:

* ``repro generate`` — produce a synthetic Y1/Y2 capture as a classic
  pcap file plus a JSON host-name map (the "operator documentation");
* ``repro analyze`` — run any of the Section 6 analyses over a pcap
  (ours or anyone else's IEC 104 capture) and print the tables.

Usage::

    python -m repro.cli generate --year 1 --scale 0.02 --out y1.pcap
    python -m repro.cli analyze y1.pcap --names y1.names.json \
        --report flows compliance typeids classify markov timing
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .analysis import (ConnectionChains, FlowAnalysis, PacketCapture,
                       analyze_compliance, classify_all, extract_apdus,
                       render_table, symbol_table, timing_profiles,
                       type_distribution, type_id_distribution)
from .datasets import CaptureConfig, generate_capture
from .netstack.addresses import IPv4Address
from .netstack.packet import CapturedPacket
from .netstack.pcap import PcapReader
from .netstack.pcapng import PcapngReader, sniff_format

REPORTS = ("flows", "compliance", "typeids", "symbols", "classify",
           "markov", "timing")


def _names_path(pcap_path: Path) -> Path:
    return pcap_path.with_suffix(".names.json")


def cmd_generate(args: argparse.Namespace,
                 out=sys.stdout) -> int:
    config = CaptureConfig(seed=args.seed, time_scale=args.scale,
                           workers=args.workers)
    capture = generate_capture(args.year, config)
    pcap_path = Path(args.out)
    fmt = args.format
    if fmt is None:
        fmt = ("pcapng" if pcap_path.suffix in (".pcapng", ".ntar")
               else "pcap")
    with open(pcap_path, "wb") as stream:
        if fmt == "pcapng":
            count = capture.to_pcapng(stream)
        else:
            count = capture.to_pcap(stream)
    names = {str(address): name
             for address, name in capture.host_names().items()}
    names_path = _names_path(pcap_path)
    names_path.write_text(json.dumps(names, indent=2, sort_keys=True))
    print(f"wrote {count} packets to {pcap_path} "
          f"({pcap_path.stat().st_size} bytes)", file=out)
    print(f"wrote host names to {names_path}", file=out)
    return 0


def _load_names(path: str | None) -> dict[IPv4Address, str]:
    if path is None:
        return {}
    raw = json.loads(Path(path).read_text())
    return {IPv4Address.parse(address): name
            for address, name in raw.items()}


def _load_capture(path: str,
                  names: dict[IPv4Address, str]) -> PacketCapture:
    packets = []
    with open(path, "rb") as stream:
        if sniff_format(stream) == "pcapng":
            reader = PcapngReader(stream)
        else:
            reader = PcapReader(stream)
        for record in reader:
            packet = CapturedPacket.decode(record.time_us, record.data)
            if packet is not None:
                packets.append(packet)
    return PacketCapture(packets=packets, names=names)


def cmd_analyze(args: argparse.Namespace, out=sys.stdout) -> int:
    names = _load_names(args.names)
    capture = _load_capture(args.pcap, names)
    if getattr(args, "filter", None):
        from .netstack.filter import filter_packets
        before = len(capture.packets)
        capture.packets = filter_packets(capture.packets, args.filter,
                                         names=names)
        print(f"filter {args.filter!r}: {len(capture.packets)} of "
              f"{before} packets kept\n", file=out)
    if not capture.packets:
        print("no TCP/IPv4 packets found in capture", file=out)
        return 1
    reports = args.report or ["flows", "compliance", "typeids"]
    extraction = None
    if set(reports) - {"flows", "compliance"} \
            or getattr(args, "json", False):
        extraction = extract_apdus(capture)

    if getattr(args, "json", False):
        document = _analyze_json(reports, capture, extraction,
                                 Path(args.pcap).stem)
        print(json.dumps(document, indent=2, sort_keys=True), file=out)
        return 0

    for report in reports:
        if report == "flows":
            analysis = FlowAnalysis.from_packets(
                Path(args.pcap).stem, capture)
            print(render_table(["Flow class", "Count (proportion)"],
                               analysis.summary().rows(),
                               title="TCP flows (Table 3)"), file=out)
        elif report == "compliance":
            compliance = analyze_compliance(capture)
            rows = [(host.host, host.frames,
                     f"{100 * host.strict_malformed_fraction:.1f}%",
                     host.explanation)
                    for host in sorted(compliance.hosts.values(),
                                       key=lambda h: h.host)
                    if host.frames]
            print(render_table(["Host", "I-frames", "Strict-malformed",
                                "Verdict"], rows,
                               title="IEC 104 compliance (§6.1)"),
                  file=out)
        elif report == "typeids":
            distribution = type_id_distribution(extraction)
            rows = [(token, count, f"{pct:.3f}%")
                    for token, count, pct in distribution.rows()]
            print(render_table(["TypeID", "Count", "Share"], rows,
                               title="ASDU typeIDs (Table 7)"),
                  file=out)
        elif report == "symbols":
            rows = [(row.token, row.station_count,
                     ",".join(row.symbols))
                    for row in symbol_table(extraction)]
            print(render_table(["TypeID", "Stations", "Symbols"], rows,
                               title="Physical symbols (Table 8)"),
                  file=out)
        elif report == "classify":
            distribution = type_distribution(classify_all(extraction))
            rows = [(kind, description, count, f"{pct:.1f}%")
                    for kind, description, count, pct
                    in distribution.rows()]
            print(render_table(["Type", "Description", "Count",
                                "Share"], rows,
                               title="Outstation types (Table 6)"),
                  file=out)
        elif report == "markov":
            chains = ConnectionChains.from_extraction(extraction)
            rows = [(f"{a}-{b}", nodes, edges)
                    for (a, b), nodes, edges in chains.sizes()]
            print(render_table(["Connection", "Nodes", "Edges"], rows,
                               title="Markov chain sizes (Fig. 13)"),
                  file=out)
        elif report == "timing":
            profiles = timing_profiles(extraction)
            rows = [(f"{src}->{dst}", profile.stats.count,
                     f"{profile.stats.mean:.2f}s",
                     f"{profile.stats.cv:.2f}",
                     (f"{profile.periodicity.period:.0f}s"
                      if profile.periodicity.is_periodic else "-"),
                     f"{profile.mean_rate_bps:.0f}")
                    for (src, dst), profile in
                    ((p.session, p) for p in profiles)]
            print(render_table(["Session", "Packets", "Mean gap", "CV",
                                "Period", "bps"], rows,
                               title="Session timing profiles"),
                  file=out)
        else:  # pragma: no cover - argparse choices prevent this
            raise AssertionError(report)
        print(file=out)
    return 0


def _analyze_json(reports, capture, extraction,
                  label: str) -> dict:
    """Machine-readable form of the analysis reports."""
    document: dict = {"capture": label,
                      "packets": len(capture.packets)}
    if "flows" in reports:
        summary = FlowAnalysis.from_packets(label, capture).summary()
        document["flows"] = {
            "sub_second_short": summary.sub_second_short,
            "longer_short": summary.longer_short,
            "short_lived": summary.short_lived,
            "long_lived": summary.long_lived,
            "short_fraction": round(summary.short_fraction, 4),
        }
    if "compliance" in reports:
        report = analyze_compliance(capture)
        document["compliance"] = {
            host.host: {
                "frames": host.frames,
                "strict_malformed": host.strict_malformed,
                "verdict": host.explanation,
            }
            for host in report.hosts.values() if host.frames}
    if "typeids" in reports:
        distribution = type_id_distribution(extraction)
        document["typeids"] = {
            token: {"count": count, "share": round(share, 4)}
            for token, count, share in distribution.rows()}
    if "symbols" in reports:
        document["symbols"] = {
            row.token: {"stations": row.station_count,
                        "symbols": list(row.symbols)}
            for row in symbol_table(extraction)}
    if "classify" in reports:
        distribution = type_distribution(classify_all(extraction))
        document["outstation_types"] = {
            str(int(kind)): {"description": description,
                             "count": count,
                             "share": round(share, 2)}
            for kind, description, count, share in distribution.rows()}
    if "markov" in reports:
        chains = ConnectionChains.from_extraction(extraction)
        document["markov"] = {
            f"{a}-{b}": {"nodes": nodes, "edges": edges}
            for (a, b), nodes, edges in chains.sizes()}
    if "timing" in reports:
        document["timing"] = {
            f"{src}->{dst}": {
                "packets": profile.stats.count,
                "mean_gap_s": round(profile.stats.mean, 4),
                "cv": round(profile.stats.cv, 4),
                "period_s": (round(profile.periodicity.period, 2)
                             if profile.periodicity.is_periodic
                             else None),
                "mean_rate_bps": round(profile.mean_rate_bps, 1),
            }
            for profile in timing_profiles(extraction)
            for src, dst in [profile.session]}
    return document


def cmd_attack(args: argparse.Namespace, out=sys.stdout) -> int:
    """Generate a labelled Industroyer-style attack capture."""
    from .iec104.constants import TypeID
    from .simnet.attacker import ReconnaissanceMode, run_attack
    from .simnet.behaviors import (OutstationBehavior, OutstationType,
                                   PointConfig)
    points = [PointConfig(ioa=2001 + index, type_id=TypeID.M_ME_NC_1,
                          symbol="P", source=lambda _t: 100.0,
                          threshold=1e9)
              for index in range(args.points)]
    behavior = OutstationBehavior(
        name="O99", substation="S99",
        outstation_type=OutstationType.IDEAL, points=points)
    mode = (ReconnaissanceMode.INTERROGATION
            if args.mode == "interrogation"
            else ReconnaissanceMode.ITERATIVE_SCAN)
    result = run_attack(behavior, mode,
                        scan_range=(2001, 2001 + args.scan_range - 1),
                        seed=args.seed)
    pcap_path = Path(args.out)
    with open(pcap_path, "wb") as stream:
        count = result.tap.to_pcap(stream)
    names = {str(address): name
             for address, name in result.host_names().items()}
    _names_path(pcap_path).write_text(
        json.dumps(names, indent=2, sort_keys=True))
    print(f"attack mode: {mode.value}", file=out)
    print(f"probes sent: {result.probes_sent}; IOAs discovered: "
          f"{len(result.discovered_ioas)}; commands sent: "
          f"{result.commands_sent}", file=out)
    print(f"wrote {count} packets to {pcap_path}", file=out)
    return 0


def cmd_cache(args: argparse.Namespace, out=sys.stdout) -> int:
    """Inspect or empty the content-addressed capture cache."""
    from .perf import cache_dir, clear_cache, list_entries
    if args.action == "clear":
        removed = clear_cache()
        print(f"removed {removed} cache entr"
              f"{'y' if removed == 1 else 'ies'} from {cache_dir()}",
              file=out)
        return 0
    entries = list_entries()
    print(f"cache dir: {cache_dir()}", file=out)
    if not entries:
        print("(empty)", file=out)
        return 0
    for meta in entries:
        scale = meta.get("config", {}).get("time_scale", "?")
        print(f"{meta['key'][:16]}  year={meta.get('year', '?')} "
              f"scale={scale} packets={meta.get('packets', '?')} "
              f"{meta.get('pcap_bytes', 0)} bytes", file=out)
    return 0


def cmd_lint(args: argparse.Namespace, out=sys.stdout) -> int:
    """Run the project staticcheck linter (see docs/static-analysis.md)."""
    from .devtools.staticcheck.cli import run_lint
    return run_lint(args, out=out)


def cmd_scenario(args: argparse.Namespace, out=sys.stdout) -> int:
    """List or emit the registered labeled attack scenarios."""
    from .scenarios import all_scenarios, build_scenario
    if args.action == "list":
        for registered in all_scenarios():
            spec = registered.spec
            print(f"{spec.name:<24} {spec.family:<22} seed={spec.seed}"
                  f" {spec.title}", file=out)
        return 0
    run = build_scenario(args.name, scale=args.scale)
    pcap_path, names_path, truth_path = run.write(Path(args.out))
    print(f"wrote {len(run.packets)} packets to {pcap_path}", file=out)
    print(f"wrote host names to {names_path}", file=out)
    print(f"wrote ground truth to {truth_path}", file=out)
    return 0


def cmd_bench(args: argparse.Namespace, out=sys.stdout) -> int:
    """Detection benchmark over the scenario corpus."""
    from .scenarios.bench import run_detect_bench
    return run_detect_bench(args, out=out)


def _monitor_names(explicit: str | None,
                   paths: list[str]) -> dict[IPv4Address, str]:
    """The host-name map: --names, else every per-capture sidecar."""
    if explicit is not None:
        return _load_names(explicit)
    names: dict[IPv4Address, str] = {}
    for path in paths:
        candidate = _names_path(Path(path))
        if candidate.exists():
            names.update(_load_names(str(candidate)))
    return names


def _monitor_tail_source(path: str, follow: bool):
    """A tail source for a capture path, sniffing pcap vs pcapng."""
    from .stream import PcapngTailSource, PcapTailSource
    with open(path, "rb") as stream:
        fmt = sniff_format(stream)
    if fmt == "pcapng":
        return PcapngTailSource(path, follow=follow)
    return PcapTailSource(path, follow=follow)


def _check_protocol(name: str, prog: str) -> str:
    """Validate a protocol name against the registry (clear error)."""
    from .protocols import get_protocol
    try:
        get_protocol(name)
    except ValueError as exc:
        raise SystemExit(f"{prog}: {exc}")
    return name


def _parse_link_specs(specs: list[str],
                      prog: str = "repro monitor"
                      ) -> list[tuple[str, str, str | None]]:
    """Parse ``NAME=PATH[@proto]`` link specs.

    The optional ``@proto`` suffix binds that link to one registered
    protocol, overriding both the ``--protocol`` default and the
    demux's port-based auto-detect.
    """
    links = []
    for spec in specs:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise SystemExit(
                f"{prog}: --link needs NAME=PATH[@proto], "
                f"got {spec!r}")
        proto: str | None = None
        if "@" in path:
            path, _at, proto = path.rpartition("@")
            if not path or not proto:
                raise SystemExit(
                    f"{prog}: --link needs NAME=PATH[@proto], "
                    f"got {spec!r}")
            _check_protocol(proto, prog)
        links.append((name, path, proto))
    return links


def _build_monitor_target(args: argparse.Namespace, prog: str):
    """Construct the monitor/fleet target both loops drive.

    Shared by ``repro monitor`` and ``repro serve``: validates the
    capture/--link/--demux/--workers combination and returns
    ``(target, sources, sharded, detect_after_us)``.  The caller owns
    the cleanup of ``sources`` and ``sharded``; ``detect_after_us``
    comes back ``None`` when the workers drive the DETECT flip
    themselves.
    """
    import os
    import stat as stat_module

    from .stream import (FleetSupervisor, LinkDemux,
                         MonitorPipelineFactory,
                         ShardedFleetSupervisor)
    from .stream.monitor import MonitorTarget
    link_specs = _parse_link_specs(args.links or [], prog)
    if bool(args.pcap) == bool(link_specs):
        raise SystemExit(f"{prog}: give one capture path or "
                         "one or more --link NAME=PATH, not both")
    if args.demux and not args.pcap:
        raise SystemExit(
            f"{prog}: --demux needs a merged capture path")

    workers = args.workers
    if workers == 0:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise SystemExit(
            f"{prog}: --workers must be >= 0, got {workers}")

    paths = [path for _name, path, _proto in link_specs] \
        or [args.pcap]
    if workers > 1:
        if not (args.demux or link_specs):
            raise SystemExit(
                f"{prog}: --workers needs a fleet (--demux or "
                "--link NAME=PATH); a single-link monitor has "
                "nothing to shard")
        for path in paths:
            try:
                regular = stat_module.S_ISREG(os.stat(path).st_mode)
            except OSError as exc:
                raise SystemExit(
                    f"{prog}: cannot stat {path!r}: {exc}")
            if not regular:
                hint = (" (--follow on a pipe cannot be sharded)"
                        if args.follow else "")
                raise SystemExit(
                    f"{prog}: --workers needs seekable regular "
                    "capture files — every worker opens its own "
                    f"reader — but {path!r} is not a regular "
                    f"file{hint}")

    names = _monitor_names(args.names, paths)
    default_protocol = _check_protocol(args.protocol, prog)
    link_protocols = tuple((name, proto)
                           for name, _path, proto in link_specs
                           if proto is not None)
    factory = MonitorPipelineFactory(names=names,
                                     reassemble=args.reassemble,
                                     evict=not args.no_evict,
                                     protocol=default_protocol,
                                     link_protocols=link_protocols)
    detect_after_us = (int(args.detect_after * 1_000_000)
                       if args.detect_after is not None else None)
    sources = []
    sharded: ShardedFleetSupervisor | None = None
    if workers > 1:
        # The workers flip DETECT themselves on their own stream
        # clocks, so the monitor loop must not also drive the switch.
        sharded = ShardedFleetSupervisor(
            factory, workers=workers,
            path=args.pcap if args.demux else None,
            links=tuple((name, path)
                        for name, path, _proto in link_specs),
            names=names, follow=args.follow,
            detect_after_us=detect_after_us)
        target: MonitorTarget = sharded
        detect_after_us = None
    elif link_specs:
        fleet = FleetSupervisor()
        for name, path, _proto in link_specs:
            source = _monitor_tail_source(path, args.follow)
            sources.append(source)
            fleet.add_link(factory(name, source), name=name)
        target = fleet
    elif args.demux:
        source = _monitor_tail_source(args.pcap, args.follow)
        sources.append(source)
        demux = LinkDemux(source, names=names)
        target = FleetSupervisor(demux=demux,
                                 pipeline_factory=factory)
    else:
        source = _monitor_tail_source(args.pcap, args.follow)
        sources.append(source)
        target = factory(Path(args.pcap).stem, source)
    return target, sources, sharded, detect_after_us


def cmd_monitor(args: argparse.Namespace, out=sys.stdout) -> int:
    """Stream growing capture(s) through the online pipeline.

    One positional capture runs the single-link monitor; repeated
    ``--link NAME=PATH`` runs a fleet with one pipeline per file; a
    positional capture plus ``--demux`` runs a fleet demultiplexed
    from the one merged file by endpoint pair. ``--workers N`` (on a
    fleet) partitions the links across N worker processes.
    """
    from .stream import run_monitor
    target, sources, sharded, detect_after_us = \
        _build_monitor_target(args, "repro monitor")
    try:
        run_monitor(target, out, json_lines=args.json,
                    follow=args.follow, once=args.once,
                    interval_s=args.interval,
                    detect_after_us=detect_after_us,
                    max_snapshots=args.snapshots)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        print(file=out)
    finally:
        for source in sources:
            source.close()
        if sharded is not None:
            sharded.close()
    return 0


def cmd_serve(args: argparse.Namespace, out=sys.stdout) -> int:
    """Serve live snapshots over HTTP + WebSocket (see repro.serve).

    Composes the same monitor targets as ``repro monitor`` (single
    link, fleet, demux, sharded workers) with the asyncio serving
    stack: every poll is serialized once and broadcast to every
    subscriber; ``--history PATH`` additionally records each poll to
    the columnar sqlite store behind the time-travel endpoints.
    """
    import asyncio
    import signal

    from .serve import HistoryStore, Retention, serve_until
    target, sources, sharded, detect_after_us = \
        _build_monitor_target(args, "repro serve")
    history: HistoryStore | None = None
    if args.history is not None:
        retain_age_us = (int(args.retain_age * 1_000_000)
                         if args.retain_age is not None else None)
        history = HistoryStore(
            args.history,
            retention=Retention(max_polls=args.retain_polls,
                                max_age_us=retain_age_us))

    async def run() -> int:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)

        def on_listening(host: str, port: int) -> None:
            print(f"serving http://{host}:{port} "
                  f"(ws://{host}:{port}/ws)", file=out, flush=True)

        return await serve_until(
            target, stop, host=args.host, port=args.port,
            history=history, follow=args.follow,
            interval_s=args.interval,
            detect_after_us=detect_after_us,
            max_polls=args.snapshots,
            on_listening=on_listening)

    try:
        polls = asyncio.run(run())
        print(f"served {polls} poll(s)", file=out, flush=True)
    finally:
        for source in sources:
            source.close()
        if sharded is not None:
            sharded.close()
        if history is not None:
            history.close()
    return 0


def cmd_hypotheses(args: argparse.Namespace, out=sys.stdout) -> int:
    """Evaluate the paper's five hypotheses on a pair of captures."""
    from .analysis import evaluate_all
    names = _load_names(args.names)
    y1_capture = _load_capture(args.pcap_y1, names)
    y2_capture = _load_capture(args.pcap_y2, names)
    y1 = extract_apdus(y1_capture)
    y2 = extract_apdus(y2_capture)
    for result in evaluate_all(y1_capture, y1, y2):
        print(result, file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bulk-power SCADA measurement reproduction "
                    "(IMC 2020)")
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="generate a synthetic Y1/Y2 capture as pcap")
    generate.add_argument("--year", type=int, choices=(1, 2),
                          default=1)
    generate.add_argument("--scale", type=float, default=0.02,
                          help="fraction of the paper's capture "
                               "duration (default 0.02)")
    generate.add_argument("--seed", type=int, default=104)
    generate.add_argument("--workers", type=int, default=None,
                          help="simulate capture days independently "
                               "with N processes (deterministic for "
                               "any N; default: single-process "
                               "whole-year simulation)")
    generate.add_argument("--out", required=True,
                          help="output capture path")
    generate.add_argument("--format", choices=("pcap", "pcapng"),
                          default=None,
                          help="capture file format (default: by "
                               "--out extension, classic pcap unless "
                               ".pcapng)")
    generate.set_defaults(func=cmd_generate)

    analyze = sub.add_parser(
        "analyze", help="run the paper's analyses over a pcap")
    analyze.add_argument("pcap", help="input pcap file")
    analyze.add_argument("--names",
                         help="JSON host-name map (ip -> name)")
    analyze.add_argument("--report", nargs="+", choices=REPORTS,
                         help="which analyses to run "
                              f"(default: flows compliance typeids)")
    analyze.add_argument("--filter",
                         help="display filter, e.g. "
                              "'iec104 and host == O37'")
    analyze.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON instead of "
                              "tables")
    analyze.set_defaults(func=cmd_analyze)

    attack = sub.add_parser(
        "attack", help="generate a labelled Industroyer-style attack "
                       "capture against a synthetic RTU")
    attack.add_argument("--mode", choices=("scan", "interrogation"),
                        default="scan")
    attack.add_argument("--points", type=int, default=8,
                        help="points defined at the victim RTU")
    attack.add_argument("--scan-range", type=int, default=40,
                        dest="scan_range",
                        help="IOAs probed in scan mode")
    attack.add_argument("--seed", type=int, default=66)
    attack.add_argument("--out", required=True,
                        help="output pcap path")
    attack.set_defaults(func=cmd_attack)

    cache = sub.add_parser(
        "cache", help="inspect or empty the capture cache "
                      "(see docs/performance.md)")
    cache.add_argument("action", choices=("ls", "clear"),
                       help="ls: list entries; clear: delete all")
    cache.set_defaults(func=cmd_cache)

    lint = sub.add_parser(
        "lint", help="run the project staticcheck linter "
                     "(protocol-conformance and determinism rules)")
    from .devtools.staticcheck.cli import add_lint_arguments
    add_lint_arguments(lint)
    lint.set_defaults(func=cmd_lint)

    scenario = sub.add_parser(
        "scenario", help="list or emit the registered labeled attack "
                         "scenarios (see docs/scenarios.md)")
    scenario_sub = scenario.add_subparsers(dest="action",
                                           required=True)
    scenario_list = scenario_sub.add_parser(
        "list", help="list every registered scenario")
    scenario_list.set_defaults(func=cmd_scenario)
    scenario_emit = scenario_sub.add_parser(
        "emit", help="build one scenario and write its capture, "
                     "host-name map and ground-truth sidecar")
    scenario_emit.add_argument("name", help="registered scenario name")
    scenario_emit.add_argument("--out", required=True,
                               help="output capture path (.pcapng "
                                    "for pcapng; sidecars are written "
                                    "next to it)")
    scenario_emit.add_argument("--scale", type=float, default=1.0,
                               help="time-compression factor for the "
                                    "scenario timeline (default 1.0)")
    scenario_emit.set_defaults(func=cmd_scenario)

    bench = sub.add_parser(
        "bench", help="seeded benchmark suites with committed "
                      "baselines")
    bench_sub = bench.add_subparsers(dest="suite", required=True)
    detect = bench_sub.add_parser(
        "detect", help="score the online detector over the labeled "
                       "scenario corpus (writes BENCH_detect.json)")
    detect.add_argument("--out", default="BENCH_detect.json",
                        help="benchmark document path "
                             "(default BENCH_detect.json)")
    detect.add_argument("--quick", action="store_true",
                        help="run only the scaled-down quick mode "
                             "(the CI gate's mode)")
    detect.add_argument("--check", action="store_true",
                        help="re-measure and gate recall/precision "
                             "against the committed document instead "
                             "of rewriting it")
    detect.add_argument("--headroom", type=float, default=0.0,
                        help="allowed drop below the committed "
                             "metric before --check fails "
                             "(default 0.0 — the corpus is seeded)")
    detect.set_defaults(func=cmd_bench)

    def add_target_arguments(
            parser: argparse.ArgumentParser) -> None:
        """The shared monitor-target flags of monitor and serve."""
        parser.add_argument("pcap", nargs="?", default=None,
                            help="input pcap/pcapng file (may still "
                                 "be written to with --follow); omit "
                                 "when using --link")
        parser.add_argument("--link", action="append", dest="links",
                            metavar="NAME=PATH[@proto]",
                            help="monitor a fleet: one pipeline per "
                                 "NAME=PATH capture (repeatable); "
                                 "@proto binds that link to one "
                                 "registered protocol spec")
        parser.add_argument("--protocol", default="iec104",
                            metavar="NAME",
                            help="default protocol spec links bind "
                                 "to (default iec104; per-link "
                                 "@proto and the demux port "
                                 "auto-detect override it)")
        parser.add_argument("--demux", action="store_true",
                            help="split the one merged capture into "
                                 "per-link pipelines by endpoint "
                                 "pair")
        parser.add_argument("--workers", type=int, default=1,
                            metavar="N",
                            help="shard a fleet's links across N "
                                 "worker processes (needs --demux or "
                                 "--link; 0 = one per CPU core; "
                                 "default 1 runs everything "
                                 "in-process; captures must be "
                                 "seekable regular files since every "
                                 "worker opens its own reader)")
        parser.add_argument("--names",
                            help="JSON host-name map (ip -> name); "
                                 "defaults to the <capture>."
                                 "names.json sidecar(s) if present")
        parser.add_argument("--follow", action="store_true",
                            help="keep polling for appended packets "
                                 "(tail -f mode)")
        parser.add_argument("--interval", type=float, default=2.0,
                            help="seconds between snapshots "
                                 "(default 2.0)")
        parser.add_argument("--snapshots", type=int, default=None,
                            help="stop after N periodic snapshots")
        parser.add_argument("--detect-after", type=float,
                            default=None, dest="detect_after",
                            metavar="SECONDS",
                            help="switch the whitelist detector from "
                                 "learn to detect once the capture "
                                 "clock passes this many seconds")
        parser.add_argument("--reassemble", action="store_true",
                            help="TCP-reassemble before decoding "
                                 "instead of the paper's per-packet "
                                 "parse")
        parser.add_argument("--no-evict", action="store_true",
                            dest="no_evict",
                            help="disable idle-state eviction")

    monitor = sub.add_parser(
        "monitor", help="stream (possibly growing) captures through "
                        "the online analysis pipeline")
    add_target_arguments(monitor)
    monitor.add_argument("--once", action="store_true",
                         help="drain, print one snapshot, exit")
    monitor.add_argument("--json", action="store_true",
                         help="JSON-lines snapshots instead of text")
    monitor.set_defaults(func=cmd_monitor)

    serve = sub.add_parser(
        "serve", help="serve live snapshots over HTTP + WebSocket "
                      "(see docs/streaming.md)")
    add_target_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8104,
                       help="TCP port; 0 picks a free one "
                            "(default 8104)")
    serve.add_argument("--history", default=None, metavar="PATH",
                       help="record every poll to a columnar sqlite "
                            "store at PATH (':memory:' for "
                            "ephemeral) enabling /fleet/at and "
                            "/links/<name>/history")
    serve.add_argument("--retain-polls", type=int, default=None,
                       dest="retain_polls", metavar="N",
                       help="keep only the newest N polls in the "
                            "history store (default: unbounded)")
    serve.add_argument("--retain-age", type=float, default=None,
                       dest="retain_age", metavar="SECONDS",
                       help="drop history polls older than this many "
                            "seconds of capture time behind the "
                            "newest poll (combines with "
                            "--retain-polls; default: unbounded)")
    serve.set_defaults(func=cmd_serve)

    hypotheses = sub.add_parser(
        "hypotheses", help="evaluate the paper's five hypotheses over "
                           "two yearly captures")
    hypotheses.add_argument("pcap_y1")
    hypotheses.add_argument("pcap_y2")
    hypotheses.add_argument("--names",
                            help="JSON host-name map (ip -> name)")
    hypotheses.set_defaults(func=cmd_hypotheses)
    return parser


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args, out=out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
