"""TCP connection tracking over captured packets.

The paper defines a flow by the 4-tuple <srcIP, srcPort, dstIP,
dstPort> and splits flows into *short-lived* (a matching SYN and
RST/FIN pair appear inside the capture) and *long-lived* (the
connection started before the capture or outlived it). This module
builds those records; :mod:`repro.analysis.flows` computes the Table 3 /
Fig. 8 statistics from them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from .packet import CapturedPacket, FlowKey


class FlowKind(enum.Enum):
    """Paper Section 6.2 flow classification."""

    SHORT_LIVED = "short-lived"   # SYN and FIN/RST both inside capture
    LONG_LIVED = "long-lived"     # began before capture or never ended


@dataclass
class DirectionStats:
    """Per-direction counters within a connection."""

    packets: int = 0
    bytes: int = 0
    payload_bytes: int = 0
    times_us: list[int] = field(default_factory=list)


@dataclass
class FlowRecord:
    """One TCP connection (canonical 4-tuple, both directions).

    Times are canonical integer-microsecond ticks; ``first_time``/
    ``last_time``/``duration`` are derived float-second views for the
    statistics layers that bin and threshold in seconds.
    """

    key: FlowKey  # canonical orientation
    first_time_us: int
    last_time_us: int
    saw_syn: bool = False
    saw_fin: bool = False
    saw_rst: bool = False
    #: Endpoint that sent the first SYN (connection initiator), if seen.
    initiator: FlowKey | None = None
    forward: DirectionStats = field(default_factory=DirectionStats)
    reverse: DirectionStats = field(default_factory=DirectionStats)

    @property
    def duration_us(self) -> int:
        return self.last_time_us - self.first_time_us

    @property
    def first_time(self) -> float:
        return self.first_time_us / 1_000_000

    @property
    def last_time(self) -> float:
        return self.last_time_us / 1_000_000

    @property
    def duration(self) -> float:
        return self.duration_us / 1_000_000

    @property
    def packets(self) -> int:
        return self.forward.packets + self.reverse.packets

    @property
    def bytes(self) -> int:
        return self.forward.bytes + self.reverse.bytes

    @property
    def kind(self) -> FlowKind:
        if self.saw_syn and (self.saw_fin or self.saw_rst):
            return FlowKind.SHORT_LIVED
        return FlowKind.LONG_LIVED

    @property
    def rejected(self) -> bool:
        """True for the Fig. 9 pathology: SYN answered by RST/FIN with
        (nearly) no data exchanged."""
        return (self.kind is FlowKind.SHORT_LIVED and self.saw_rst
                and self.forward.payload_bytes + self.reverse.payload_bytes
                == 0)


class FlowTable:
    """Accumulate packets into per-connection records."""

    def __init__(self) -> None:
        self._flows: dict[FlowKey, FlowRecord] = {}

    def add(self, packet: CapturedPacket) -> FlowRecord:
        key = packet.flow_key
        canonical = key.canonical
        record = self._flows.get(canonical)
        if record is None:
            record = FlowRecord(key=canonical,
                                first_time_us=packet.time_us,
                                last_time_us=packet.time_us)
            self._flows[canonical] = record
        record.first_time_us = min(record.first_time_us, packet.time_us)
        record.last_time_us = max(record.last_time_us, packet.time_us)
        flags = packet.flags
        if flags.syn:
            record.saw_syn = True
            if not flags.ack and record.initiator is None:
                record.initiator = key
        if flags.fin:
            record.saw_fin = True
        if flags.rst:
            record.saw_rst = True
        stats = (record.forward if key == canonical else record.reverse)
        stats.packets += 1
        stats.bytes += packet.wire_length
        stats.payload_bytes += len(packet.payload)
        stats.times_us.append(packet.time_us)
        return record

    def add_all(self, packets: Iterable[CapturedPacket]) -> None:
        for packet in packets:
            self.add(packet)

    def pop_idle(self, last_time_before_us: int) -> list[FlowRecord]:
        """Remove and return flows whose last packet predates the
        horizon (the streaming engine's idle-flow eviction)."""
        idle = [key for key, record in self._flows.items()
                if record.last_time_us < last_time_before_us]
        return [self._flows.pop(key) for key in idle]

    @property
    def flows(self) -> list[FlowRecord]:
        return list(self._flows.values())

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self):
        return iter(self._flows.values())
