"""Minimal pcapng (pcap next generation) reader and writer.

Real-world captures increasingly come as pcapng; this module supports
the blocks needed to round-trip packet data: Section Header
(0x0A0D0D0A), Interface Description (1), Enhanced Packet (6) and
Simple Packet (3). Options other than ``if_tsresol`` are skipped;
multiple sections and interfaces are handled; both byte orders are
supported via the section byte-order magic.

The block-body parsers (:func:`parse_idb_body`,
:func:`parse_epb_body`, :func:`parse_spb_body`) are module-level so
the streaming tail reader (:class:`~repro.stream.ingest.
PcapngTailSource`) shares the exact decode path of the batch
:class:`PcapngReader` — tail/batch parity holds by construction, not
by duplicated code.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterator

from .pcap import LINKTYPE_ETHERNET, PcapRecord

SHB_TYPE = 0x0A0D0D0A
IDB_TYPE = 0x00000001
SPB_TYPE = 0x00000003
EPB_TYPE = 0x00000006

_BYTE_ORDER_MAGIC = 0x1A2B3C4D


class PcapngError(ValueError):
    """Raised on malformed pcapng input."""


@dataclass
class Interface:
    """One Interface Description Block's decoded state."""

    linktype: int
    #: Timestamp units per second (from if_tsresol; default 1e6).
    ticks_per_second: int = 1_000_000


# Backwards-compatible alias (pre-PR 5 private name).
_Interface = Interface


def parse_idb_body(body: bytes, endian: str) -> Interface:
    """Decode an Interface Description Block body (sans header)."""
    if len(body) < 8:
        raise PcapngError("IDB too short")
    linktype = struct.unpack(endian + "H", body[0:2])[0]
    interface = Interface(linktype=linktype)
    # Walk options for if_tsresol (code 9).
    offset = 8
    while offset + 4 <= len(body):
        code, length = struct.unpack(endian + "HH",
                                     body[offset:offset + 4])
        offset += 4
        value = body[offset:offset + length]
        offset += (length + 3) & ~3
        if code == 0:
            break
        if code == 9 and length >= 1:
            resol = value[0]
            if resol & 0x80:
                interface.ticks_per_second = 2 ** (resol & 0x7F)
            else:
                interface.ticks_per_second = 10 ** resol
    return interface


def parse_epb_body(body: bytes, endian: str,
                   interfaces: list[Interface]) -> PcapRecord:
    """Decode an Enhanced Packet Block body into a record."""
    if len(body) < 20:
        raise PcapngError("EPB too short")
    (interface_id, ts_high, ts_low, captured,
     original) = struct.unpack(endian + "IIIII", body[:20])
    if interface_id >= len(interfaces):
        raise PcapngError(
            f"EPB references unknown interface {interface_id}")
    ticks = (ts_high << 32) | ts_low
    interface = interfaces[interface_id]
    data = body[20:20 + captured]
    if len(data) < captured:
        raise PcapngError("EPB packet data truncated")
    # Exact integer conversion to the canonical µs tick; decimal
    # resolutions >= 1e6 divide evenly, coarser or binary resolutions
    # floor deterministically.
    time_us = ticks * 1_000_000 // interface.ticks_per_second
    return PcapRecord(time_us=time_us, data=data,
                      original_length=original)


def parse_spb_body(body: bytes, endian: str) -> PcapRecord:
    """Decode a Simple Packet Block body (no timestamp available)."""
    if len(body) < 4:
        raise PcapngError("SPB too short")
    original = struct.unpack(endian + "I", body[:4])[0]
    data = body[4:4 + original]
    return PcapRecord(time_us=0, data=data, original_length=original)


class PcapngReader:
    """Iterate :class:`PcapRecord` items from a pcapng stream."""

    def __init__(self, stream: BinaryIO):
        self._stream = stream
        self._endian = "<"
        self._interfaces: list[Interface] = []
        head = stream.read(8)
        if len(head) < 8:
            raise PcapngError("truncated pcapng header")
        block_type = struct.unpack("<I", head[:4])[0]
        if block_type != SHB_TYPE:
            raise PcapngError(
                f"not a pcapng stream (first block 0x{block_type:08x})")
        self._pending = head

    def _read_exact(self, count: int) -> bytes:
        data = self._stream.read(count)
        if len(data) < count:
            raise PcapngError("truncated pcapng block")
        return data

    def _next_block(self) -> tuple[int, bytes] | None:
        if self._pending:
            head = self._pending
            self._pending = b""
        else:
            head = self._stream.read(8)
            if not head:
                return None
            if len(head) < 8:
                raise PcapngError("truncated block header")
        block_type = struct.unpack(self._endian + "I", head[:4])[0]
        if block_type == SHB_TYPE:
            # Length interpretation needs the byte-order magic, which
            # sits just after the header.
            magic_bytes = self._read_exact(4)
            if struct.unpack("<I", magic_bytes)[0] == _BYTE_ORDER_MAGIC:
                self._endian = "<"
            elif struct.unpack(">I", magic_bytes)[0] \
                    == _BYTE_ORDER_MAGIC:
                self._endian = ">"
            else:
                raise PcapngError("bad byte-order magic")
            length = struct.unpack(self._endian + "I", head[4:8])[0]
            if length < 16 or length % 4:
                raise PcapngError(f"invalid SHB length {length}")
            # header (8) + magic (4) + rest + trailer (4) == length
            body = magic_bytes + self._read_exact(length - 16)
            self._read_exact(4)  # trailing length
            self._interfaces = []  # new section resets interfaces
            return SHB_TYPE, body
        length = struct.unpack(self._endian + "I", head[4:8])[0]
        if length < 12 or length % 4:
            raise PcapngError(f"invalid block length {length}")
        body = self._read_exact(length - 12)
        trailer = struct.unpack(self._endian + "I",
                                self._read_exact(4))[0]
        if trailer != length:
            raise PcapngError("block length trailer mismatch")
        return block_type, body

    def __iter__(self) -> Iterator[PcapRecord]:
        while True:
            block = self._next_block()
            if block is None:
                return
            block_type, body = block
            if block_type == IDB_TYPE:
                self._interfaces.append(
                    parse_idb_body(body, self._endian))
            elif block_type == EPB_TYPE:
                yield parse_epb_body(body, self._endian,
                                     self._interfaces)
            elif block_type == SPB_TYPE:
                yield parse_spb_body(body, self._endian)
            # other block types (NRB, ISB, custom) are skipped


def read_pcapng(path) -> list[PcapRecord]:
    """Read every packet record from a pcapng file."""
    with open(path, "rb") as stream:
        return list(PcapngReader(stream))


class PcapngWriter:
    """Write packet records as a single-section pcapng stream.

    Emits one Section Header Block plus one Interface Description
    Block up front (microsecond resolution — the pcapng default, so
    no ``if_tsresol`` option is needed), then one Enhanced Packet
    Block per record. Symmetric with :class:`PcapngReader`: canonical
    integer-µs ticks round-trip losslessly.
    """

    def __init__(self, stream: BinaryIO,
                 linktype: int = LINKTYPE_ETHERNET,
                 snaplen: int = 65535):
        self._stream = stream
        self.snaplen = snaplen
        # SHB: magic, version 1.0, section length unknown (-1).
        shb_body = struct.pack("<IHHq", _BYTE_ORDER_MAGIC, 1, 0, -1)
        self._write_block(SHB_TYPE, shb_body)
        # IDB: linktype, reserved, snaplen; no options.
        idb_body = struct.pack("<HHI", linktype, 0, snaplen)
        self._write_block(IDB_TYPE, idb_body)

    def _write_block(self, block_type: int, body: bytes) -> None:
        padding = (-len(body)) % 4
        length = 12 + len(body) + padding
        self._stream.write(struct.pack("<II", block_type, length))
        self._stream.write(body)
        self._stream.write(b"\x00" * padding)
        self._stream.write(struct.pack("<I", length))

    def write(self, time_us: int, data: bytes,
              original_length: int | None = None) -> None:
        """Append one packet as an Enhanced Packet Block."""
        captured = data[:self.snaplen]
        original = (original_length if original_length is not None
                    else len(data))
        header = struct.pack("<IIIII", 0, (time_us >> 32) & 0xFFFFFFFF,
                             time_us & 0xFFFFFFFF, len(captured),
                             original)
        self._write_block(EPB_TYPE, header + captured)

    def write_record(self, record: PcapRecord) -> None:
        self.write(record.time_us, record.data,
                   original_length=record.original_length)


def write_pcapng(path, records) -> int:
    """Write records (``PcapRecord`` iterables) to a pcapng file."""
    count = 0
    with open(path, "wb") as stream:
        writer = PcapngWriter(stream)
        for record in records:
            writer.write_record(record)
            count += 1
    return count


def sniff_format(stream: BinaryIO) -> str:
    """Return "pcap", "pcapng" or "unknown" without consuming input."""
    position = stream.tell()
    magic = stream.read(4)
    stream.seek(position)
    if len(magic) < 4:
        return "unknown"
    value_le = struct.unpack("<I", magic)[0]
    value_be = struct.unpack(">I", magic)[0]
    if value_le == SHB_TYPE:
        return "pcapng"
    if 0xA1B2C3D4 in (value_le, value_be) \
            or 0xA1B23C4D in (value_le, value_be):
        return "pcap"
    return "unknown"
