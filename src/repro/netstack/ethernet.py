"""Ethernet II framing."""

from __future__ import annotations

from dataclasses import dataclass

from .addresses import MacAddress

#: EtherType for IPv4.
ETHERTYPE_IPV4 = 0x0800

#: Minimum Ethernet header size (no 802.1Q tag support needed here).
HEADER_SIZE = 14


class EthernetError(ValueError):
    """Raised when an Ethernet frame cannot be decoded."""


@dataclass(frozen=True)
class EthernetFrame:
    """An Ethernet II frame (no FCS; captures normally strip it)."""

    dst: MacAddress
    src: MacAddress
    ethertype: int
    payload: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.ethertype <= 0xFFFF:
            raise ValueError("ethertype must fit in 16 bits")

    def encode(self) -> bytes:
        return (self.dst.to_bytes() + self.src.to_bytes()
                + self.ethertype.to_bytes(2, "big") + self.payload)

    @classmethod
    def decode(cls, data: bytes | memoryview) -> "EthernetFrame":
        raw = bytes(data)
        if len(raw) < HEADER_SIZE:
            raise EthernetError(
                f"frame too short for Ethernet header: {len(raw)} octets")
        return cls(dst=MacAddress.from_bytes(raw[0:6]),
                   src=MacAddress.from_bytes(raw[6:12]),
                   ethertype=int.from_bytes(raw[12:14], "big"),
                   payload=raw[14:])
