"""A small display-filter language over captured packets.

Wireshark-style expressions for slicing captures, used by the CLI's
``--filter`` option and handy in notebooks:

    iec104 and ip.src == 10.1.0.3
    tcp.port == 2404 and not tcp.flags.rst
    host == O37 or host == O53
    tcp.payload > 0 and tcp.dstport != 2404

Grammar (recursive descent)::

    expr   := term ('or' term)*
    term   := factor ('and' factor)*
    factor := 'not' factor | '(' expr ')' | atom
    atom   := FIELD OP VALUE | KEYWORD

Fields: ip.src, ip.dst, ip.addr (either side), tcp.srcport,
tcp.dstport, tcp.port (either side), tcp.payload (length),
tcp.flags.{syn,ack,fin,rst,psh} (booleans), host / host.src / host.dst
(names from an optional address book). Keywords: ``iec104`` (port 2404
either side). Operators: == != < <= > >=.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from .addresses import IPv4Address
from .packet import CapturedPacket


class FilterError(ValueError):
    """Raised on a syntactically or semantically invalid filter."""


_TOKEN = re.compile(r"""
    (?P<lparen>\() | (?P<rparen>\)) |
    (?P<op>==|!=|<=|>=|<|>) |
    (?P<word>[A-Za-z0-9_.:\-]+)
""", re.VERBOSE)

_BOOL_FLAGS = {"tcp.flags.syn": "syn", "tcp.flags.ack": "ack",
               "tcp.flags.fin": "fin", "tcp.flags.rst": "rst",
               "tcp.flags.psh": "psh"}

_KEYWORDS = {"iec104", "and", "or", "not"}

Predicate = Callable[[CapturedPacket], bool]


def _tokenize(text: str) -> list[str]:
    tokens = []
    position = 0
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        match = _TOKEN.match(text, position)
        if match is None:
            raise FilterError(
                f"cannot tokenize filter at: {text[position:]!r}")
        tokens.append(match.group(0))
        position = match.end()
    return tokens


@dataclass
class _Parser:
    tokens: list[str]
    names: dict[IPv4Address, str]
    position: int = 0

    def peek(self) -> str | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise FilterError("unexpected end of filter")
        self.position += 1
        return token

    # -- grammar ----------------------------------------------------------

    def parse(self) -> Predicate:
        predicate = self.expr()
        if self.peek() is not None:
            raise FilterError(f"trailing input: {self.peek()!r}")
        return predicate

    def expr(self) -> Predicate:
        left = self.term()
        while self.peek() == "or":
            self.take()
            right = self.term()
            left = (lambda a, b: lambda p: a(p) or b(p))(left, right)
        return left

    def term(self) -> Predicate:
        left = self.factor()
        while self.peek() == "and":
            self.take()
            right = self.factor()
            left = (lambda a, b: lambda p: a(p) and b(p))(left, right)
        return left

    def factor(self) -> Predicate:
        token = self.peek()
        if token == "not":
            self.take()
            inner = self.factor()
            return lambda p: not inner(p)
        if token == "(":
            self.take()
            inner = self.expr()
            if self.take() != ")":
                raise FilterError("expected ')'")
            return inner
        return self.atom()

    def atom(self) -> Predicate:
        field = self.take()
        if field in ("and", "or", ")"):
            raise FilterError(f"expected a field, got {field!r}")
        if field == "iec104":
            return lambda p: 2404 in (p.tcp.src_port, p.tcp.dst_port)
        if field in _BOOL_FLAGS:
            flag = _BOOL_FLAGS[field]
            return lambda p: getattr(p.flags, flag)
        operator = self.take()
        if operator not in ("==", "!=", "<", "<=", ">", ">="):
            raise FilterError(f"expected an operator, got {operator!r}")
        value = self.take()
        accessor = self._accessor(field)
        expected = self._coerce(field, value)
        compare = {
            "==": lambda a, b: a == b, "!=": lambda a, b: a != b,
            "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
        }[operator]

        def predicate(packet: CapturedPacket) -> bool:
            actual = accessor(packet)
            if isinstance(actual, tuple):  # either-side fields
                if operator == "!=":
                    return all(compare(item, expected)
                               for item in actual)
                return any(compare(item, expected) for item in actual)
            return compare(actual, expected)

        return predicate

    # -- field plumbing -----------------------------------------------------

    def _accessor(self, field: str) -> Callable[[CapturedPacket], object]:
        if field == "ip.src":
            return lambda p: p.ip.src
        if field == "ip.dst":
            return lambda p: p.ip.dst
        if field == "ip.addr":
            return lambda p: (p.ip.src, p.ip.dst)
        if field == "tcp.srcport":
            return lambda p: p.tcp.src_port
        if field == "tcp.dstport":
            return lambda p: p.tcp.dst_port
        if field == "tcp.port":
            return lambda p: (p.tcp.src_port, p.tcp.dst_port)
        if field == "tcp.payload":
            return lambda p: len(p.payload)
        names = self.names
        if field == "host.src":
            return lambda p: names.get(p.ip.src, str(p.ip.src))
        if field == "host.dst":
            return lambda p: names.get(p.ip.dst, str(p.ip.dst))
        if field == "host":
            return lambda p: (names.get(p.ip.src, str(p.ip.src)),
                              names.get(p.ip.dst, str(p.ip.dst)))
        raise FilterError(f"unknown field {field!r}")

    def _coerce(self, field: str, value: str):
        if field.startswith("ip."):
            try:
                return IPv4Address.parse(value)
            except ValueError as exc:
                raise FilterError(str(exc)) from None
        if field.startswith("tcp."):
            if not value.isdigit():
                raise FilterError(
                    f"{field} compares against an integer, got "
                    f"{value!r}")
            return int(value)
        return value  # host names compare as strings


def compile_filter(text: str,
                   names: dict[IPv4Address, str] | None = None
                   ) -> Predicate:
    """Compile a filter expression into a packet predicate."""
    tokens = _tokenize(text)
    if not tokens:
        raise FilterError("empty filter")
    return _Parser(tokens=tokens, names=names or {}).parse()


def filter_packets(packets, text: str,
                   names: dict[IPv4Address, str] | None = None
                   ) -> list[CapturedPacket]:
    """Return the packets matching a filter expression."""
    predicate = compile_filter(text, names=names)
    return [packet for packet in packets if predicate(packet)]
