"""RFC 1071 Internet checksum (used by IPv4 headers and TCP)."""

from __future__ import annotations


def internet_checksum(data: bytes | memoryview) -> int:
    """Compute the 16-bit one's-complement checksum of ``data``.

    Odd-length input is zero-padded on the right, per RFC 1071.
    """
    raw = bytes(data)
    if len(raw) % 2:
        raw += b"\x00"
    total = 0
    for index in range(0, len(raw), 2):
        total += (raw[index] << 8) | raw[index + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def verify_checksum(data: bytes | memoryview) -> bool:
    """True when ``data`` (checksum field included) sums to zero."""
    raw = bytes(data)
    if len(raw) % 2:
        raw += b"\x00"
    total = 0
    for index in range(0, len(raw), 2):
        total += (raw[index] << 8) | raw[index + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF
