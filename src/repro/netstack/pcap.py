"""Classic libpcap file format reader and writer.

Implements the 24-octet global header plus 16-octet per-record headers,
supporting microsecond (magic 0xa1b2c3d4) and nanosecond (0xa1b23c4d)
resolution and both byte orders on read. This is the on-disk format the
paper's captures were stored in; our simulator writes it and our
analysis pipeline reads it, so the whole pipeline round-trips through
real pcap bytes.

Timestamps are canonical integer microseconds (``time_us``), the same
tick the simulation clock counts in. The microsecond record header
stores exactly that pair ``divmod(time_us, 1_000_000)``, so the
writer↔reader round trip is lossless *by construction* — no float
quantization, no exact-timestamp sidecar. Nanosecond-resolution files
are read (and optionally written) with sub-microsecond precision
floored to the canonical tick.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterable, Iterator

MAGIC_USEC = 0xA1B2C3D4
MAGIC_NSEC = 0xA1B23C4D

#: Data-link type for Ethernet.
LINKTYPE_ETHERNET = 1

#: Ticks per second (canonical microsecond resolution).
_US_PER_SECOND = 1_000_000

_GLOBAL_HEADER = struct.Struct("<IHHiIII")  # staticcheck: width=24
_RECORD_HEADER = struct.Struct("<IIII")  # staticcheck: width=16


class PcapError(ValueError):
    """Raised on malformed pcap files."""


@dataclass(frozen=True)
class PcapRecord:
    """One captured frame: an integer-µs timestamp and the raw bytes."""

    time_us: int
    data: bytes
    original_length: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.time_us, int) \
                or isinstance(self.time_us, bool):
            raise TypeError(
                f"time_us must be integer microseconds, got "
                f"{self.time_us!r} — use round(seconds * 1_000_000) "
                f"to convert")

    @property
    def truncated(self) -> bool:
        return (self.original_length is not None
                and self.original_length > len(self.data))


class PcapWriter:
    """Write records to a classic pcap stream.

    The default microsecond resolution stores ``time_us`` exactly;
    ``nanoseconds=True`` writes the 0xa1b23c4d variant (each tick
    stored as ``micros * 1000``), mainly so round-trip tests can cover
    both magics with files we produced ourselves.
    """

    def __init__(self, stream: BinaryIO, snaplen: int = 65535,
                 linktype: int = LINKTYPE_ETHERNET,
                 nanoseconds: bool = False):
        self._stream = stream
        self._snaplen = snaplen
        self._nanoseconds = nanoseconds
        magic = MAGIC_NSEC if nanoseconds else MAGIC_USEC
        stream.write(_GLOBAL_HEADER.pack(magic, 2, 4, 0, 0, snaplen,
                                         linktype))

    def write(self, record: PcapRecord) -> None:
        seconds, fraction = divmod(record.time_us, _US_PER_SECOND)
        if self._nanoseconds:
            fraction *= 1000
        data = record.data[:self._snaplen]
        original = (record.original_length
                    if record.original_length is not None
                    else len(record.data))
        self._stream.write(_RECORD_HEADER.pack(seconds, fraction,
                                               len(data), original))
        self._stream.write(data)

    def write_all(self, records: Iterable[PcapRecord]) -> int:
        count = 0
        for record in records:
            self.write(record)
            count += 1
        return count


#: Precompiled record-header codecs, one per byte order. Sharing them
#: across readers keeps the per-record hot loop free of Struct builds.
_RECORD_LE = struct.Struct("<IIII")  # staticcheck: width=16
_RECORD_BE = struct.Struct(">IIII")  # staticcheck: width=16


class PcapReader:
    """Read records from a classic pcap stream.

    Iteration uses a buffered fast path: the remaining stream is read
    once and records are scanned out of a :class:`memoryview`, so the
    per-record cost is one precompiled ``Struct.unpack_from`` and one
    payload slice instead of two ``read()`` calls.
    :meth:`iter_unbuffered` keeps the original incremental path for
    arbitrarily large files (and as a parity oracle in tests).
    """

    def __init__(self, stream: BinaryIO):
        self._stream = stream
        header = stream.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise PcapError("truncated pcap global header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic in (MAGIC_USEC, MAGIC_NSEC):
            self._endian = "<"
        else:
            magic = struct.unpack(">I", header[:4])[0]
            if magic not in (MAGIC_USEC, MAGIC_NSEC):
                raise PcapError(f"bad pcap magic 0x{magic:08x}")
            self._endian = ">"
        self._nanoseconds = magic == MAGIC_NSEC
        fields = struct.unpack(self._endian + "IHHiIII", header)
        self.version = (fields[1], fields[2])
        self.snaplen = fields[5]
        self.linktype = fields[6]
        self._record_struct = (_RECORD_LE if self._endian == "<"
                               else _RECORD_BE)

    def __iter__(self) -> Iterator[PcapRecord]:
        return self._iter_buffered()

    def _iter_buffered(self) -> Iterator[PcapRecord]:
        buffer = memoryview(self._stream.read())
        yield from scan_records(buffer, self._record_struct,
                                self._nanoseconds)

    def iter_unbuffered(self) -> Iterator[PcapRecord]:
        """Incremental per-record reads (the pre-fast-path behaviour)."""
        nanoseconds = self._nanoseconds
        while True:
            header = self._stream.read(self._record_struct.size)
            if not header:
                return
            if len(header) < self._record_struct.size:
                raise PcapError("truncated pcap record header")
            seconds, fraction, captured, original = (
                self._record_struct.unpack(header))
            data = self._stream.read(captured)
            if len(data) < captured:
                raise PcapError("truncated pcap record body")
            if nanoseconds:
                fraction //= 1000
            yield PcapRecord(time_us=seconds * _US_PER_SECOND + fraction,
                             data=data, original_length=original)


def scan_records(buffer: memoryview, record_struct: struct.Struct,
                 nanoseconds: bool) -> Iterator[PcapRecord]:
    """Scan pcap records out of an in-memory buffer (post-global-header).

    Semantics match :meth:`PcapReader.iter_unbuffered` exactly,
    including the error raised for each truncation mode.
    """
    header_size = record_struct.size
    unpack_from = record_struct.unpack_from
    size = len(buffer)
    offset = 0
    while offset < size:
        if size - offset < header_size:
            raise PcapError("truncated pcap record header")
        seconds, fraction, captured, original = unpack_from(buffer, offset)
        offset += header_size
        if size - offset < captured:
            raise PcapError("truncated pcap record body")
        if nanoseconds:
            fraction //= 1000
        yield PcapRecord(time_us=seconds * _US_PER_SECOND + fraction,
                         data=bytes(buffer[offset:offset + captured]),
                         original_length=original)
        offset += captured


def scan_complete_records(buffer: bytes, record_struct: struct.Struct,
                          nanoseconds: bool, offset: int = 0,
                          limit: int | None = None
                          ) -> tuple[list[PcapRecord], int]:
    """Batch-scan complete records out of a possibly-truncated buffer.

    The tail-read counterpart of :func:`scan_records`: where the strict
    scanner raises on truncation, this one stops — a partial header or
    body at the end of the buffer simply is not consumed yet. Returns
    ``(records, new_offset)`` so the caller keeps one growing buffer
    and trims it once per poll instead of re-slicing per record.

    The whole loop is index arithmetic over one precompiled
    ``Struct.unpack_from``; only the payload bytes of complete records
    are materialized.
    """
    records: list[PcapRecord] = []
    append = records.append
    unpack_from = record_struct.unpack_from
    header_size = record_struct.size
    size = len(buffer)
    us = _US_PER_SECOND
    while limit is None or len(records) < limit:
        if size - offset < header_size:
            break
        seconds, fraction, captured, original = unpack_from(buffer,
                                                            offset)
        body = offset + header_size
        if size - body < captured:
            break
        if nanoseconds:
            fraction //= 1000
        append(PcapRecord(time_us=seconds * us + fraction,
                          data=buffer[body:body + captured],
                          original_length=original))
        offset = body + captured
    return records, offset


def write_pcap(path, records: Iterable[PcapRecord],
               snaplen: int = 65535) -> int:
    """Write ``records`` to ``path``; return the number written."""
    with open(path, "wb") as stream:
        return PcapWriter(stream, snaplen=snaplen).write_all(records)


def read_pcap(path) -> list[PcapRecord]:
    """Read every record from the pcap file at ``path``."""
    with open(path, "rb") as stream:
        return list(PcapReader(stream))
