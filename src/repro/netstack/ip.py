"""IPv4 packet codec (header without options, which SCADA gear rarely
uses; options are accepted on decode and skipped)."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .addresses import IPv4Address
from .checksum import internet_checksum

#: IP protocol number for TCP.
PROTO_TCP = 6

_HEADER = struct.Struct("!BBHHHBBH4s4s")  # staticcheck: width=20
MIN_HEADER_SIZE = _HEADER.size  # 20


class IPv4Error(ValueError):
    """Raised when an IPv4 packet cannot be decoded."""


@dataclass(frozen=True)
class IPv4Packet:
    """An IPv4 packet. ``checksum`` is recomputed on encode."""

    src: IPv4Address
    dst: IPv4Address
    payload: bytes
    protocol: int = PROTO_TCP
    ttl: int = 64
    identification: int = 0
    dont_fragment: bool = True
    tos: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.protocol <= 255:
            raise ValueError("protocol must fit in 8 bits")
        if not 0 < self.ttl <= 255:
            raise ValueError("ttl must be in 1..255")
        if not 0 <= self.identification <= 0xFFFF:
            raise ValueError("identification must fit in 16 bits")
        if len(self.payload) + MIN_HEADER_SIZE > 0xFFFF:
            raise ValueError("payload too large for IPv4 total length")

    @property
    def total_length(self) -> int:
        return MIN_HEADER_SIZE + len(self.payload)

    def encode(self) -> bytes:
        version_ihl = (4 << 4) | 5
        flags_frag = 0x4000 if self.dont_fragment else 0
        header = _HEADER.pack(version_ihl, self.tos, self.total_length,
                              self.identification, flags_frag, self.ttl,
                              self.protocol, 0, self.src.to_bytes(),
                              self.dst.to_bytes())
        checksum = internet_checksum(header)
        header = header[:10] + checksum.to_bytes(2, "big") + header[12:]
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes | memoryview,
               verify: bool = True) -> "IPv4Packet":
        raw = bytes(data)
        if len(raw) < MIN_HEADER_SIZE:
            raise IPv4Error(f"packet too short: {len(raw)} octets")
        (version_ihl, tos, total_length, identification, flags_frag, ttl,
         protocol, checksum, src, dst) = _HEADER.unpack_from(raw)
        version = version_ihl >> 4
        ihl = (version_ihl & 0x0F) * 4
        if version != 4:
            raise IPv4Error(f"not IPv4 (version {version})")
        if ihl < MIN_HEADER_SIZE or len(raw) < ihl:
            raise IPv4Error(f"invalid header length {ihl}")
        if total_length < ihl or total_length > len(raw):
            raise IPv4Error(
                f"total length {total_length} inconsistent with capture "
                f"({len(raw)} octets)")
        if flags_frag & 0x3FFF and not flags_frag & 0x4000:
            raise IPv4Error("fragmented IPv4 packets are not supported")
        if verify and internet_checksum(raw[:ihl]) != 0:
            raise IPv4Error("IPv4 header checksum mismatch")
        return cls(src=IPv4Address.from_bytes(src),
                   dst=IPv4Address.from_bytes(dst),
                   payload=raw[ihl:total_length],
                   protocol=protocol, ttl=ttl,
                   identification=identification,
                   dont_fragment=bool(flags_frag & 0x4000), tos=tos)
