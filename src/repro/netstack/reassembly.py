"""TCP stream reassembly with retransmission accounting.

One :class:`StreamReassembler` handles one direction of one TCP
connection: it orders segments by sequence number, fills holes as data
arrives, and *counts retransmissions instead of replaying them*.

The distinction matters for the paper's Section 6.3.1: the authors
tokenized APDUs per packet, so TCP retransmissions appeared as repeated
U16/U32 tokens in their Markov chains (an apparent anomaly they traced
back to the transport layer). Parsing the reassembled stream removes
those duplicates; the analysis pipeline exposes both modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_SEQ_MODULO = 1 << 32
_HALF = 1 << 31


def seq_after(a: int, b: int) -> bool:
    """True when sequence number ``a`` is after ``b`` (mod 2^32)."""
    return (a - b) % _SEQ_MODULO - _HALF < 0 and a != b


def seq_add(a: int, delta: int) -> int:
    return (a + delta) % _SEQ_MODULO


@dataclass
class ReassemblyStats:
    """Counters for one direction of one connection."""

    segments: int = 0
    payload_segments: int = 0
    bytes_delivered: int = 0
    retransmissions: int = 0
    out_of_order: int = 0
    gap_bytes_skipped: int = 0
    #: Times the buffered-bytes cap forced a hole to be abandoned.
    buffer_overflows: int = 0


@dataclass
class StreamReassembler:
    """Reassemble one direction of a TCP connection into a byte stream.

    Call :meth:`feed` with ``(seq, payload, syn, fin)`` per segment; it
    returns the newly contiguous payload bytes (possibly empty).
    """

    #: Skip over holes larger than this many bytes (capture loss guard).
    max_hole: int = 1 << 20

    #: Cap on total buffered out-of-order bytes. A hole held open by a
    #: segment that never arrives (endpoint died, tap missed the rest
    #: of the flow) would otherwise buffer every later segment forever;
    #: at the cap the hole is abandoned: the cursor jumps to the oldest
    #: buffered byte, the skipped gap is counted, and the buffer drains.
    max_buffered: int = 1 << 18

    _next_seq: int | None = None
    _pending: dict[int, bytes] = field(default_factory=dict)
    _pending_bytes: int = 0
    stats: ReassemblyStats = field(default_factory=ReassemblyStats)
    saw_syn: bool = False
    saw_fin: bool = False

    @property
    def initialized(self) -> bool:
        return self._next_seq is not None

    @property
    def pending_bytes(self) -> int:
        return self._pending_bytes

    def feed(self, seq: int, payload: bytes, syn: bool = False,
             fin: bool = False) -> bytes:
        """Process one segment; return newly in-order payload bytes."""
        self.stats.segments += 1
        if fin:
            self.saw_fin = True
        if syn:
            self.saw_syn = True
            # Data begins one past the ISN.
            if self._next_seq is None:
                self._next_seq = seq_add(seq, 1)
        if not payload:
            return b""
        self.stats.payload_segments += 1
        if self._next_seq is None:
            # Capture started mid-connection: lock onto the first data.
            self._next_seq = seq

        if seq == self._next_seq:
            delivered = bytearray(payload)
            self._next_seq = seq_add(seq, len(payload))
            delivered.extend(self._drain_pending())
            self.stats.bytes_delivered += len(delivered)
            return bytes(delivered)

        if seq_after(self._next_seq, seq):
            # Starts before the cursor: retransmission (possibly with a
            # new tail beyond the cursor).
            overlap = (self._next_seq - seq) % _SEQ_MODULO
            self.stats.retransmissions += 1
            if overlap < len(payload):
                tail = payload[overlap:]
                delivered = bytearray(tail)
                self._next_seq = seq_add(self._next_seq, len(tail))
                delivered.extend(self._drain_pending())
                self.stats.bytes_delivered += len(delivered)
                return bytes(delivered)
            return b""

        # Starts after the cursor: out of order (or capture loss).
        gap = (seq - self._next_seq) % _SEQ_MODULO
        if gap > self.max_hole:
            # Unrecoverable hole: jump the cursor and note the loss.
            self.stats.gap_bytes_skipped += gap
            self._next_seq = seq_add(seq, len(payload))
            self.stats.bytes_delivered += len(payload)
            return payload
        self.stats.out_of_order += 1
        existing = self._pending.get(seq)
        if existing is None:
            self._pending[seq] = payload
            self._pending_bytes += len(payload)
        elif len(payload) > len(existing):
            self._pending[seq] = payload
            self._pending_bytes += len(payload) - len(existing)
        else:
            self.stats.retransmissions += 1
        if self._pending_bytes > self.max_buffered:
            delivered = bytearray()
            # A drain stops at the next hole, so one flush may leave
            # the buffer over the cap; repeat until it fits.
            while self._pending_bytes > self.max_buffered \
                    and self._pending:
                delivered.extend(self._flush_overflow())
            self.stats.bytes_delivered += len(delivered)
            return bytes(delivered)
        return b""

    def _flush_overflow(self) -> bytes:
        """Abandon the open hole: jump the cursor to the oldest
        buffered byte and drain. Keeps buffered memory bounded when
        the missing segment never arrives."""
        self.stats.buffer_overflows += 1
        cursor = self._next_seq
        assert cursor is not None
        oldest = min(self._pending,
                     key=lambda seq: (seq - cursor) % _SEQ_MODULO)
        gap = (oldest - cursor) % _SEQ_MODULO
        self.stats.gap_bytes_skipped += gap
        self._next_seq = oldest
        return self._drain_pending()

    def _drain_pending(self) -> bytes:
        out = bytearray()
        while self._pending:
            chunk = self._pending.pop(self._next_seq, None)
            if chunk is not None:
                self._pending_bytes -= len(chunk)
            else:
                # Check for chunks overlapping the cursor.
                overlapping = None
                for seq in list(self._pending):
                    if seq_after(self._next_seq, seq):
                        overlap = (self._next_seq - seq) % _SEQ_MODULO
                        chunk_data = self._pending.pop(seq)
                        self._pending_bytes -= len(chunk_data)
                        self.stats.retransmissions += 1
                        if overlap < len(chunk_data):
                            overlapping = chunk_data[overlap:]
                        break
                if overlapping is None:
                    break
                chunk = overlapping
            out.extend(chunk)
            self._next_seq = seq_add(self._next_seq, len(chunk))
        return bytes(out)
