"""Layered packet model: what a capture tap sees.

A :class:`CapturedPacket` is one timestamped Ethernet frame with its
decoded IPv4 and TCP layers, exposing the fields the analysis pipeline
needs (4-tuple, flags, payload) without re-parsing.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from .addresses import IPv4Address, MacAddress
from .ethernet import ETHERTYPE_IPV4, EthernetFrame
from .ip import PROTO_TCP, IPv4Packet
from .tcp import TCPFlags, TCPSegment


@dataclass(frozen=True, order=True)
class Endpoint:
    """An (address, port) transport endpoint."""

    address: IPv4Address
    port: int

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 0xFFFF:
            raise ValueError("port must fit in 16 bits")

    def __str__(self) -> str:
        return f"{self.address}:{self.port}"


@dataclass(frozen=True, order=True)
class FlowKey:
    """The directional 4-tuple <srcIP, srcPort, dstIP, dstPort>."""

    src: Endpoint
    dst: Endpoint

    @property
    def reversed(self) -> "FlowKey":
        return FlowKey(src=self.dst, dst=self.src)

    @property
    def canonical(self) -> "FlowKey":
        """Direction-independent form (smaller endpoint first)."""
        return self if self.src <= self.dst else self.reversed

    def __str__(self) -> str:
        return f"{self.src} -> {self.dst}"


@dataclass(frozen=True)
class CapturedPacket:
    """One packet as seen by the network tap (Fig. 5 of the paper).

    ``time_us`` is the canonical capture time in integer microseconds
    (the simulation tick).
    """

    time_us: int
    ethernet: EthernetFrame
    ip: IPv4Packet
    tcp: TCPSegment

    def __post_init__(self) -> None:
        if not isinstance(self.time_us, int) \
                or isinstance(self.time_us, bool):
            raise TypeError(
                f"time_us must be integer microseconds, got "
                f"{self.time_us!r}")

    # ``cached_property`` writes to the instance ``__dict__`` directly,
    # which a frozen (non-slots) dataclass permits: the derived views
    # below are pure functions of the frozen fields, so caching them is
    # invisible except to the hot-loop profiles that hit them per
    # packet (flow tracking asks for flow_key and wire_length on every
    # add).
    @cached_property
    def flow_key(self) -> FlowKey:
        return FlowKey(src=Endpoint(self.ip.src, self.tcp.src_port),
                       dst=Endpoint(self.ip.dst, self.tcp.dst_port))

    @property
    def payload(self) -> bytes:
        return self.tcp.payload

    @property
    def flags(self) -> TCPFlags:
        return self.tcp.flags

    @cached_property
    def wire_length(self) -> int:
        """Total on-wire frame length in octets."""
        return len(self.ethernet.encode())

    def encode(self) -> bytes:
        """Serialize the full Ethernet frame."""
        return self.ethernet.encode()

    @classmethod
    def build(cls, time_us: int, src_mac: MacAddress,
              dst_mac: MacAddress, src_ip: IPv4Address,
              dst_ip: IPv4Address, segment: TCPSegment,
              ip_id: int = 0) -> "CapturedPacket":
        """Assemble a packet from its TCP segment upward."""
        ip_packet = IPv4Packet(src=src_ip, dst=dst_ip,
                               payload=segment.encode(src_ip, dst_ip),
                               identification=ip_id)
        frame = EthernetFrame(dst=dst_mac, src=src_mac,
                              ethertype=ETHERTYPE_IPV4,
                              payload=ip_packet.encode())
        return cls(time_us=time_us, ethernet=frame, ip=ip_packet,
                   tcp=segment)

    @classmethod
    def decode(cls, time_us: int, frame_bytes: bytes,
               verify: bool = True) -> "CapturedPacket | None":
        """Decode a raw Ethernet frame; None for non-TCP/IPv4 traffic.

        The paper's captures contained ICCP and C37.118 alongside IEC
        104; returning ``None`` for anything that is not TCP-over-IPv4
        lets callers filter exactly as the paper did.
        """
        frame = EthernetFrame.decode(frame_bytes)
        if frame.ethertype != ETHERTYPE_IPV4:
            return None
        ip_packet = IPv4Packet.decode(frame.payload, verify=verify)
        if ip_packet.protocol != PROTO_TCP:
            return None
        segment = TCPSegment.decode(ip_packet.payload, ip_packet.src,
                                    ip_packet.dst, verify=verify)
        packet = cls(time_us=time_us, ethernet=frame, ip=ip_packet,
                     tcp=segment)
        # Seed the cached wire length: Ethernet II re-encodes to the
        # decoded bytes verbatim (14-octet header + payload), so the
        # frame we just consumed *is* the on-wire form.
        packet.__dict__["wire_length"] = len(frame_bytes)
        return packet
