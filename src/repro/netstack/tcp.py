"""TCP segment codec with pseudo-header checksum and option parsing."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from .addresses import IPv4Address
from .checksum import internet_checksum
from .ip import PROTO_TCP

_HEADER = struct.Struct("!HHIIBBHHH")  # staticcheck: width=20
MIN_HEADER_SIZE = _HEADER.size  # 20


class TCPError(ValueError):
    """Raised when a TCP segment cannot be decoded."""


@dataclass(frozen=True)
class TCPOption:
    """One TCP option (kind + raw payload, with decoded conveniences)."""

    kind: int
    data: bytes = b""

    # Well-known option kinds.
    END = 0
    NOP = 1
    MSS = 2
    WINDOW_SCALE = 3
    SACK_PERMITTED = 4
    SACK = 5
    TIMESTAMPS = 8

    @property
    def mss(self) -> int | None:
        if self.kind == self.MSS and len(self.data) == 2:
            return struct.unpack("!H", self.data)[0]
        return None

    @property
    def window_scale(self) -> int | None:
        if self.kind == self.WINDOW_SCALE and len(self.data) == 1:
            return self.data[0]
        return None

    @property
    def timestamps(self) -> tuple[int, int] | None:
        if self.kind == self.TIMESTAMPS and len(self.data) == 8:
            return struct.unpack("!II", self.data)

    @property
    def sack_blocks(self) -> tuple[tuple[int, int], ...] | None:
        if self.kind == self.SACK and len(self.data) % 8 == 0:
            values = struct.unpack(f"!{len(self.data) // 4}I",
                                   self.data)
            return tuple(zip(values[0::2], values[1::2]))
        return None

    def encode(self) -> bytes:
        if self.kind in (self.END, self.NOP):
            return bytes((self.kind,))
        return bytes((self.kind, 2 + len(self.data))) + self.data


def parse_options(raw: bytes) -> tuple[TCPOption, ...]:
    """Parse the TCP options area (between header and payload)."""
    options: list[TCPOption] = []
    offset = 0
    while offset < len(raw):
        kind = raw[offset]
        if kind == TCPOption.END:
            break
        if kind == TCPOption.NOP:
            options.append(TCPOption(kind=kind))
            offset += 1
            continue
        if offset + 2 > len(raw):
            raise TCPError("truncated TCP option header")
        length = raw[offset + 1]
        if length < 2 or offset + length > len(raw):
            raise TCPError(f"invalid TCP option length {length}")
        options.append(TCPOption(kind=kind,
                                 data=raw[offset + 2:offset + length]))
        offset += length
    return tuple(options)


def encode_options(options) -> bytes:
    """Encode options and pad to a 4-octet boundary with END/NOPs."""
    raw = b"".join(option.encode() for option in options)
    if len(raw) % 4:
        raw += b"\x00" * (4 - len(raw) % 4)
    if len(raw) > 40:
        raise TCPError("TCP options exceed 40 octets")
    return raw


@dataclass(frozen=True)
class TCPFlags:
    """The six classic TCP control flags."""

    syn: bool = False
    ack: bool = False
    fin: bool = False
    rst: bool = False
    psh: bool = False
    urg: bool = False

    def encode(self) -> int:
        return ((0x01 if self.fin else 0)
                | (0x02 if self.syn else 0)
                | (0x04 if self.rst else 0)
                | (0x08 if self.psh else 0)
                | (0x10 if self.ack else 0)
                | (0x20 if self.urg else 0))

    @classmethod
    def decode(cls, bits: int) -> "TCPFlags":
        return cls(fin=bool(bits & 0x01), syn=bool(bits & 0x02),
                   rst=bool(bits & 0x04), psh=bool(bits & 0x08),
                   ack=bool(bits & 0x10), urg=bool(bits & 0x20))

    def __str__(self) -> str:
        names = [name.upper() for name in
                 ("syn", "ack", "fin", "rst", "psh", "urg")
                 if getattr(self, name)]
        return "|".join(names) if names else "-"


#: Common flag combinations.
SYN = TCPFlags(syn=True)
SYN_ACK = TCPFlags(syn=True, ack=True)
ACK = TCPFlags(ack=True)
PSH_ACK = TCPFlags(psh=True, ack=True)
FIN_ACK = TCPFlags(fin=True, ack=True)
RST = TCPFlags(rst=True)
RST_ACK = TCPFlags(rst=True, ack=True)


@dataclass(frozen=True)
class TCPSegment:
    """A TCP segment. ``checksum`` is recomputed on encode."""

    src_port: int
    dst_port: int
    seq: int
    ack: int = 0
    flags: TCPFlags = field(default_factory=TCPFlags)
    window: int = 65535
    payload: bytes = b""
    options: tuple[TCPOption, ...] = ()

    def __post_init__(self) -> None:
        for name, value in (("src_port", self.src_port),
                            ("dst_port", self.dst_port),
                            ("window", self.window)):
            if not 0 <= value <= 0xFFFF:
                raise ValueError(f"{name} must fit in 16 bits")
        for name, value in (("seq", self.seq), ("ack", self.ack)):
            if not 0 <= value < (1 << 32):
                raise ValueError(f"{name} must fit in 32 bits")

    @property
    def sequence_space(self) -> int:
        """Octets of sequence space consumed (payload + SYN/FIN)."""
        return (len(self.payload)
                + (1 if self.flags.syn else 0)
                + (1 if self.flags.fin else 0))

    def encode(self, src_ip: IPv4Address, dst_ip: IPv4Address) -> bytes:
        option_bytes = encode_options(self.options)
        header_size = MIN_HEADER_SIZE + len(option_bytes)
        data_offset = (header_size // 4) << 4
        header = _HEADER.pack(self.src_port, self.dst_port, self.seq,
                              self.ack, data_offset, self.flags.encode(),
                              self.window, 0, 0) + option_bytes
        pseudo = (src_ip.to_bytes() + dst_ip.to_bytes()
                  + struct.pack("!BBH", 0, PROTO_TCP,
                                len(header) + len(self.payload)))
        checksum = internet_checksum(pseudo + header + self.payload)
        header = header[:16] + checksum.to_bytes(2, "big") + header[18:]
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes | memoryview, src_ip: IPv4Address,
               dst_ip: IPv4Address, verify: bool = True) -> "TCPSegment":
        raw = bytes(data)
        if len(raw) < MIN_HEADER_SIZE:
            raise TCPError(f"segment too short: {len(raw)} octets")
        (src_port, dst_port, seq, ack, offset_byte, flag_bits, window,
         _checksum, _urgent) = _HEADER.unpack_from(raw)
        data_offset = (offset_byte >> 4) * 4
        if data_offset < MIN_HEADER_SIZE or len(raw) < data_offset:
            raise TCPError(f"invalid data offset {data_offset}")
        if verify:
            pseudo = (src_ip.to_bytes() + dst_ip.to_bytes()
                      + struct.pack("!BBH", 0, PROTO_TCP, len(raw)))
            if internet_checksum(pseudo + raw) != 0:
                raise TCPError("TCP checksum mismatch")
        options = (parse_options(raw[MIN_HEADER_SIZE:data_offset])
                   if data_offset > MIN_HEADER_SIZE else ())
        return cls(src_port=src_port, dst_port=dst_port, seq=seq, ack=ack,
                   flags=TCPFlags.decode(flag_bits), window=window,
                   payload=raw[data_offset:], options=options)
