"""MAC and IPv4 address value types.

Small, hashable wrappers over the on-wire integer forms. We implement
these (rather than pulling in :mod:`ipaddress`) because the packet
codecs need exact 4/6-octet round-trips and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class MacAddress:
    """48-bit Ethernet hardware address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 48):
            raise ValueError("MAC address must fit in 48 bits")

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        parts = text.split(":")
        if len(parts) != 6:
            raise ValueError(f"invalid MAC address {text!r}")
        try:
            octets = [int(part, 16) for part in parts]
        except ValueError:
            raise ValueError(f"invalid MAC address {text!r}") from None
        if any(not 0 <= octet <= 255 for octet in octets):
            raise ValueError(f"invalid MAC address {text!r}")
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MacAddress":
        if len(raw) != 6:
            raise ValueError("MAC address requires exactly 6 octets")
        return cls(int.from_bytes(raw, "big"))

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(6, "big")

    def __str__(self) -> str:
        return ":".join(f"{octet:02x}" for octet in self.to_bytes())


@dataclass(frozen=True, order=True)
class IPv4Address:
    """32-bit IPv4 address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 32):
            raise ValueError("IPv4 address must fit in 32 bits")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"invalid IPv4 address {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise ValueError(f"invalid IPv4 address {text!r}")
            octet = int(part)
            if octet > 255 or (len(part) > 1 and part[0] == "0"):
                raise ValueError(f"invalid IPv4 address {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "IPv4Address":
        if len(raw) != 4:
            raise ValueError("IPv4 address requires exactly 4 octets")
        return cls(int.from_bytes(raw, "big"))

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(4, "big")

    def __str__(self) -> str:
        return ".".join(str(octet) for octet in self.to_bytes())


def mac(text: str) -> MacAddress:
    """Shorthand parser: ``mac("02:00:00:00:00:01")``."""
    return MacAddress.parse(text)


def ipv4(text: str) -> IPv4Address:
    """Shorthand parser: ``ipv4("10.0.0.1")``."""
    return IPv4Address.parse(text)
