"""Minimal from-scratch network stack.

Ethernet II, IPv4 and TCP codecs, libpcap file I/O, TCP stream
reassembly and TCP connection tracking — everything needed to write the
simulator's output as real pcap bytes and to read it back for analysis.
"""

from .addresses import IPv4Address, MacAddress, ipv4, mac
from .checksum import internet_checksum, verify_checksum
from .ethernet import ETHERTYPE_IPV4, EthernetError, EthernetFrame
from .filter import FilterError, compile_filter, filter_packets
from .flows import DirectionStats, FlowKind, FlowRecord, FlowTable
from .ip import PROTO_TCP, IPv4Error, IPv4Packet
from .packet import CapturedPacket, Endpoint, FlowKey
from .pcap import (LINKTYPE_ETHERNET, PcapError, PcapReader, PcapRecord,
                   PcapWriter, read_pcap, write_pcap)
from .pcapng import (PcapngError, PcapngReader, PcapngWriter,
                     read_pcapng, sniff_format, write_pcapng)
from .reassembly import ReassemblyStats, StreamReassembler, seq_after
from .tcp import (ACK, FIN_ACK, PSH_ACK, RST, RST_ACK, SYN, SYN_ACK,
                  TCPError, TCPFlags, TCPOption, TCPSegment,
                  encode_options, parse_options)

__all__ = [
    "ACK", "CapturedPacket", "DirectionStats", "ETHERTYPE_IPV4",
    "Endpoint", "EthernetError", "EthernetFrame", "FIN_ACK", "FlowKey",
    "FlowKind", "FlowRecord", "FlowTable", "IPv4Address", "IPv4Error",
    "IPv4Packet", "LINKTYPE_ETHERNET", "MacAddress", "PROTO_TCP",
    "PSH_ACK", "PcapError", "PcapReader", "PcapRecord", "PcapWriter",
    "PcapngError", "PcapngReader", "PcapngWriter", "read_pcapng",
    "sniff_format", "write_pcapng",
    "RST", "RST_ACK", "ReassemblyStats", "SYN", "SYN_ACK",
    "FilterError", "compile_filter", "filter_packets",
    "StreamReassembler", "TCPError", "TCPFlags", "TCPOption",
    "TCPSegment", "encode_options", "parse_options",
    "internet_checksum", "ipv4", "mac", "read_pcap", "seq_after",
    "verify_checksum", "write_pcap",
]
