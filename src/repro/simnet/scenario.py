"""Scenario engine: orchestrates links, windows and grid events.

A :class:`Scenario` owns the simulator, the capture tap, the network
map and one :class:`LinkPlan` per outstation. Running it produces a
:class:`SyntheticCapture` — the stand-in for the paper's proprietary
captures, with real pcap-exportable packets.

The plan-to-traffic mapping implements every behaviour of paper
Table 6 / Fig. 17:

* persistent primaries and secondaries connect *before* each capture
  window opens (so they appear long-lived, per Hypothesis 3);
* type 4 outstations reconnect inside each window, alternating servers
  between windows (so both servers eventually see I-format traffic and
  the general interrogation lands inside the capture — the Fig. 13
  ellipse);
* type 7/6 reject loops run at their configured retry period (the
  Fig. 9 / Fig. 14 pathology), including O30's misconfigured 430 s;
* type 8 outstations switch over mid-window: the primary FINs and the
  secondary is promoted on its live connection (Fig. 16);
* the test RTU exchanges exactly two keep-alive pairs, far apart
  (the C4-O22 cluster-0 outlier).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..grid.simulation import GridSimulation
from ..iec104.constants import ProtocolTimers
from .agents import IEC104Link
from .behaviors import OutstationBehavior, OutstationType
from .capture import CaptureTap, CaptureWindow
from .clock import Simulator, Ticks, seconds_to_ticks
from .tcpsim import RetransmissionModel
from .topology import NetworkMap

#: How long before a window opens that persistent links are set up.
WARMUP_S = 150.0

#: Slack after a window closes before persistent links tear down.
COOLDOWN_S = 30.0

#: The same margins in canonical integer-microsecond ticks.
WARMUP_US = seconds_to_ticks(WARMUP_S)
COOLDOWN_US = seconds_to_ticks(COOLDOWN_S)


@dataclass
class LinkPlan:
    """Everything the scenario needs to animate one outstation."""

    behavior: OutstationBehavior
    pair: tuple[str, str]
    primary_server: str
    backup_server: str
    #: Apply AGC set points over this link (the outstation's generator
    #: participates in AGC).
    agc_participant: bool = False
    #: Send a clock-sync (I103) act/con once per window.
    clock_sync: bool = False
    #: The C4-O22 test RTU of Section 6.3.
    test_rtu: bool = False
    #: Send M_EI_NA_1 after (re)connection.
    end_of_init: bool = False


@dataclass
class SyntheticCapture:
    """The output of a scenario run: our stand-in for a real capture."""

    year: int
    tap: CaptureTap
    windows: tuple[CaptureWindow, ...]
    network: NetworkMap
    plans: list[LinkPlan]
    grid: GridSimulation
    links: dict[tuple[str, str], IEC104Link] = field(default_factory=dict)

    @property
    def packets(self):
        return self.tap.packets

    @property
    def duration(self) -> float:
        return sum(window.duration for window in self.windows)

    def to_pcap(self, stream) -> int:
        return self.tap.to_pcap(stream)

    def to_pcapng(self, stream) -> int:
        return self.tap.to_pcapng(stream)

    def host_names(self) -> dict:
        return self.network.address_book()


class Scenario:
    """Drives one capture year of the synthetic bulk-power network."""

    def __init__(self, year: int, plans: list[LinkPlan],
                 grid: GridSimulation, network: NetworkMap,
                 windows: tuple[CaptureWindow, ...],
                 seed: int = 104,
                 retransmission_probability: float = 0.004,
                 timers: ProtocolTimers | None = None,
                 agc_dispatch_period: float = 45.0,
                 agc_deadband_mw: float = 0.5,
                 capture_loss_probability: float = 0.0,
                 ack_policy: str = "none",
                 window_index_offset: int = 0):
        if not windows:
            raise ValueError("scenario needs at least one capture window")
        self.year = year
        self.plans = plans
        self.grid = grid
        self.network = network
        self.windows = tuple(sorted(windows,
                                    key=lambda w: w.start_us))
        self.seed = seed
        #: Global index of ``windows[0]`` within the capture year. Lets
        #: a scenario that simulates a subset of the year's windows (the
        #: parallel windowed generator runs one scenario per day) keep
        #: the index-dependent behaviours — server alternation, the
        #: first-window test RTU — aligned with the full-year run.
        self.window_index_offset = window_index_offset
        self.timers = timers or ProtocolTimers()
        self._retransmission = RetransmissionModel(
            probability=retransmission_probability)
        self._agc_period = agc_dispatch_period
        self._agc_deadband = agc_deadband_mw
        self._ack_policy = ack_policy
        first_us = self.windows[0].start_us
        if first_us < WARMUP_US:
            raise ValueError(
                f"first window must start at >= {WARMUP_S}s to leave room "
                "for pre-capture connection establishment")
        self.sim = Simulator(start_us=first_us - WARMUP_US)
        self._rng = random.Random(seed)
        self.tap = CaptureTap(
            windows=self.windows,
            loss_probability=capture_loss_probability,
            rng=random.Random(self._rng.randrange(1 << 30)))
        self._links: dict[tuple[str, str], IEC104Link] = {}
        self._last_dispatched: dict[str, float] = {}

    # -- link construction ---------------------------------------------------

    def _make_link(self, server: str, plan: LinkPlan,
                   keepalive: float | None = None) -> IEC104Link:
        behavior = plan.behavior
        on_setpoint: Callable[[float], None] | None = None
        if plan.agc_participant and behavior.generator is not None:
            generator = self.grid.fleet[behavior.generator]
            on_setpoint = generator.apply_setpoint
        link = IEC104Link(
            sim=self.sim, tap=self.tap, rng=self._rng,
            server_host=self.network[server],
            outstation_host=self.network[behavior.name],
            behavior=behavior, server_name=server,
            timers=self.timers, retransmission=self._retransmission,
            on_setpoint=on_setpoint, send_end_of_init=plan.end_of_init)
        link.ack_policy = self._ack_policy
        self._links[(server, behavior.name)] = link
        return link

    # -- scheduling ---------------------------------------------------

    def run(self) -> SyntheticCapture:
        """Schedule every link's lifecycle and run the simulation."""
        for index, window in enumerate(self.windows,
                                       start=self.window_index_offset):
            for plan in self.plans:
                self._schedule_plan(plan, window, index)
        end_us = (self.windows[-1].end_us + COOLDOWN_US
                  + seconds_to_ticks(10.0))
        self.sim.run_until(end_us)
        return SyntheticCapture(year=self.year, tap=self.tap,
                                windows=self.windows, network=self.network,
                                plans=self.plans, grid=self.grid,
                                links=dict(self._links))

    def _jitter_us(self, base_us: Ticks, spread_s: float) -> Ticks:
        """``base_us`` plus a uniform jitter of up to ``spread_s``
        seconds, quantized to ticks."""
        return base_us + seconds_to_ticks(
            self._rng.uniform(0.0, spread_s))

    def _schedule_plan(self, plan: LinkPlan, window: CaptureWindow,
                       index: int) -> None:
        kind = plan.behavior.outstation_type
        if plan.test_rtu:
            if index == 0:
                self._schedule_test_rtu(plan, window)
            return
        if kind is OutstationType.PRIMARY_ONLY:
            self._schedule_primary(plan, plan.primary_server, window,
                                   inside=False)
        elif kind is OutstationType.IDEAL:
            self._schedule_primary(plan, plan.primary_server, window,
                                   inside=False)
            self._schedule_secondary(plan, plan.backup_server, window)
        elif kind is OutstationType.BACKUP_U_ONLY:
            self._schedule_secondary(plan, plan.pair[0], window)
            self._schedule_secondary(plan, plan.pair[1], window)
        elif kind is OutstationType.I_ONLY_BOTH_SERVERS:
            server = plan.pair[index % 2]
            self._schedule_primary(plan, server, window, inside=True)
        elif kind is OutstationType.SINGLE_SERVER_I_AND_U:
            self._schedule_primary(plan, plan.primary_server, window,
                                   inside=False)
        elif kind is OutstationType.REJECTS_SECONDARY:
            self._schedule_primary(plan, plan.primary_server, window,
                                   inside=False)
            self._schedule_reject(plan, plan.backup_server, window)
        elif kind is OutstationType.BACKUP_REJECTS:
            self._schedule_reject(plan, plan.backup_server, window)
        elif kind is OutstationType.SWITCHOVER_OBSERVED:
            self._schedule_switchover(plan, window, index)
        else:  # pragma: no cover - exhaustive over OutstationType
            raise AssertionError(f"unhandled type {kind}")

    def _schedule_primary(self, plan: LinkPlan, server: str,
                          window: CaptureWindow, inside: bool) -> None:
        link = self._make_link(server, plan)
        link.run_until(window.end_us + COOLDOWN_US)
        if inside:
            # Type 4: the connection both starts and gracefully ends
            # inside the capture — the paper's few >1 s short-lived
            # flows (Table 3, second row).
            start = self._jitter_us(window.start_us + 5_000_000, 25.0)
            close_at = window.end_us - self._jitter_us(1_000_000, 4.0)
        else:
            start = self._jitter_us(
                window.start_us - WARMUP_US + 5_000_000, 60.0)
            close_at = window.end_us + COOLDOWN_US + 1_000_000
        self.sim.schedule(start,
                          lambda: link.start_primary(self.sim.now_us))
        self.sim.schedule(close_at, lambda: link.close(self.sim.now_us))
        if plan.agc_participant:
            self._schedule_agc(link, plan, window)
        if plan.clock_sync:
            sync_at = self._jitter_us(
                window.start_us + round(0.3 * window.duration_us),
                0.2 * window.duration)
            self.sim.schedule(
                sync_at, lambda: link.send_clock_sync(self.sim.now_us))

    def _schedule_secondary(self, plan: LinkPlan, server: str,
                            window: CaptureWindow) -> None:
        link = self._make_link(server, plan)
        link.run_until(window.end_us + COOLDOWN_US)
        start = self._jitter_us(
            window.start_us - WARMUP_US + 5_000_000, 60.0)
        self.sim.schedule(
            start, lambda: link.start_secondary(self.sim.now_us))
        close_at = window.end_us + COOLDOWN_US + 1_000_000
        self.sim.schedule(close_at, lambda: link.close(self.sim.now_us))

    def _schedule_reject(self, plan: LinkPlan, server: str,
                         window: CaptureWindow) -> None:
        link = self._make_link(server, plan)
        link.run_until(window.end_us)
        start = self._jitter_us(window.start_us + 500_000,
                                plan.behavior.reject_retry_period)
        self.sim.schedule(
            start, lambda: link.start_reject_loop(self.sim.now_us))

    def _schedule_switchover(self, plan: LinkPlan, window: CaptureWindow,
                             index: int = 0) -> None:
        # Alternate the switchover direction between capture days, so
        # across a year both servers are seen being promoted (the
        # paper's Fig. 13 ellipse pairs: O29 with both C1 and C2).
        if index % 2 == 0:
            primary_server, backup_server = plan.pair
        else:
            backup_server, primary_server = plan.pair
        primary = self._make_link(primary_server, plan)
        primary.run_until(window.end_us + COOLDOWN_US)
        start = self._jitter_us(
            window.start_us - WARMUP_US + 5_000_000, 30.0)
        self.sim.schedule(
            start, lambda: primary.start_primary(self.sim.now_us))

        backup = self._make_link(backup_server, plan,)
        backup.run_until(window.end_us + COOLDOWN_US)
        backup_start = self._jitter_us(
            window.start_us - WARMUP_US + 5_000_000, 30.0)
        self.sim.schedule(backup_start,
                          lambda: backup.start_secondary(self.sim.now_us))

        switch_at = self._jitter_us(
            window.start_us + round(0.45 * window.duration_us),
            0.1 * window.duration)

        def do_switchover() -> None:
            now_us = self.sim.now_us
            if primary.connected:
                primary.close(now_us, from_server=True)
            if backup.connected:
                backup.promote(now_us + 500_000)

        self.sim.schedule(switch_at, do_switchover)
        close_at = window.end_us + COOLDOWN_US + 1_000_000
        self.sim.schedule(close_at,
                          lambda: primary.close(self.sim.now_us))
        self.sim.schedule(close_at, lambda: backup.close(self.sim.now_us))
        if plan.agc_participant:
            self._schedule_agc(primary, plan, window)

    def _schedule_test_rtu(self, plan: LinkPlan,
                           window: CaptureWindow) -> None:
        """C4-O22: a being-tested RTU that exchanged only 4 packets."""
        server = plan.pair[1]  # C4 in the paper
        link = self._make_link(server, plan)
        link.run_until(window.end_us)
        first = window.start_us + round(0.05 * window.duration_us)
        second = window.start_us + round(0.9 * window.duration_us)

        def start() -> None:
            link.connect(self.sim.now_us)
            link._send_frame(self.sim.now_us + 500_000,
                             _testfr_act(), from_server=True)

        def probe_again() -> None:
            if link.connected:
                link._send_frame(self.sim.now_us, _testfr_act(),
                                 from_server=True)
                link.close(self.sim.now_us + 1_000_000)

        self.sim.schedule(first, start)
        self.sim.schedule(second, probe_again)

    def _schedule_agc(self, link: IEC104Link, plan: LinkPlan,
                      window: CaptureWindow) -> None:
        """Periodic AGC dispatch with a deadband (I50 commands)."""
        if plan.behavior.generator is None:
            return  # participant without a generator: nothing to dispatch
        generator: str = plan.behavior.generator

        def dispatch() -> None:
            now_us = self.sim.now_us
            if now_us > window.end_us:
                return
            # Grid physics integrates in seconds; hand it the derived
            # float view of the tick clock.
            setpoint = self.grid.setpoint_for(generator, self.sim.now)
            last = self._last_dispatched.get(generator)
            if (last is None
                    or abs(setpoint - last) >= self._agc_deadband):
                link.send_setpoint(now_us, setpoint)
                self._last_dispatched[generator] = setpoint
            self.sim.schedule_in(
                seconds_to_ticks(self._agc_period
                                 * self._rng.uniform(0.9, 1.1)),
                dispatch)

        first = self._jitter_us(window.start_us + 2_000_000,
                                self._agc_period)
        self.sim.schedule(first, dispatch)


def _testfr_act():
    from ..iec104.apci import UFrame
    from ..iec104.constants import UFunction
    return UFrame(UFunction.TESTFR_ACT)
