"""An Industroyer-style attacker against the simulated network.

Section 6.3.1 of the paper discusses the Industroyer malware used in
the 2016 Ukraine blackout: after establishing a TCP connection to an
outstation, it iterates over ASDU addresses and IOAs to discover the
station's points ("ICS reconnaissance"), then issues single/double
commands against them. The paper notes a single I100 interrogation
would have achieved the same discovery in one message.

This module generates that attack traffic against a simulated
outstation, in both variants, so detection pipelines (e.g. the
whitelist IDS of :mod:`repro.analysis.whitelist`) can be evaluated on
labelled malicious captures.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from ..iec104.constants import ProtocolTimers
from ..netstack.addresses import IPv4Address, MacAddress
from .agents import IEC104Link
from .behaviors import OutstationBehavior
from .capture import CaptureTap
from .clock import Simulator, seconds_to_ticks, ticks_to_seconds
from .tcpsim import SimHost


class ReconnaissanceMode(enum.Enum):
    """How the attacker discovers the outstation's points."""

    ITERATIVE_SCAN = "iterative IOA probing (Industroyer)"
    INTERROGATION = "single general interrogation (paper's shortcut)"


@dataclass
class AttackResult:
    """Outcome of one attack run."""

    tap: CaptureTap
    mode: ReconnaissanceMode
    discovered_ioas: list[int] = field(default_factory=list)
    probes_sent: int = 0
    commands_sent: int = 0
    duration: float = 0.0

    @property
    def packets(self):
        return self.tap.packets

    def host_names(self) -> dict[IPv4Address, str]:
        return dict(self._names)

    _names: dict[IPv4Address, str] = field(default_factory=dict)


def run_attack(behavior: OutstationBehavior,
               mode: ReconnaissanceMode
               = ReconnaissanceMode.ITERATIVE_SCAN,
               scan_range: tuple[int, int] = (2001, 2050),
               probe_interval: float = 0.25,
               command_count: int = 6,
               seed: int = 66) -> AttackResult:
    """Execute the attack against ``behavior``; return the capture.

    ``scan_range`` bounds the iterative IOA sweep (Industroyer probed
    address ranges blindly). In INTERROGATION mode a single I100
    replaces the sweep — and its burst reveals every point at once.
    """
    sim = Simulator()
    tap = CaptureTap()
    rng = random.Random(seed)
    attacker_host = SimHost(name="ATTACKER",
                            ip=IPv4Address(0xC0A80A0A),
                            mac=MacAddress(0x02DEADBEEF00))
    outstation_host = SimHost(name=behavior.name,
                              ip=IPv4Address(0x0A019999),
                              mac=MacAddress(0x020000009999))
    link = IEC104Link(sim=sim, tap=tap, rng=rng,
                      server_host=attacker_host,
                      outstation_host=outstation_host,
                      behavior=behavior, server_name="ATTACKER",
                      timers=ProtocolTimers())
    link.run_until(None)

    result = AttackResult(tap=tap, mode=mode)
    result._names = {attacker_host.ip: "ATTACKER",
                     outstation_host.ip: behavior.name}

    # Phase 1: connect + STARTDT (+ interrogation, which IEC104Link
    # always performs on promotion — in INTERROGATION mode that IS the
    # reconnaissance; in ITERATIVE mode Industroyer skipped it, so we
    # drop those packets from the accounting below).
    start = 1_000_000
    link.start_primary(start)
    sim.run_until(start + 2_000_000)

    if mode is ReconnaissanceMode.ITERATIVE_SCAN:
        interval_us = seconds_to_ticks(probe_interval)
        when = sim.now_us + interval_us
        for ioa in range(scan_range[0], scan_range[1] + 1):
            def probe(ioa=ioa):
                if link.send_read(sim.now_us, ioa):
                    result.discovered_ioas.append(ioa)
                result.probes_sent += 1
            sim.schedule(when, probe)
            when += interval_us
        sim.run_until(when + 1_000_000)
    else:
        # The interrogation burst already happened during promotion;
        # everything the outstation reported is "discovered".
        result.discovered_ioas = [point.ioa
                                  for point in behavior.points]
        result.probes_sent = 1

    # Phase 2: malicious commands against discovered points.
    when = sim.now_us + 500_000
    for index, ioa in enumerate(result.discovered_ioas[:command_count]):
        def strike(ioa=ioa, open_breaker=(index % 2 == 0)):
            link.send_single_command(sim.now_us, ioa, state=open_breaker)
            result.commands_sent += 1
        sim.schedule(when, strike)
        when += 500_000
    sim.run_until(when + 1_000_000)
    link.close(sim.now_us + 100_000, rst=False)
    sim.run_until(sim.now_us + 1_000_000)
    result.duration = ticks_to_seconds(sim.now_us)
    return result
