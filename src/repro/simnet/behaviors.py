"""Outstation behaviour models.

Table 6 / Fig. 17 of the paper classify outstations into 8 behaviour
types; Section 6.1 additionally found legacy non-compliant encodings,
and Section 6.3 a misconfigured keep-alive timer and a stale-threshold
outstation. This module captures all of that as declarative
configuration consumed by the simulator agents.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from ..iec104.constants import TypeID
from ..iec104.profiles import STANDARD_PROFILE, LinkProfile


class OutstationType(enum.IntEnum):
    """Paper Table 6 types 1-6 plus the point-(1,1) type 7 and the
    observed-switchover type 8 (Fig. 17)."""

    PRIMARY_ONLY = 1          # no secondary connection, I-format only
    IDEAL = 2                 # primary + secondary with U16/U32
    BACKUP_U_ONLY = 3         # redundant RTU, U-format only
    I_ONLY_BOTH_SERVERS = 4   # switched servers between captures
    SINGLE_SERVER_I_AND_U = 5  # stale thresholds force in-band TESTFR
    REJECTS_SECONDARY = 6     # primary OK, backup connection refused
    BACKUP_REJECTS = 7        # backup RTU that resets every attempt
    SWITCHOVER_OBSERVED = 8   # secondary promoted mid-capture


class RejectMode(enum.Enum):
    """How a misbehaving outstation disposes of backup connections."""

    NONE = "accepts connections"
    RST_AFTER_TESTFR = "establishes, then RSTs the first TESTFR act"
    FIN_AFTER_TESTFR = "establishes, then FINs the first TESTFR act"
    IGNORE_SYN = "silently drops SYNs (flow never terminates)"


class ReportMode(enum.Enum):
    PERIODIC = "periodic"         # COT=1, fixed cadence
    SPONTANEOUS = "spontaneous"   # COT=3, threshold-triggered


#: Physical symbols of paper Table 8.
SYMBOL_CURRENT = "I"
SYMBOL_ACTIVE_POWER = "P"
SYMBOL_REACTIVE_POWER = "Q"
SYMBOL_VOLTAGE = "U"
SYMBOL_FREQUENCY = "Freq"
SYMBOL_STATUS = "Status"
SYMBOL_AGC_SETPOINT = "AGC-SP"


@dataclass
class PointConfig:
    """One field-device measurement point behind an outstation.

    ``source`` maps simulation time to the current physical value; the
    scenario wires it to the grid model. ``threshold`` applies to
    spontaneous points (report only when the value moved at least this
    far from the last transmitted value — the paper's Type 5 outstation
    had this set so large its data went stale).
    """

    ioa: int
    type_id: TypeID
    symbol: str
    source: Callable[[float], float] = lambda _t: 0.0
    mode: ReportMode = ReportMode.SPONTANEOUS
    threshold: float = 0.5
    period: float = 4.0  # cadence of periodic reports / threshold checks

    def __post_init__(self) -> None:
        if self.ioa <= 0:
            raise ValueError("IOA must be positive")
        if self.threshold < 0:
            raise ValueError("threshold must be >= 0")
        if self.period <= 0:
            raise ValueError("period must be positive")


@dataclass
class OutstationBehavior:
    """Complete behavioural description of one outstation."""

    name: str
    substation: str
    outstation_type: OutstationType
    points: list[PointConfig] = field(default_factory=list)
    #: Link profile used when *encoding* (legacy RTUs of §6.1).
    profile: LinkProfile = STANDARD_PROFILE
    reject_mode: RejectMode = RejectMode.NONE
    #: Keep-alive period on secondary links (paper norm ~30 s; O30 430 s).
    keepalive_period: float = 30.0
    #: Interval between reporting sweeps over the point list.
    report_interval: float = 2.0
    #: Reconnect delay after the backup connection is rejected.
    reject_retry_period: float = 10.0
    has_generator: bool = False
    #: Generator identifier in the grid model (when has_generator).
    generator: str | None = None
    #: IOA that carries AGC set points (written by the control center).
    agc_setpoint_ioa: int | None = None

    def __post_init__(self) -> None:
        if self.keepalive_period <= 0:
            raise ValueError("keepalive_period must be positive")
        if self.report_interval <= 0:
            raise ValueError("report_interval must be positive")
        if self.reject_retry_period <= 0:
            raise ValueError("reject_retry_period must be positive")
        addresses = [point.ioa for point in self.points]
        if len(addresses) != len(set(addresses)):
            raise ValueError(f"duplicate IOAs in outstation {self.name}")
        rejecting = (OutstationType.REJECTS_SECONDARY,
                     OutstationType.BACKUP_REJECTS)
        if (self.outstation_type in rejecting
                and self.reject_mode is RejectMode.NONE):
            raise ValueError(
                f"{self.name}: type {self.outstation_type.name} requires "
                "a reject mode")

    @property
    def ioa_count(self) -> int:
        return len(self.points)

    @property
    def sends_i_frames(self) -> bool:
        """True when this outstation transmits measurement data."""
        return self.outstation_type not in (OutstationType.BACKUP_U_ONLY,
                                            OutstationType.BACKUP_REJECTS)
