"""Host and address assignment for the simulated SCADA network."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netstack.addresses import IPv4Address, MacAddress
from .tcpsim import SimHost

#: Private /16 used by the control center and the substations.
_SERVER_NET = 0x0A000000      # 10.0.0.0/24 — control servers
_OUTSTATION_NET = 0x0A010000  # 10.1.0.0/16 — substation RTUs
_AUXILIARY_NET = 0x0A020000   # 10.2.0.0/16 — PMUs, external centers
_MAC_BASE = 0x020000000000    # locally administered


@dataclass
class NetworkMap:
    """Maps logical names (C1, O17, ...) to simulated hosts."""

    hosts: dict[str, SimHost] = field(default_factory=dict)
    _server_count: int = 0
    _outstation_count: int = 0
    _auxiliary_count: int = 0

    def add_server(self, name: str) -> SimHost:
        self._server_count += 1
        return self._add(name, _SERVER_NET + self._server_count,
                         len(self.hosts) + 1)

    def add_outstation(self, name: str) -> SimHost:
        self._outstation_count += 1
        return self._add(name, _OUTSTATION_NET + self._outstation_count,
                         len(self.hosts) + 1)

    def add_auxiliary(self, name: str) -> SimHost:
        """A non-IEC-104 host: a PMU or an external control center."""
        self._auxiliary_count += 1
        return self._add(name, _AUXILIARY_NET + self._auxiliary_count,
                         len(self.hosts) + 1)

    def _add(self, name: str, ip_value: int, mac_index: int) -> SimHost:
        if name in self.hosts:
            raise ValueError(f"duplicate host {name}")
        host = SimHost(name=name, ip=IPv4Address(ip_value),
                       mac=MacAddress(_MAC_BASE + mac_index))
        self.hosts[name] = host
        return host

    def __getitem__(self, name: str) -> SimHost:
        return self.hosts[name]

    def __contains__(self, name: str) -> bool:
        return name in self.hosts

    def name_of(self, address: IPv4Address) -> str | None:
        """Reverse lookup: IP address to logical name."""
        for name, host in self.hosts.items():
            if host.ip == address:
                return name
        return None

    def address_book(self) -> dict[IPv4Address, str]:
        """Full IP-to-name mapping (what the analyst knows from the
        operator's documentation)."""
        return {host.ip: name for name, host in self.hosts.items()}
