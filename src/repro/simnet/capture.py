"""Capture tap: where simulated packets land.

Mirrors the paper's Fig. 5 network tap between the substations and the
SCADA servers. The tap collects :class:`CapturedPacket` objects; it can
restrict collection to configured *capture windows* (the paper's 5+3
separate capture days) and export classic pcap bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..netstack.packet import CapturedPacket
from ..netstack.pcap import PcapRecord, PcapWriter


@dataclass(frozen=True)
class CaptureWindow:
    """A [start, end) interval during which the tap records traffic."""

    start: float
    end: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("capture window must have positive duration")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def contains(self, timestamp: float) -> bool:
        return self.start <= timestamp < self.end


class CaptureTap:
    """Collects packets that fall inside the configured windows.

    With no windows configured, everything is recorded (one continuous
    capture). ``loss_probability`` models *capture* loss — a span port
    or capture host dropping frames under load — which the endpoints
    themselves never see (their TCP exchange is unaffected); the
    analysis pipeline must cope via resynchronization and reassembly
    gap handling.
    """

    def __init__(self, windows: tuple[CaptureWindow, ...] = (),
                 loss_probability: float = 0.0,
                 rng: random.Random | None = None):
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        self.windows = windows
        self.packets: list[CapturedPacket] = []
        self.dropped = 0
        self.lost = 0
        self._loss = loss_probability
        self._rng = rng or random.Random(1313)

    def observe(self, packet: CapturedPacket) -> None:
        if self.windows and not any(window.contains(packet.timestamp)
                                    for window in self.windows):
            self.dropped += 1
            return
        if self._loss and self._rng.random() < self._loss:
            self.lost += 1
            return
        self.packets.append(packet)

    def window_packets(self, window: CaptureWindow) -> list[CapturedPacket]:
        return [packet for packet in self.packets
                if window.contains(packet.timestamp)]

    @property
    def total_duration(self) -> float:
        if self.windows:
            return sum(window.duration for window in self.windows)
        if not self.packets:
            return 0.0
        return self.packets[-1].timestamp - self.packets[0].timestamp

    def to_pcap(self, stream) -> int:
        """Write the capture as classic pcap; return the record count."""
        writer = PcapWriter(stream)
        return writer.write_all(
            PcapRecord(timestamp=packet.timestamp, data=packet.encode())
            for packet in self.packets)
