"""Capture tap: where simulated packets land.

Mirrors the paper's Fig. 5 network tap between the substations and the
SCADA servers. The tap collects :class:`CapturedPacket` objects; it can
restrict collection to configured *capture windows* (the paper's 5+3
separate capture days) and export classic pcap bytes.

Windows are stored in canonical integer-microsecond ticks (see
:mod:`repro.simnet.clock`); ``start``/``end``/``duration`` remain
available as derived float-second views for models that work in
seconds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..netstack.packet import CapturedPacket
from ..netstack.pcap import PcapRecord, PcapWriter
from .clock import US_PER_SECOND, Ticks, seconds_to_ticks


@dataclass(frozen=True)
class CaptureWindow:
    """A [start, end) tick interval during which the tap records."""

    start_us: Ticks
    end_us: Ticks
    label: str = ""

    def __post_init__(self) -> None:
        for name in ("start_us", "end_us"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise TypeError(
                    f"{name} must be integer microsecond ticks, "
                    f"got {value!r}")
        if self.end_us <= self.start_us:
            raise ValueError("capture window must have positive duration")

    @classmethod
    def from_seconds(cls, start: float, end: float,
                     label: str = "") -> "CaptureWindow":
        """Build a window from float seconds (quantized to ticks)."""
        return cls(start_us=seconds_to_ticks(start),
                   end_us=seconds_to_ticks(end), label=label)

    @property
    def duration_us(self) -> Ticks:
        return self.end_us - self.start_us

    @property
    def start(self) -> float:
        """Derived float-seconds view of :attr:`start_us`."""
        return self.start_us / US_PER_SECOND

    @property
    def end(self) -> float:
        """Derived float-seconds view of :attr:`end_us`."""
        return self.end_us / US_PER_SECOND

    @property
    def duration(self) -> float:
        """Derived float-seconds view of :attr:`duration_us`."""
        return self.duration_us / US_PER_SECOND

    def contains(self, time_us: Ticks) -> bool:
        return self.start_us <= time_us < self.end_us


class CaptureTap:
    """Collects packets that fall inside the configured windows.

    With no windows configured, everything is recorded (one continuous
    capture). ``loss_probability`` models *capture* loss — a span port
    or capture host dropping frames under load — which the endpoints
    themselves never see (their TCP exchange is unaffected); the
    analysis pipeline must cope via resynchronization and reassembly
    gap handling.
    """

    def __init__(self, windows: tuple[CaptureWindow, ...] = (),
                 loss_probability: float = 0.0,
                 rng: random.Random | None = None):
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        self.windows = windows
        self.packets: list[CapturedPacket] = []
        self.dropped = 0
        self.lost = 0
        self._loss = loss_probability
        self._rng = rng or random.Random(1313)

    def observe(self, packet: CapturedPacket) -> None:
        if self.windows and not any(window.contains(packet.time_us)
                                    for window in self.windows):
            self.dropped += 1
            return
        if self._loss and self._rng.random() < self._loss:
            self.lost += 1
            return
        self.packets.append(packet)

    def window_packets(self, window: CaptureWindow) -> list[CapturedPacket]:
        return [packet for packet in self.packets
                if window.contains(packet.time_us)]

    @property
    def total_duration(self) -> float:
        """Covered capture time in derived float seconds."""
        if self.windows:
            return sum(window.duration for window in self.windows)
        if not self.packets:
            return 0.0
        span_us = self.packets[-1].time_us - self.packets[0].time_us
        return span_us / US_PER_SECOND

    def to_pcap(self, stream) -> int:
        """Write the capture as classic pcap; return the record count."""
        writer = PcapWriter(stream)
        return writer.write_all(
            PcapRecord(time_us=packet.time_us, data=packet.encode())
            for packet in self.packets)

    def to_pcapng(self, stream) -> int:
        """Write the capture as pcapng; return the record count."""
        from ..netstack.pcapng import PcapngWriter
        writer = PcapngWriter(stream)
        count = 0
        for packet in self.packets:
            writer.write(packet.time_us, packet.encode())
            count += 1
        return count
