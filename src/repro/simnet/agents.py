"""IEC 104 protocol agents riding the simulated TCP connections.

One :class:`IEC104Link` models a logical server-to-outstation
association: it owns at most one live TCP connection, two
:class:`~repro.iec104.state_machine.ConnectionMachine` instances (one
per endpoint, with real sequence-number accounting), and the scheduling
logic for every behaviour the paper reports:

* primary connections: STARTDT, general interrogation (I100), periodic
  and spontaneous measurement reporting, S-format acknowledgements
  driven by the w window and the T2 timer, AGC set-point commands,
  occasional clock synchronization, in-band TESTFR when idle > T3;
* secondary connections: TESTFR act/con keep-alives (Fig. 4);
* promotion of a secondary to primary mid-capture (Fig. 16);
* the Fig. 9 pathologies: backup connections answered with RST/FIN
  after the first TESTFR act, or SYNs silently ignored.

All scheduling is in integer-microsecond ticks; behavioural knobs
(keep-alive period, report interval, protocol timers) stay in float
seconds and are quantized at each use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..iec104.apci import IFrame, SFrame, UFrame
from ..iec104.asdu import ASDU, InformationObject
from ..iec104.constants import Cause, ProtocolTimers, TypeID, UFunction
from ..iec104.information_elements import (Bitstring32, ClockSyncCommand,
                                           DoublePoint, InterrogationCommand,
                                           NormalizedValue, ReadCommand,
                                           SetpointFloat, ShortFloat,
                                           SingleCommand, SinglePoint,
                                           StepPosition,
                                           EndOfInitialization)
from ..iec104.state_machine import ActionKind, ConnectionMachine
from ..iec104.time_tag import CP56Time2a
from .behaviors import (OutstationBehavior, PointConfig, RejectMode,
                        ReportMode)
from .capture import CaptureTap
from .clock import (Simulator, Ticks, seconds_to_ticks,
                    ticks_to_seconds)
from .tcpsim import RetransmissionModel, SimConnection, SimHost

#: Gap between back-to-back application frames on one connection (µs).
_FRAME_GAP_US = 4000

_TIMED_TYPES = {
    TypeID.M_SP_TB_1, TypeID.M_DP_TB_1, TypeID.M_ST_TB_1,
    TypeID.M_BO_TB_1, TypeID.M_ME_TD_1, TypeID.M_ME_TE_1,
    TypeID.M_ME_TF_1, TypeID.M_IT_TB_1,
}


def build_element(type_id: TypeID, value: float, now_us: Ticks):
    """Build the information element for a measurement point."""
    time = (CP56Time2a.from_us(now_us) if type_id in _TIMED_TYPES
            else None)
    if type_id in (TypeID.M_ME_NC_1, TypeID.M_ME_TF_1):
        return ShortFloat(value=float(value), time=time)
    if type_id in (TypeID.M_ME_NA_1, TypeID.M_ME_TD_1):
        clamped = max(-1.0, min(0.99996, float(value)))
        return NormalizedValue(value=clamped, time=time)
    if type_id in (TypeID.M_SP_NA_1, TypeID.M_SP_TB_1):
        return SinglePoint(value=bool(round(value)), time=time)
    if type_id in (TypeID.M_DP_NA_1, TypeID.M_DP_TB_1):
        return DoublePoint(state=int(round(value)) & 0x03, time=time)
    if type_id is TypeID.M_ST_NA_1:
        return StepPosition(value=max(-64, min(63, int(round(value)))))
    if type_id is TypeID.M_BO_NA_1:
        return Bitstring32(bits=int(round(value)) & 0xFFFFFFFF)
    raise ValueError(f"unsupported measurement typeID {type_id.name}")


@dataclass
class LinkStats:
    """Per-link counters, useful for tests and scenario debugging."""

    connections: int = 0
    i_frames: int = 0
    s_frames: int = 0
    u_frames: int = 0
    rejects: int = 0
    setpoints: int = 0


class IEC104Link:
    """A server-to-outstation IEC 104 association in the simulation."""

    def __init__(self, sim: Simulator, tap: CaptureTap,
                 rng: random.Random, server_host: SimHost,
                 outstation_host: SimHost, behavior: OutstationBehavior,
                 server_name: str, common_address: int = 1,
                 timers: ProtocolTimers | None = None,
                 retransmission: RetransmissionModel | None = None,
                 on_setpoint: Callable[[float], None] | None = None,
                 send_end_of_init: bool = False):
        self._sim = sim
        self._tap = tap
        self._rng = rng
        self.server_host = server_host
        self.outstation_host = outstation_host
        self.behavior = behavior
        self.server_name = server_name
        self.common_address = common_address
        self.timers = timers or ProtocolTimers()
        self._retransmission = retransmission
        self._on_setpoint = on_setpoint
        self._send_end_of_init = send_end_of_init

        self._conn: SimConnection | None = None
        self._server = ConnectionMachine(is_controlling=True,
                                         timers=self.timers)
        self._outstation = ConnectionMachine(is_controlling=False,
                                             timers=self.timers)
        self._epoch = 0
        #: Scheduling horizon in ticks; None means unbounded.
        self._end_us: Ticks | None = None
        self._last_sent: dict[int, float] = {}
        self._next_periodic: dict[int, Ticks] = {}
        self._last_activity: Ticks = 0
        self._ack_flush_pending = False
        self.is_primary = False
        self.stats = LinkStats()

    # -- lifecycle ----------------------------------------------------------

    @property
    def connected(self) -> bool:
        return (self._conn is not None and self._conn.established
                and not self._conn.closed)

    #: TCP acknowledgement policy for the link's connections ("none"
    #: or "delayed"); set by the scenario.
    ack_policy = "none"

    def _new_connection(self) -> SimConnection:
        retrans = self._retransmission or RetransmissionModel()
        return SimConnection(self._sim, self._tap, self.server_host,
                             self.outstation_host, server_port=2404,
                             rng=self._rng, retransmission=retrans,
                             ack_policy=self.ack_policy)

    def connect(self, when_us: Ticks) -> Ticks:
        """Establish a fresh TCP connection; both machines reset."""
        if self.connected:
            raise RuntimeError(f"{self._label()}: already connected")
        self._conn = self._new_connection()
        done = self._conn.establish(when_us)
        # The ConnectionMachine API is float-seconds (it is shared with
        # the wall-clock socket endpoints); hand it derived seconds.
        self._server.connection_opened(ticks_to_seconds(done))
        self._outstation.connection_opened(ticks_to_seconds(done))
        self.stats.connections += 1
        self.is_primary = False
        self._last_sent.clear()
        self._next_periodic.clear()
        self._last_activity = done
        return done

    def close(self, when_us: Ticks, rst: bool = False,
              from_server: bool = True) -> None:
        """Tear down the live connection and cancel scheduled loops."""
        self._epoch += 1
        self.is_primary = False
        conn = self._conn
        if conn is not None and conn.established and not conn.closed:
            if rst:
                conn.close_rst(when_us, from_client=from_server)
            else:
                conn.close_fin(when_us, from_client=from_server)

    def run_until(self, end_us: Ticks | None) -> None:
        """Set the horizon past which loops stop rescheduling.

        ``None`` removes the horizon (loops reschedule forever; the
        caller bounds the run via :meth:`Simulator.run_until`).
        """
        self._end_us = end_us

    def _past_horizon(self, when_us: Ticks) -> bool:
        return self._end_us is not None and when_us > self._end_us

    # -- frame plumbing ------------------------------------------------------

    def _label(self) -> str:
        return f"{self.server_name}-{self.behavior.name}"

    def _send_frame(self, when_us: Ticks, frame,
                    from_server: bool) -> Ticks:
        conn = self._conn
        if conn is None:
            raise RuntimeError(f"{self._label()}: not connected")
        payload = frame.encode(self.behavior.profile)
        arrival = conn.send(when_us, from_client=from_server,
                            payload=payload)
        sender = self._server if from_server else self._outstation
        receiver = self._outstation if from_server else self._server
        sender.on_send(frame, ticks_to_seconds(when_us))
        actions = receiver.on_receive(frame, ticks_to_seconds(arrival))
        self._last_activity = when_us
        if isinstance(frame, IFrame):
            self.stats.i_frames += 1
        elif isinstance(frame, SFrame):
            self.stats.s_frames += 1
        else:
            self.stats.u_frames += 1
        reply_time = arrival + _FRAME_GAP_US
        for action in actions:
            if action.kind is ActionKind.SEND_S_ACK:
                reply_time = self._send_frame(
                    reply_time, SFrame(recv_seq=action.recv_seq),
                    from_server=not from_server)
            elif action.kind is ActionKind.SEND_STARTDT_CON:
                reply_time = self._send_frame(
                    reply_time, UFrame(UFunction.STARTDT_CON),
                    from_server=not from_server)
            elif action.kind is ActionKind.SEND_STOPDT_CON:
                reply_time = self._send_frame(
                    reply_time, UFrame(UFunction.STOPDT_CON),
                    from_server=not from_server)
            elif action.kind is ActionKind.SEND_TESTFR_CON:
                reply_time = self._send_frame(
                    reply_time, UFrame(UFunction.TESTFR_CON),
                    from_server=not from_server)
        # The server acknowledges I-frames after T2 even when the w
        # window has not filled.
        if (isinstance(frame, IFrame) and not from_server
                and self._server.unacked_received > 0
                and not self._ack_flush_pending):
            self._ack_flush_pending = True
            epoch = self._epoch
            deadline_us = arrival + seconds_to_ticks(self.timers.t2)
            self._sim.schedule(deadline_us,
                               lambda: self._flush_ack(epoch))
        return reply_time

    def _flush_ack(self, epoch: int) -> None:
        self._ack_flush_pending = False
        if epoch != self._epoch or not self.connected:
            return
        if self._server.unacked_received > 0:
            self._send_frame(self._sim.now_us,
                             SFrame(recv_seq=self._server.recv_seq),
                             from_server=True)

    def _send_i_from_outstation(self, when_us: Ticks,
                                asdu: ASDU) -> Ticks:
        frame = self._outstation.next_i_frame(asdu)
        return self._send_frame(when_us, frame, from_server=False)

    def _send_i_from_server(self, when_us: Ticks, asdu: ASDU) -> Ticks:
        frame = self._server.next_i_frame(asdu)
        return self._send_frame(when_us, frame, from_server=True)

    # -- secondary (backup) behaviour ---------------------------------------

    def start_secondary(self, when_us: Ticks) -> None:
        """Connect and run the keep-alive loop (Fig. 4 right side)."""
        done = self.connect(when_us)
        self._schedule_keepalive(done + self._jittered_keepalive())

    def _jittered_keepalive(self) -> Ticks:
        period = self.behavior.keepalive_period
        return seconds_to_ticks(period * self._rng.uniform(0.95, 1.05))

    def _schedule_keepalive(self, when_us: Ticks) -> None:
        if self._past_horizon(when_us):
            return
        epoch = self._epoch
        self._sim.schedule(when_us, lambda: self._keepalive_tick(epoch))

    def _keepalive_tick(self, epoch: int) -> None:
        if epoch != self._epoch or not self.connected or self.is_primary:
            return
        now_us = self._sim.now_us
        self._send_frame(now_us, UFrame(UFunction.TESTFR_ACT),
                         from_server=True)
        self._schedule_keepalive(now_us + self._jittered_keepalive())

    # -- primary behaviour ---------------------------------------------------

    def start_primary(self, when_us: Ticks) -> None:
        """Connect, STARTDT, interrogate, then report continuously."""
        done = self.connect(when_us)
        self.promote(done + _FRAME_GAP_US)

    def promote(self, when_us: Ticks) -> None:
        """Promote the live connection to primary (STARTDT + I100).

        Called on a fresh connection by :meth:`start_primary`, or on a
        running secondary connection during a switchover — producing the
        Fig. 16 pattern (U16/U32 keep-alives followed by U1, U2, I100
        and I-format traffic on the same connection).
        """
        if not self.connected:
            raise RuntimeError(f"{self._label()}: not connected")
        self._epoch += 1  # cancel the keep-alive loop if one is running
        start_act = self._server.start_transfer()
        reply_time = self._send_frame(when_us, start_act,
                                      from_server=True)
        self.is_primary = True
        if self._send_end_of_init:
            init = ASDU(type_id=TypeID.M_EI_NA_1, cause=Cause.INITIALIZED,
                        common_address=self.common_address,
                        objects=(InformationObject(
                            0, EndOfInitialization(cause=2)),))
            reply_time = self._send_i_from_outstation(reply_time, init)
        reply_time = self._run_interrogation(reply_time)
        self._schedule_report_sweep(
            reply_time + seconds_to_ticks(
                self.behavior.report_interval
                * self._rng.uniform(0.5, 1.0)))
        self._schedule_idle_watch()

    def _run_interrogation(self, when_us: Ticks) -> Ticks:
        """General interrogation: I100 act -> con -> burst -> term."""
        act = ASDU(type_id=TypeID.C_IC_NA_1, cause=Cause.ACTIVATION,
                   common_address=self.common_address,
                   objects=(InformationObject(0, InterrogationCommand()),))
        reply_time = self._send_i_from_server(when_us, act)

        con = ASDU(type_id=TypeID.C_IC_NA_1, cause=Cause.ACTIVATION_CON,
                   common_address=self.common_address,
                   objects=(InformationObject(0, InterrogationCommand()),))
        reply_time = self._send_i_from_outstation(
            reply_time + _FRAME_GAP_US, con)

        for asdu in self._interrogation_burst(reply_time):
            reply_time = self._send_i_from_outstation(
                reply_time + _FRAME_GAP_US, asdu)

        term = ASDU(type_id=TypeID.C_IC_NA_1,
                    cause=Cause.ACTIVATION_TERMINATION,
                    common_address=self.common_address,
                    objects=(InformationObject(0, InterrogationCommand()),))
        return self._send_i_from_outstation(reply_time + _FRAME_GAP_US,
                                            term)

    def _interrogation_burst(self, now_us: Ticks) -> list[ASDU]:
        """All points grouped by typeID, chunked into multi-object ASDUs."""
        now_s = ticks_to_seconds(now_us)
        by_type: dict[TypeID, list[PointConfig]] = {}
        for point in self.behavior.points:
            by_type.setdefault(point.type_id, []).append(point)
        asdus = []
        for type_id, points in sorted(by_type.items()):
            for start in range(0, len(points), 8):
                chunk = points[start:start + 8]
                objects = tuple(
                    InformationObject(point.ioa, build_element(
                        type_id, point.source(now_s), now_us))
                    for point in chunk)
                asdus.append(ASDU(
                    type_id=type_id,
                    cause=Cause.INTERROGATED_BY_STATION,
                    common_address=self.common_address, objects=objects))
        for type_id, points in sorted(by_type.items()):
            for point in points:
                self._last_sent[point.ioa] = point.source(now_s)
        return asdus

    # -- measurement reporting ----------------------------------------------

    def _schedule_report_sweep(self, when_us: Ticks) -> None:
        if self._past_horizon(when_us):
            return
        epoch = self._epoch
        self._sim.schedule(when_us, lambda: self._report_sweep(epoch))

    def _report_sweep(self, epoch: int) -> None:
        if epoch != self._epoch or not self.connected or not self.is_primary:
            return
        now_us = self._sim.now_us
        now_s = ticks_to_seconds(now_us)
        due: dict[TypeID, list[tuple[PointConfig, float]]] = {}
        for point in self.behavior.points:
            value = point.source(now_s)
            if point.mode is ReportMode.PERIODIC:
                next_due = self._next_periodic.get(point.ioa, 0)
                if now_us < next_due:
                    continue
                self._next_periodic[point.ioa] = (
                    now_us + seconds_to_ticks(point.period))
            else:
                last = self._last_sent.get(point.ioa)
                if last is not None and abs(value - last) < point.threshold:
                    continue
            due.setdefault(point.type_id, []).append((point, value))

        send_time = now_us
        for type_id, entries in sorted(due.items()):
            cause = (Cause.PERIODIC
                     if entries[0][0].mode is ReportMode.PERIODIC
                     else Cause.SPONTANEOUS)
            for start in range(0, len(entries), 8):
                chunk = entries[start:start + 8]
                objects = tuple(
                    InformationObject(point.ioa,
                                      build_element(type_id, value,
                                                    now_us))
                    for point, value in chunk)
                asdu = ASDU(type_id=type_id, cause=cause,
                            common_address=self.common_address,
                            objects=objects)
                if self._outstation.can_send_i:
                    send_time = self._send_i_from_outstation(
                        send_time + _FRAME_GAP_US, asdu)
                    for point, value in chunk:
                        self._last_sent[point.ioa] = value
        interval_us = seconds_to_ticks(self.behavior.report_interval
                                       * self._rng.uniform(0.8, 1.2))
        self._schedule_report_sweep(now_us + interval_us)

    # -- idle keep-alive in primary connections (Type 5) ---------------------

    def _schedule_idle_watch(self) -> None:
        deadline_us = self._last_activity + seconds_to_ticks(
            self.timers.t3)
        if self._past_horizon(deadline_us):
            return
        epoch = self._epoch
        self._sim.schedule(deadline_us,
                           lambda: self._idle_check(epoch))

    def _idle_check(self, epoch: int) -> None:
        if epoch != self._epoch or not self.connected or not self.is_primary:
            return
        now_us = self._sim.now_us
        # Integer ticks make this comparison exact — no epsilon needed.
        if now_us - self._last_activity >= seconds_to_ticks(
                self.timers.t3):
            self._send_frame(now_us, UFrame(UFunction.TESTFR_ACT),
                             from_server=True)
        self._schedule_idle_watch()

    # -- commands ------------------------------------------------------------

    def send_setpoint(self, when_us: Ticks, value: float) -> None:
        """AGC set point (C_SE_NC_1 / I50): act from server, con back."""
        ioa = self.behavior.agc_setpoint_ioa
        if ioa is None:
            raise RuntimeError(
                f"{self._label()}: outstation has no AGC set-point IOA")
        if not (self.connected and self.is_primary):
            return
        act = ASDU(type_id=TypeID.C_SE_NC_1, cause=Cause.ACTIVATION,
                   common_address=self.common_address,
                   objects=(InformationObject(
                       ioa, SetpointFloat(value=float(value))),))
        reply_time = self._send_i_from_server(when_us, act)
        con = ASDU(type_id=TypeID.C_SE_NC_1, cause=Cause.ACTIVATION_CON,
                   common_address=self.common_address,
                   objects=(InformationObject(
                       ioa, SetpointFloat(value=float(value))),))
        self._send_i_from_outstation(reply_time + _FRAME_GAP_US, con)
        self.stats.setpoints += 1
        if self._on_setpoint is not None:
            self._on_setpoint(float(value))

    def _find_point(self, ioa: int) -> PointConfig | None:
        for point in self.behavior.points:
            if point.ioa == ioa:
                return point
        return None

    def send_read(self, when_us: Ticks, ioa: int) -> bool:
        """Read command (C_RD_NA_1) for one IOA.

        Returns True when the outstation answered with data; False when
        it answered "unknown information object address" (COT 47) —
        the probe/response pattern of Industroyer's iterative IOA
        discovery.
        """
        if not (self.connected and self.is_primary):
            raise RuntimeError(f"{self._label()}: link is not primary")
        request = ASDU(type_id=TypeID.C_RD_NA_1, cause=Cause.REQUEST,
                       common_address=self.common_address,
                       objects=(InformationObject(ioa, ReadCommand()),))
        reply_time = self._send_i_from_server(when_us, request)
        point = self._find_point(ioa)
        if point is None:
            negative = ASDU(type_id=TypeID.C_RD_NA_1,
                            cause=Cause.UNKNOWN_IOA,
                            common_address=self.common_address,
                            negative=True,
                            objects=(InformationObject(
                                ioa, ReadCommand()),))
            self._send_i_from_outstation(reply_time + _FRAME_GAP_US,
                                         negative)
            return False
        value = point.source(self._sim.now)
        answer = ASDU(type_id=point.type_id, cause=Cause.REQUEST,
                      common_address=self.common_address,
                      objects=(InformationObject(
                          ioa, build_element(point.type_id, value,
                                             self._sim.now_us)),))
        self._send_i_from_outstation(reply_time + _FRAME_GAP_US, answer)
        return True

    def send_single_command(self, when_us: Ticks, ioa: int,
                            state: bool) -> bool:
        """Single command (C_SC_NA_1) — what Industroyer abused.

        The outstation mirrors an activation confirmation for known
        IOAs and a negative COT-47 reply otherwise."""
        if not (self.connected and self.is_primary):
            raise RuntimeError(f"{self._label()}: link is not primary")
        command = SingleCommand(state=state)
        act = ASDU(type_id=TypeID.C_SC_NA_1, cause=Cause.ACTIVATION,
                   common_address=self.common_address,
                   objects=(InformationObject(ioa, command),))
        reply_time = self._send_i_from_server(when_us, act)
        known = self._find_point(ioa) is not None
        con = ASDU(type_id=TypeID.C_SC_NA_1,
                   cause=(Cause.ACTIVATION_CON if known
                          else Cause.UNKNOWN_IOA),
                   common_address=self.common_address,
                   negative=not known,
                   objects=(InformationObject(ioa, command),))
        self._send_i_from_outstation(reply_time + _FRAME_GAP_US, con)
        return known

    def send_clock_sync(self, when_us: Ticks) -> None:
        """Clock synchronization (C_CS_NA_1 / I103) act/con pair."""
        if not (self.connected and self.is_primary):
            return
        tag = CP56Time2a.from_us(when_us)
        act = ASDU(type_id=TypeID.C_CS_NA_1, cause=Cause.ACTIVATION,
                   common_address=self.common_address,
                   objects=(InformationObject(0, ClockSyncCommand(tag)),))
        reply_time = self._send_i_from_server(when_us, act)
        con = ASDU(type_id=TypeID.C_CS_NA_1, cause=Cause.ACTIVATION_CON,
                   common_address=self.common_address,
                   objects=(InformationObject(0, ClockSyncCommand(tag)),))
        self._send_i_from_outstation(reply_time + _FRAME_GAP_US, con)

    # -- Fig. 9 pathologies ---------------------------------------------------

    def start_reject_loop(self, when_us: Ticks) -> None:
        """Repeatedly attempt a backup connection that gets rejected."""
        if self.behavior.reject_mode is RejectMode.NONE:
            raise RuntimeError(f"{self._label()}: no reject mode set")
        self._schedule_reject_attempt(when_us)

    def _schedule_reject_attempt(self, when_us: Ticks) -> None:
        if self._past_horizon(when_us):
            return
        epoch = self._epoch
        self._sim.schedule(when_us,
                           lambda: self._reject_attempt(epoch))

    def _reject_attempt(self, epoch: int) -> None:
        if epoch != self._epoch:
            return
        now_us = self._sim.now_us
        mode = self.behavior.reject_mode
        conn = self._new_connection()
        self.stats.rejects += 1
        if mode is RejectMode.IGNORE_SYN and self._rng.random() < 0.88:
            # Mostly drop SYNs silently (the long-lived-flow inflation
            # of Table 3 Y1); occasionally the RTU does answer and then
            # resets the TESTFR probe, so the connection still shows up
            # at Markov point (1,1) as the paper observed.
            conn.send_syn_unanswered(now_us, retries=2, backoff=0.25)
        else:
            done = conn.establish(now_us)
            # Server probes with TESTFR act; outstation kills the
            # connection instead of answering (Fig. 9 / Fig. 14).
            testfr = UFrame(UFunction.TESTFR_ACT).encode()
            arrival = conn.send(done + _FRAME_GAP_US, from_client=True,
                                payload=testfr)
            self.stats.u_frames += 1
            if mode is RejectMode.FIN_AFTER_TESTFR:
                conn.close_fin(arrival + _FRAME_GAP_US,
                               from_client=False)
            else:
                conn.close_rst(arrival + _FRAME_GAP_US,
                               from_client=False)
        period_us = seconds_to_ticks(self.behavior.reject_retry_period
                                     * self._rng.uniform(0.9, 1.1))
        self._schedule_reject_attempt(now_us + period_us)
