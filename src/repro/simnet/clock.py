"""Discrete-event simulation core on an integer-microsecond timebase.

A minimal but strict event queue: events fire in timestamp order (ties
broken by insertion order, so the simulation is deterministic), and a
fired callback may schedule further events.

Time is counted in :data:`Ticks` — integer microseconds since the
simulation epoch. Integer ticks make exact time comparisons legal
(no float rounding), survive a classic-pcap round trip losslessly
(the record header stores whole microseconds), and keep the event
queue deterministic across platforms. Scheduling APIs accept ticks
only; a float argument is a bug at the call site and raises
:class:`SimulationError` immediately. Float *seconds* remain available
as derived views (:attr:`Simulator.now`) for physics models that
integrate in seconds.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

#: Canonical simulation time: integer microseconds since the epoch.
Ticks = int

#: Ticks per second (the tick is one microsecond).
US_PER_SECOND: Ticks = 1_000_000


def seconds_to_ticks(seconds: float) -> Ticks:
    """Quantize float seconds to the nearest microsecond tick."""
    return round(seconds * US_PER_SECOND)


def ticks_to_seconds(ticks: Ticks) -> float:
    """Derived float-seconds view of an integer tick count."""
    return ticks / US_PER_SECOND


class SimulationError(RuntimeError):
    """Raised on scheduling misuse (e.g. scheduling into the past)."""


def _check_ticks(value: Ticks, what: str) -> Ticks:
    """Reject non-integer tick values at the call site.

    ``bool`` is excluded even though it subclasses ``int``: a boolean
    where a time belongs is always a bug.
    """
    if not isinstance(value, int) or isinstance(value, bool):
        raise SimulationError(
            f"{what} must be integer microsecond ticks, got "
            f"{value!r} ({type(value).__name__})")
    return value


class Simulator:
    """Deterministic discrete-event simulator (integer-µs clock)."""

    def __init__(self, start_us: Ticks = 0):
        self._now_us = _check_ticks(start_us, "start_us")
        self._queue: list[tuple[Ticks, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._running = False

    @property
    def now_us(self) -> Ticks:
        """Current simulation time in canonical integer microseconds."""
        return self._now_us

    @property
    def now(self) -> float:
        """Derived float-seconds view of :attr:`now_us`.

        Kept for models that integrate in seconds (grid physics, point
        sources); scheduling must go through the tick APIs.
        """
        return self._now_us / US_PER_SECOND

    def schedule(self, when_us: Ticks,
                 callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute tick ``when_us``."""
        _check_ticks(when_us, "when_us")
        if when_us < self._now_us:
            raise SimulationError(
                f"cannot schedule at {when_us} < now {self._now_us}")
        heapq.heappush(self._queue,
                       (when_us, next(self._counter), callback))

    def schedule_in(self, delay_us: Ticks,
                    callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay_us`` ticks from now."""
        _check_ticks(delay_us, "delay_us")
        if delay_us < 0:
            raise SimulationError(f"negative delay {delay_us}")
        self.schedule(self._now_us + delay_us, callback)

    def run_until(self, end_us: Ticks) -> int:
        """Run events with timestamp <= ``end_us``; return the count.

        The clock is left at ``end_us`` even when the queue drains
        early, so subsequent scheduling continues from the window's end.
        """
        _check_ticks(end_us, "end_us")
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue and self._queue[0][0] <= end_us:
                when_us, _, callback = heapq.heappop(self._queue)
                self._now_us = when_us
                callback()
                fired += 1
        finally:
            self._running = False
        self._now_us = max(self._now_us, end_us)
        return fired

    def run(self) -> int:
        """Run until the queue is empty; return the event count."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                when_us, _, callback = heapq.heappop(self._queue)
                self._now_us = when_us
                callback()
                fired += 1
        finally:
            self._running = False
        return fired

    @property
    def pending(self) -> int:
        return len(self._queue)


#: The simulator *is* the simulation clock; this alias names that role.
Clock = Simulator
