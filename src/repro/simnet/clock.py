"""Discrete-event simulation core.

A minimal but strict event queue: events fire in timestamp order (ties
broken by insertion order, so the simulation is deterministic), and a
fired callback may schedule further events.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class SimulationError(RuntimeError):
    """Raised on scheduling misuse (e.g. scheduling into the past)."""


class Simulator:
    """Deterministic discrete-event simulator."""

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when:.6f} < now {self._now:.6f}")
        heapq.heappush(self._queue, (when, next(self._counter), callback))

    def schedule_in(self, delay: float,
                    callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule(self._now + delay, callback)

    def run_until(self, end_time: float) -> int:
        """Run events with timestamp <= ``end_time``; return the count.

        The clock is left at ``end_time`` even when the queue drains
        early, so subsequent scheduling continues from the window's end.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue and self._queue[0][0] <= end_time:
                when, _, callback = heapq.heappop(self._queue)
                self._now = when
                callback()
                fired += 1
        finally:
            self._running = False
        self._now = max(self._now, end_time)
        return fired

    def run(self) -> int:
        """Run until the queue is empty; return the event count."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                when, _, callback = heapq.heappop(self._queue)
                self._now = when
                callback()
                fired += 1
        finally:
            self._running = False
        return fired

    @property
    def pending(self) -> int:
        return len(self._queue)
