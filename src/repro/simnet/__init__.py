"""Discrete-event simulator of the federated bulk-power SCADA network."""

from .agents import IEC104Link, LinkStats, build_element
from .attacker import AttackResult, ReconnaissanceMode, run_attack
from .behaviors import (OutstationBehavior, OutstationType, PointConfig,
                        RejectMode, ReportMode)
from .capture import CaptureTap, CaptureWindow
from .clock import (US_PER_SECOND, Clock, SimulationError,
                    Simulator, Ticks, seconds_to_ticks,
                    ticks_to_seconds)
from .scenario import (COOLDOWN_S, WARMUP_S, LinkPlan, Scenario,
                       SyntheticCapture)
from .tcpsim import RetransmissionModel, SimConnection, SimHost
from .topology import NetworkMap

__all__ = [
    "AttackResult", "COOLDOWN_S", "CaptureTap", "CaptureWindow",
    "IEC104Link", "LinkPlan", "ReconnaissanceMode", "run_attack",
    "LinkStats", "NetworkMap", "OutstationBehavior", "OutstationType",
    "PointConfig", "RejectMode", "ReportMode", "RetransmissionModel",
    "Scenario", "SimConnection", "SimHost", "SimulationError", "Simulator",
    "SyntheticCapture", "Ticks", "US_PER_SECOND", "WARMUP_S", "Clock",
    "build_element", "seconds_to_ticks", "ticks_to_seconds",
]
