"""Simulated TCP endpoints and connections.

Produces byte-accurate :class:`CapturedPacket` traffic — real Ethernet/
IPv4/TCP frames with correct sequence and acknowledgement numbers,
handshakes, graceful (FIN) and abortive (RST) teardown, and optional
TCP-level retransmission injection. This is the transport substrate the
IEC 104 agents ride on; everything the tap records decodes with the
real :mod:`repro.netstack` parsers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..netstack.addresses import IPv4Address, MacAddress
from ..netstack.packet import CapturedPacket
from ..netstack.tcp import TCPFlags, TCPSegment
from .capture import CaptureTap
from .clock import Simulator, Ticks, _check_ticks, seconds_to_ticks

_SEQ_MODULO = 1 << 32


@dataclass
class SimHost:
    """One IP host in the simulated network."""

    name: str
    ip: IPv4Address
    mac: MacAddress
    _next_port: int = 49152

    def allocate_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        if self._next_port > 65535:
            self._next_port = 49152
        return port

    def set_port_base(self, base: int) -> None:
        """Restart ephemeral allocation at ``base``.

        The windowed capture generator gives each capture day a
        disjoint port block so concatenated windows never reuse a TCP
        4-tuple (each worker process starts from fresh hosts).
        """
        if not 0 <= base <= 65535:
            raise ValueError("port base out of range")
        self._next_port = base


@dataclass
class _Side:
    """One endpoint's TCP send state within a connection."""

    host: SimHost
    port: int
    seq: int = 0          # next sequence number to send
    ack: int = 0          # next sequence number expected from the peer


@dataclass
class RetransmissionModel:
    """Bernoulli per-data-packet retransmission injection.

    The paper traced repeated U16/U32 Markov tokens to TCP-layer
    retransmissions; this model reproduces them in the synthetic
    captures.
    """

    probability: float = 0.0
    delay: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.delay <= 0:
            raise ValueError("delay must be positive")


class SimConnection:
    """One TCP connection between two simulated hosts.

    The *client* initiates (in IEC 104 that is the controlling station,
    i.e. the SCADA server); the *server* side listens on port 2404.
    All emission methods take an absolute time in integer-microsecond
    ticks and return the tick at which the last emitted packet hits the
    tap, so callers can sequence application-level behaviour after
    network latency. Latency and delay *parameters* stay in float
    seconds (they are configuration knobs) and are quantized to ticks
    at each draw.
    """

    def __init__(self, sim: Simulator, tap: CaptureTap, client: SimHost,
                 server: SimHost, server_port: int,
                 rng: random.Random,
                 latency: tuple[float, float] = (0.001, 0.010),
                 retransmission: RetransmissionModel | None = None,
                 ack_policy: str = "none", ack_every: int = 2):
        if ack_policy not in ("none", "delayed"):
            raise ValueError("ack_policy must be 'none' or 'delayed'")
        if ack_every < 1:
            raise ValueError("ack_every must be >= 1")
        self._sim = sim
        self._tap = tap
        self._rng = rng
        self._latency = latency
        self._retransmission = retransmission or RetransmissionModel()
        #: "delayed" emits coalesced pure ACKs (one per ``ack_every``
        #: data segments), as a real receiver stack would; "none"
        #: relies on piggybacked acknowledgements only, which keeps
        #: packet counts minimal for the calibrated scenarios.
        self._ack_policy = ack_policy
        self._ack_every = ack_every
        self._unacked_data = {True: 0, False: 0}  # keyed by from_client
        self.client = _Side(host=client, port=client.allocate_port())
        self.server = _Side(host=server, port=server_port)
        self.established = False
        self.closed = False
        self._ip_id = rng.randrange(0, 0x8000)

    # -- helpers -----------------------------------------------------------

    def _delay_us(self) -> Ticks:
        low, high = self._latency
        return seconds_to_ticks(self._rng.uniform(low, high))

    def _peer(self, side: _Side) -> _Side:
        return self.server if side is self.client else self.client

    def _emit(self, when_us: Ticks, side: _Side, flags: TCPFlags,
              payload: bytes = b"", seq: int | None = None) -> None:
        _check_ticks(when_us, "when_us")
        peer = self._peer(side)
        segment = TCPSegment(
            src_port=side.port, dst_port=peer.port,
            seq=side.seq if seq is None else seq,
            ack=side.ack if flags.ack else 0,
            flags=flags, payload=payload)
        self._ip_id = (self._ip_id + 1) & 0xFFFF
        packet = CapturedPacket.build(
            time_us=when_us, src_mac=side.host.mac,
            dst_mac=peer.host.mac, src_ip=side.host.ip,
            dst_ip=peer.host.ip, segment=segment, ip_id=self._ip_id)
        self._tap.observe(packet)

    # -- connection lifecycle ----------------------------------------------

    def establish(self, when_us: Ticks) -> Ticks:
        """Three-way handshake; returns completion tick."""
        if self.established or self.closed:
            raise RuntimeError("connection already used")
        syn_time = when_us
        self.client.seq = self._rng.randrange(0, _SEQ_MODULO)
        self.server.seq = self._rng.randrange(0, _SEQ_MODULO)
        self._emit(syn_time, self.client, TCPFlags(syn=True))
        self.client.seq = (self.client.seq + 1) % _SEQ_MODULO

        synack_time = syn_time + self._delay_us()
        self.server.ack = self.client.seq
        self._emit(synack_time, self.server, TCPFlags(syn=True, ack=True))
        self.server.seq = (self.server.seq + 1) % _SEQ_MODULO

        ack_time = synack_time + self._delay_us()
        self.client.ack = self.server.seq
        self._emit(ack_time, self.client, TCPFlags(ack=True))
        self.established = True
        return ack_time

    def send_syn_unanswered(self, when_us: Ticks, retries: int = 2,
                            backoff: float = 1.0) -> Ticks:
        """A SYN (plus retries) that the peer silently drops.

        Models outstations that ignore backup-connection attempts; the
        resulting flow record has a SYN but no FIN/RST, which the
        paper's methodology classifies as *long-lived*.
        """
        if self.established or self.closed:
            raise RuntimeError("connection already used")
        self.client.seq = self._rng.randrange(0, _SEQ_MODULO)
        last = when_us
        for attempt in range(retries + 1):
            last = when_us + seconds_to_ticks(
                backoff * ((2 ** attempt) - 1))
            self._emit(last, self.client, TCPFlags(syn=True),
                       seq=self.client.seq)
        self.closed = True
        return last

    def send(self, when_us: Ticks, from_client: bool,
             payload: bytes) -> Ticks:
        """Send application data; returns the arrival-side tick."""
        if not self.established or self.closed:
            raise RuntimeError("connection not established")
        if not payload:
            raise ValueError("use explicit ACK emission for empty segments")
        side = self.client if from_client else self.server
        peer = self._peer(side)
        send_time = when_us
        data_seq = side.seq
        self._emit(send_time, side, TCPFlags(psh=True, ack=True),
                   payload=payload, seq=data_seq)
        side.seq = (side.seq + len(payload)) % _SEQ_MODULO
        peer.ack = side.seq
        if self._rng.random() < self._retransmission.probability:
            # Spurious retransmission: same seq, same payload, later.
            retransmit_at = send_time + seconds_to_ticks(
                self._retransmission.delay)
            self._emit(retransmit_at, side,
                       TCPFlags(psh=True, ack=True), payload=payload,
                       seq=data_seq)
        arrival = send_time + self._delay_us()
        if self._ack_policy == "delayed":
            self._unacked_data[from_client] += 1
            if self._unacked_data[from_client] >= self._ack_every:
                self._unacked_data[from_client] = 0
                self._emit(arrival + 500, peer, TCPFlags(ack=True))
        return arrival

    def close_fin(self, when_us: Ticks, from_client: bool) -> Ticks:
        """Graceful shutdown: FIN/ACK exchange both ways."""
        if not self.established or self.closed:
            raise RuntimeError("connection not open")
        initiator = self.client if from_client else self.server
        responder = self._peer(initiator)
        fin_time = when_us
        self._emit(fin_time, initiator, TCPFlags(fin=True, ack=True))
        initiator.seq = (initiator.seq + 1) % _SEQ_MODULO
        responder.ack = initiator.seq

        reply_time = fin_time + self._delay_us()
        self._emit(reply_time, responder, TCPFlags(fin=True, ack=True))
        responder.seq = (responder.seq + 1) % _SEQ_MODULO
        initiator.ack = responder.seq

        final_time = reply_time + self._delay_us()
        self._emit(final_time, initiator, TCPFlags(ack=True))
        self.closed = True
        return final_time

    def close_rst(self, when_us: Ticks, from_client: bool) -> Ticks:
        """Abortive shutdown: a single RST."""
        if not self.established or self.closed:
            raise RuntimeError("connection not open")
        side = self.client if from_client else self.server
        self._emit(when_us, side, TCPFlags(rst=True, ack=True))
        self.closed = True
        return when_us

    def refuse(self, when_us: Ticks) -> Ticks:
        """SYN answered by RST (listener refuses the connection)."""
        if self.established or self.closed:
            raise RuntimeError("connection already used")
        self.client.seq = self._rng.randrange(0, _SEQ_MODULO)
        self._emit(when_us, self.client, TCPFlags(syn=True))
        self.client.seq = (self.client.seq + 1) % _SEQ_MODULO
        rst_time = when_us + self._delay_us()
        self.server.ack = self.client.seq
        self._emit(rst_time, self.server, TCPFlags(rst=True, ack=True))
        self.closed = True
        return rst_time
