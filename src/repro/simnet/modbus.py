"""Modbus/TCP agents riding the simulated TCP connections.

One :class:`ModbusLink` models a master-to-outstation Modbus/TCP
association: a SCADA master polls an outstation's holding registers
on a jittered cadence and the outstation answers each request after
the same frame gap :class:`~repro.simnet.agents.IEC104Link` uses.
Registers are backed by callable sources (time-seconds → value), so
the same deterministic sinusoid generators that feed the IEC 104
point configs drive Modbus register values.

The link speaks exactly the ADU shapes
:mod:`repro.protocols.modbus` decodes — every emitted frame is a
:meth:`~repro.protocols.modbus.ModbusAdu.encode` product — so the
captures it writes replay byte-for-byte through the stream pipeline
bound to the ``modbus`` spec.

Request/response pairing follows the spec: the response echoes the
request's transaction and unit ids; a read of any address outside
the register map draws an exception response (function | 0x80,
ILLEGAL DATA ADDRESS), which tokenizes as ``X<fc>``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Mapping

from ..protocols.modbus import (MODBUS_PORT, ModbusAdu,
                                READ_HOLDING_REGISTERS,
                                WRITE_MULTIPLE_REGISTERS,
                                WRITE_SINGLE_REGISTER)
from .capture import CaptureTap
from .clock import Simulator, Ticks, seconds_to_ticks, ticks_to_seconds
from .tcpsim import RetransmissionModel, SimConnection, SimHost

#: Gap between request and response on one connection (µs) — same
#: application turnaround the IEC 104 agents use.
_FRAME_GAP_US = 4000

#: Modbus exception code: the requested address is not mapped.
ILLEGAL_DATA_ADDRESS = 2


def _u16(value: float) -> int:
    """Quantize a register source's float to an unsigned 16-bit word."""
    return int(round(value)) & 0xFFFF


@dataclass
class ModbusLinkStats:
    """Per-link counters, useful for tests and scenario debugging."""

    connections: int = 0
    requests: int = 0
    responses: int = 0
    exceptions: int = 0
    writes: int = 0


class ModbusLink:
    """A master-to-outstation Modbus/TCP association in the simulation.

    ``registers`` maps holding-register address to a source callable
    (simulated seconds → value); reads sample the sources at request
    time, writes overlay the written word until :meth:`close`.
    """

    def __init__(self, sim: Simulator, tap: CaptureTap,
                 rng: random.Random, master_host: SimHost,
                 outstation_host: SimHost, master_name: str,
                 outstation_name: str,
                 registers: Mapping[int, Callable[[float], float]],
                 unit: int = 1, poll_period_s: float = 2.0,
                 retransmission: RetransmissionModel | None = None):
        self._sim = sim
        self._tap = tap
        self._rng = rng
        self.master_host = master_host
        self.outstation_host = outstation_host
        self.master_name = master_name
        self.outstation_name = outstation_name
        self.registers = dict(registers)
        self.unit = unit
        self.poll_period_s = poll_period_s
        self._retransmission = retransmission

        self._conn: SimConnection | None = None
        self._epoch = 0
        #: Scheduling horizon in ticks; None means unbounded.
        self._end_us: Ticks | None = None
        self._transaction = 0
        self._poll_span: tuple[int, int] = (0, 1)
        #: Written words overriding the callable sources.
        self._overrides: dict[int, int] = {}
        self.stats = ModbusLinkStats()

    # -- lifecycle ----------------------------------------------------

    @property
    def connected(self) -> bool:
        return (self._conn is not None and self._conn.established
                and not self._conn.closed)

    def _new_connection(self) -> SimConnection:
        retrans = self._retransmission or RetransmissionModel()
        return SimConnection(self._sim, self._tap, self.master_host,
                             self.outstation_host,
                             server_port=MODBUS_PORT, rng=self._rng,
                             retransmission=retrans)

    def connect(self, when_us: Ticks) -> Ticks:
        """Establish a fresh TCP connection to port 502."""
        if self.connected:
            raise RuntimeError(f"{self._label()}: already connected")
        self._conn = self._new_connection()
        done = self._conn.establish(when_us)
        self.stats.connections += 1
        return done

    def close(self, when_us: Ticks, rst: bool = False) -> None:
        """Tear down the live connection and cancel the poll loop."""
        self._epoch += 1
        conn = self._conn
        if conn is not None and conn.established and not conn.closed:
            if rst:
                conn.close_rst(when_us, from_client=True)
            else:
                conn.close_fin(when_us, from_client=True)

    def run_until(self, end_us: Ticks | None) -> None:
        """Set the horizon past which the poll loop stops."""
        self._end_us = end_us

    def _past_horizon(self, when_us: Ticks) -> bool:
        return self._end_us is not None and when_us > self._end_us

    def _label(self) -> str:
        return f"{self.master_name}-{self.outstation_name}"

    # -- frame plumbing -----------------------------------------------

    def _next_transaction(self) -> int:
        self._transaction = (self._transaction + 1) & 0xFFFF
        return self._transaction

    def _send_adu(self, when_us: Ticks, adu: ModbusAdu,
                  from_master: bool) -> Ticks:
        conn = self._conn
        if conn is None:
            raise RuntimeError(f"{self._label()}: not connected")
        return conn.send(when_us, from_client=from_master,
                         payload=adu.encode())

    def _register_word(self, address: int, time_s: float) -> int | None:
        override = self._overrides.get(address)
        if override is not None:
            return override
        source = self.registers.get(address)
        if source is None:
            return None
        return _u16(source(time_s))

    def _respond(self, arrival_us: Ticks, request: ModbusAdu) -> Ticks:
        """Outstation answers one request after the frame gap."""
        reply_us = arrival_us + _FRAME_GAP_US
        time_s = ticks_to_seconds(reply_us)
        function = request.function
        data = request.data
        if function == READ_HOLDING_REGISTERS and len(data) == 4:
            start = (data[0] << 8) | data[1]
            count = (data[2] << 8) | data[3]
            words = [self._register_word(start + index, time_s)
                     for index in range(count)]
            if count >= 1 and all(word is not None for word in words):
                payload = bytearray((2 * count,))
                for word in words:
                    assert word is not None
                    payload += bytes((word >> 8, word & 0xFF))
                return self._send_response(reply_us, request,
                                           bytes(payload))
            return self._send_exception(reply_us, request)
        if function == WRITE_SINGLE_REGISTER and len(data) == 4:
            address = (data[0] << 8) | data[1]
            self._overrides[address] = (data[2] << 8) | data[3]
            self.stats.writes += 1
            # The normal response is an echo of the request.
            return self._send_response(reply_us, request, data)
        if function == WRITE_MULTIPLE_REGISTERS and len(data) >= 6:
            start = (data[0] << 8) | data[1]
            count = (data[2] << 8) | data[3]
            words = data[5:]
            for index in range(min(count, len(words) // 2)):
                self._overrides[start + index] = \
                    (words[2 * index] << 8) | words[2 * index + 1]
            self.stats.writes += count
            return self._send_response(reply_us, request, data[:4])
        return self._send_exception(reply_us, request)

    def _send_response(self, when_us: Ticks, request: ModbusAdu,
                       data: bytes) -> Ticks:
        self.stats.responses += 1
        return self._send_adu(when_us, ModbusAdu(
            transaction=request.transaction, unit=request.unit,
            function=request.function, data=data), from_master=False)

    def _send_exception(self, when_us: Ticks,
                        request: ModbusAdu) -> Ticks:
        self.stats.exceptions += 1
        return self._send_adu(when_us, ModbusAdu(
            transaction=request.transaction, unit=request.unit,
            function=request.function | 0x80,
            data=bytes((ILLEGAL_DATA_ADDRESS,))), from_master=False)

    def _request(self, when_us: Ticks, function: int,
                 data: bytes) -> Ticks:
        """Master sends one request; outstation answers in-line.

        Returns the tick the response lands at the master."""
        self.stats.requests += 1
        request = ModbusAdu(transaction=self._next_transaction(),
                            unit=self.unit, function=function,
                            data=data)
        arrival = self._send_adu(when_us, request, from_master=True)
        return self._respond(arrival, request)

    # -- master behaviours --------------------------------------------

    def start_polling(self, when_us: Ticks, start_address: int,
                      count: int) -> None:
        """Connect and poll ``count`` registers each period."""
        done = self.connect(when_us)
        self._poll_span = (start_address, count)
        self._schedule_poll(done + self._jittered_period())

    def _jittered_period(self) -> Ticks:
        return seconds_to_ticks(
            self.poll_period_s * self._rng.uniform(0.95, 1.05))

    def _schedule_poll(self, when_us: Ticks) -> None:
        if self._past_horizon(when_us):
            return
        epoch = self._epoch
        self._sim.schedule(when_us, lambda: self._poll_tick(epoch))

    def _poll_tick(self, epoch: int) -> None:
        if epoch != self._epoch or not self.connected:
            return
        now_us = self._sim.now_us
        start, count = self._poll_span
        self.send_read(now_us, start, count)
        self._schedule_poll(now_us + self._jittered_period())

    def send_read(self, when_us: Ticks, start_address: int,
                  count: int) -> Ticks:
        """Read ``count`` holding registers (function 3)."""
        data = bytes((start_address >> 8, start_address & 0xFF,
                      count >> 8, count & 0xFF))
        return self._request(when_us, READ_HOLDING_REGISTERS, data)

    def send_write_single(self, when_us: Ticks, address: int,
                          value: int) -> Ticks:
        """Write one holding register (function 6)."""
        word = value & 0xFFFF
        data = bytes((address >> 8, address & 0xFF,
                      word >> 8, word & 0xFF))
        return self._request(when_us, WRITE_SINGLE_REGISTER, data)

    def send_write_multiple(self, when_us: Ticks, start_address: int,
                            values: list[int]) -> Ticks:
        """Write a block of holding registers (function 16)."""
        count = len(values)
        data = bytearray((start_address >> 8, start_address & 0xFF,
                          count >> 8, count & 0xFF, 2 * count))
        for value in values:
            word = value & 0xFFFF
            data += bytes((word >> 8, word & 0xFF))
        return self._request(when_us, WRITE_MULTIPLE_REGISTERS,
                             bytes(data))
