"""Non-IEC-104 background traffic: ICCP and C37.118.

Section 5 of the paper: "In addition to IEC 104 traffic, our capture
included other industrial protocols over TCP/IP such as ICCP
(communications between SCADA servers of different companies) and
C37.118 (phasor measurement units reporting data to the SCADA server).
We leave the analysis of these other protocols for future studies."

To be faithful, the synthetic captures can carry the same background
traffic; the analysis pipeline must filter it out exactly as the
authors did. The payloads are *wire-plausible* (correct ports, framing
magic and sizes) but deliberately simplified — the paper does not
analyze them, and neither do we.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass

from .capture import CaptureTap
from .clock import Simulator, Ticks, seconds_to_ticks
from .tcpsim import SimConnection, SimHost

#: ISO transport / MMS port used by ICCP (TASE.2).
ICCP_PORT = 102

#: IEEE C37.118 synchrophasor data port.
C37_118_PORT = 4712


def _c37_data_frame(frame_id: int, pmu_count: int = 1,
                    rng: random.Random | None = None) -> bytes:
    """A C37.118-2005 data frame: SYNC(2) FRAMESIZE(2) IDCODE(2)
    SOC(4) FRACSEC(4) ... CHK(2). Phasor payload simplified."""
    rng = rng or random.Random(0)
    phasors = b"".join(struct.pack(">hh", rng.randrange(-500, 500),
                                   rng.randrange(-500, 500))
                       for _ in range(4 * pmu_count))
    body = struct.pack(">HHI", 0x0000, frame_id & 0xFFFF,
                       frame_id * 33333) + phasors
    size = 2 + 2 + 2 + len(body) + 2
    frame = struct.pack(">HHH", 0xAA01, size, 7734) + body
    checksum = sum(frame) & 0xFFFF
    return frame + struct.pack(">H", checksum)


def _iccp_segment(sequence: int, rng: random.Random) -> bytes:
    """A TPKT/COTP-framed blob standing in for an MMS exchange."""
    mms = bytes(rng.randrange(0x20, 0x7F)
                for _ in range(rng.randrange(40, 120)))
    cotp = bytes((2, 0xF0, 0x80)) + mms
    tpkt = struct.pack(">BBH", 3, 0, 4 + len(cotp)) + cotp
    return tpkt


@dataclass
class BackgroundTraffic:
    """Schedules ICCP and C37.118 flows into a scenario's capture."""

    sim: Simulator
    tap: CaptureTap
    rng: random.Random

    def add_iccp_peering(self, local: SimHost, remote: SimHost,
                         start_us: Ticks, end_us: Ticks,
                         period: float = 4.0) -> SimConnection:
        """Periodic ICCP exchange between two control centers.

        ``start_us``/``end_us`` are integer-microsecond ticks;
        ``period`` stays a float-seconds knob quantized per send.
        """
        conn = SimConnection(self.sim, self.tap, client=local,
                             server=remote, server_port=ICCP_PORT,
                             rng=self.rng)
        conn.establish(max(0, start_us - 5_000_000))
        state = {"sequence": 0}

        def tick() -> None:
            now_us = self.sim.now_us
            if now_us > end_us or conn.closed:
                return
            state["sequence"] += 1
            conn.send(now_us, from_client=True,
                      payload=_iccp_segment(state["sequence"], self.rng))
            conn.send(now_us + 50_000, from_client=False,
                      payload=_iccp_segment(state["sequence"], self.rng))
            self.sim.schedule_in(
                seconds_to_ticks(period * self.rng.uniform(0.9, 1.1)),
                tick)

        self.sim.schedule(start_us, tick)
        return conn

    def add_pmu_stream(self, pmu: SimHost, server: SimHost,
                       start_us: Ticks, end_us: Ticks,
                       rate_hz: float = 2.0) -> SimConnection:
        """A phasor measurement unit streaming C37.118 data frames.

        Real PMUs stream at 30-60 frames/s; the default is throttled to
        keep synthetic captures manageable while preserving the
        distinctive steady high-rate pattern."""
        conn = SimConnection(self.sim, self.tap, client=pmu,
                             server=server, server_port=C37_118_PORT,
                             rng=self.rng)
        conn.establish(max(0, start_us - 2_000_000))
        state = {"frame": 0}
        period_us = seconds_to_ticks(1.0 / rate_hz)

        def tick() -> None:
            now_us = self.sim.now_us
            if now_us > end_us or conn.closed:
                return
            state["frame"] += 1
            conn.send(now_us, from_client=True,
                      payload=_c37_data_frame(state["frame"],
                                              rng=self.rng))
            self.sim.schedule_in(period_us, tick)

        self.sim.schedule(start_us, tick)
        return conn
