"""Measurement-point templates for the synthetic outstations.

Builds the per-outstation point lists (IOA, typeID, physical symbol,
value source) so that the DPI analysis reproduces the *shape* of paper
Tables 7 and 8: I36 and I13 dominate (97% of ASDUs), I9 comes from a
single normalized-value station, I3/I31 are breaker statuses at a
handful of generator stations, I5 is one transformer tap, I7 one
bitstring, I30 one time-tagged single point, and AGC set points (I50)
land at exactly the stations marked as AGC participants.
"""

from __future__ import annotations

import math
import random
from typing import Callable

from ..grid.constants import NOMINAL_VOLTAGE_KV
from ..grid.simulation import GridSimulation
from ..iec104.constants import TypeID
from ..simnet.behaviors import (PointConfig, ReportMode, SYMBOL_ACTIVE_POWER,
                                SYMBOL_CURRENT, SYMBOL_FREQUENCY,
                                SYMBOL_REACTIVE_POWER, SYMBOL_STATUS,
                                SYMBOL_VOLTAGE)
from .paper_topology import OutstationSpec

#: IOA where AGC set-point commands are addressed at participants.
AGC_SETPOINT_IOA = 100

#: First IOA used for measurement points.
BASE_IOA = 2001

#: Stations carrying the paper's rare typeIDs (Table 8 station counts).
NORMALIZED_STATION = "O36"      # I9 (plus I9 filler points)
STEP_POSITION_STATION = "O39"   # I5
BITSTRING_STATION = "O45"       # I7
TIMED_SINGLE_POINT_STATION = "O49"   # I30
TIMED_BREAKER_STATIONS = ("O1", "O10", "O19", "O26")          # I31
PLAIN_BREAKER_STATIONS = ("O5", "O14", "O29", "O34", "O42", "O50")  # I3
ALARM_STATIONS = ("O8", "O32", "O41")                          # I1
CLOCK_SYNC_STATIONS = ("O1", "O34", "O52")                     # I103
END_OF_INIT_STATIONS = ("O12", "O17")                          # I70

#: Threshold multiplier for the stale Type 5 outstation (paper §6.3).
STALE_THRESHOLD_FACTOR = 12.0


def _analog_type(spec: OutstationSpec) -> TypeID:
    if spec.name == NORMALIZED_STATION:
        return TypeID.M_ME_NA_1
    if spec.analog_flavor == "i36":
        return TypeID.M_ME_TF_1
    return TypeID.M_ME_NC_1


def _wave_source(rng: random.Random, base: float, amplitude: float,
                 period: float, noise: float) -> Callable[[float], float]:
    """A drifting sinusoid + noise — generic analog telemetry."""
    phase = rng.uniform(0.0, period)
    generator = random.Random(rng.randrange(1 << 30))

    def source(now: float) -> float:
        value = base + amplitude * math.sin(
            2.0 * math.pi * (now + phase) / period)
        return value + generator.gauss(0.0, noise)

    return source


def _telegraph_source(rng: random.Random, states: tuple[int, ...],
                      dwell: float) -> Callable[[float], float]:
    """A status point: holds a state, occasionally hops to another."""
    generator = random.Random(rng.randrange(1 << 30))
    current = {"state": states[0], "last": 0.0}

    def source(now: float) -> float:
        elapsed = max(0.0, now - current["last"])
        # Memoryless hop with rate 1/dwell, evaluated per poll.
        if elapsed > 0 and generator.random() < 1.0 - math.exp(
                -elapsed / dwell):
            options = [state for state in states
                       if state != current["state"]]
            current["state"] = generator.choice(options)
        current["last"] = now
        return float(current["state"])

    return source


def _normalize(source: Callable[[float], float],
               scale: float) -> Callable[[float], float]:
    """Wrap an engineering-unit source into the [-1, 1) NVA range."""

    def normalized(now: float) -> float:
        return max(-1.0, min(0.99996, source(now) / scale))

    return normalized


def build_points(spec: OutstationSpec, year: int, grid: GridSimulation,
                 rng: random.Random) -> list[PointConfig]:
    """Build exactly ``spec.yN_ioas`` measurement points for ``spec``."""
    target = spec.y1_ioas if year == 1 else spec.y2_ioas
    if target is None:
        raise ValueError(f"{spec.name} absent in year {year}")
    analog_tid = _analog_type(spec)
    stale = STALE_THRESHOLD_FACTOR if spec.name == "O40" else 1.0
    points: list[PointConfig] = []
    next_ioa = [BASE_IOA]

    def add(type_id: TypeID, symbol: str, source, threshold: float,
            mode: ReportMode = ReportMode.SPONTANEOUS,
            period: float = 4.0) -> None:
        if len(points) >= target:
            return
        points.append(PointConfig(
            ioa=next_ioa[0], type_id=type_id, symbol=symbol, source=source,
            mode=mode, threshold=threshold * stale, period=period))
        next_ioa[0] += 1

    if spec.has_generator:
        generator = spec.name  # generator named after its outstation
        add(analog_tid, SYMBOL_ACTIVE_POWER,
            lambda t, g=generator: grid.gen_active_power(g, t), 0.6)
        add(analog_tid, SYMBOL_REACTIVE_POWER,
            lambda t, g=generator: grid.gen_reactive_power(g, t), 0.5)
        add(analog_tid, SYMBOL_VOLTAGE,
            lambda t, g=generator: grid.gen_voltage(g, t), 0.8)
        add(analog_tid, SYMBOL_VOLTAGE,
            _wave_source(rng, NOMINAL_VOLTAGE_KV, 0.8, 900.0, 0.15), 0.8)
        add(analog_tid, SYMBOL_CURRENT,
            lambda t, g=generator: grid.gen_current(g, t), 0.03)
        add(analog_tid, SYMBOL_FREQUENCY, grid.system_frequency, 0.012)
        breaker_source = (lambda t, g=generator: grid.gen_breaker(g, t))
        if spec.name in TIMED_BREAKER_STATIONS:
            add(TypeID.M_DP_TB_1, SYMBOL_STATUS, breaker_source, 0.5)
            add(TypeID.M_DP_TB_1, SYMBOL_STATUS,
                _telegraph_source(rng, (1, 2), 350.0), 0.5)
        elif spec.name in PLAIN_BREAKER_STATIONS:
            add(TypeID.M_DP_NA_1, SYMBOL_STATUS, breaker_source, 0.5)
            # A disconnector that occasionally operates, so the typeID
            # is observed even when the breaker itself never moves.
            add(TypeID.M_DP_NA_1, SYMBOL_STATUS,
                _telegraph_source(rng, (1, 2), 350.0), 0.5)
    else:
        # Auxiliary (transmission-only) substation: line flows.
        add(analog_tid, SYMBOL_ACTIVE_POWER,
            _wave_source(rng, 120.0, 15.0, 700.0, 0.8), 1.2)
        add(analog_tid, SYMBOL_REACTIVE_POWER,
            _wave_source(rng, 30.0, 6.0, 800.0, 0.4), 0.8)
        add(analog_tid, SYMBOL_VOLTAGE,
            _wave_source(rng, NOMINAL_VOLTAGE_KV, 1.0, 1000.0, 0.15), 0.8)
        add(analog_tid, SYMBOL_FREQUENCY, grid.system_frequency, 0.012)

    # Station-specific rare typeIDs (Table 8).
    if spec.name == STEP_POSITION_STATION:
        add(TypeID.M_ST_NA_1, SYMBOL_STATUS,
            _telegraph_source(rng, tuple(range(-3, 12)), 150.0), 0.5)
    if spec.name == BITSTRING_STATION:
        add(TypeID.M_BO_NA_1, SYMBOL_STATUS,
            _telegraph_source(rng, (0x11, 0x13, 0x33, 0x37), 180.0), 0.5)
    if spec.name == TIMED_SINGLE_POINT_STATION:
        add(TypeID.M_SP_TB_1, SYMBOL_STATUS,
            _telegraph_source(rng, (0, 1), 200.0), 0.5)
    if spec.name in ALARM_STATIONS:
        add(TypeID.M_SP_NA_1, SYMBOL_STATUS,
            _telegraph_source(rng, (0, 1), 250.0), 0.5)

    # Fillers: generic analog telemetry up to the configured IOA count.
    # I36-flavoured stations report more eagerly (smaller thresholds),
    # which is what skews the paper's Table 7 toward I36 (65% vs 32%).
    spontaneous_factor = 0.16 if spec.analog_flavor == "i36" else 0.30
    index = 0
    while len(points) < target:
        index += 1
        base = rng.uniform(20.0, 180.0)
        amplitude = rng.uniform(2.0, 12.0)
        period = rng.uniform(300.0, 1500.0)
        noise = 0.05 * amplitude
        if spec.name == NORMALIZED_STATION:
            source = _normalize(
                _wave_source(rng, base, amplitude, period, noise), 250.0)
            add(TypeID.M_ME_NA_1, SYMBOL_ACTIVE_POWER, source,
                threshold=0.002, mode=ReportMode.PERIODIC,
                period=rng.uniform(10.0, 16.0))
            continue
        source = _wave_source(rng, base, amplitude, period, noise)
        if (index == 1 or index % 5 == 0) and stale == 1.0:
            # (The stale Type 5 outstation gets no periodic points —
            # its long reporting gaps are the whole point.)
            # Guarantee at least one periodic point per station so a
            # primary connection never idles past T3 unless its
            # thresholds are deliberately stale (the Type 5 outstation).
            add(analog_tid, SYMBOL_ACTIVE_POWER, source,
                threshold=0.2 * amplitude, mode=ReportMode.PERIODIC,
                period=rng.uniform(8.0, 14.0))
        else:
            symbol = (SYMBOL_CURRENT if index % 3 == 0
                      else SYMBOL_ACTIVE_POWER)
            add(analog_tid, symbol, source,
                threshold=spontaneous_factor * amplitude)

    return points
