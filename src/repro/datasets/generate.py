"""Canonical synthetic Y1/Y2 capture generation.

``generate_capture(year)`` reproduces (at a configurable time scale) the
paper's two datasets: Year 1 is five capture windows totalling ~8 hours,
Year 2 three windows totalling ~3 hours. All topology, behaviour types,
pathologies and physical events come from
:mod:`repro.datasets.paper_topology` and the scenario engine.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..grid.generator import GeneratorState
from ..grid.simulation import GridEventScript, GridSimulation, \
    build_default_grid
from ..simnet.behaviors import (OutstationBehavior, OutstationType,
                                RejectMode)
from ..simnet.capture import CaptureTap, CaptureWindow
from ..simnet.scenario import LinkPlan, Scenario, SyntheticCapture
from ..simnet.topology import NetworkMap
from .paper_topology import (ALL_SERVERS, NORMAL_KEEPALIVE_S,
                             OutstationSpec, roster)
from .points import (AGC_SETPOINT_IOA, CLOCK_SYNC_STATIONS,
                     END_OF_INIT_STATIONS, build_points)

#: Default reject-loop retry period (seconds). The paper's sub-second
#: flow counts imply the misbehaving RTUs were re-contacted every few
#: seconds; O30's misconfiguration stretches this to 430 s.
REJECT_RETRY_S = 8.0

#: The generator brought online mid-capture (paper Figs. 18/20/21).
SYNC_GENERATOR = "O34"

#: Y1 outstations whose backup attempts are silently ignored rather
#: than RST — producing the large long-lived flow count of Table 3 Y1.
#: Both were removed in Y2 (Table 2), collapsing that count.
IGNORE_SYN_STATIONS = ("O15", "O28")

#: Variety per the paper: "reject ... with FIN or RST packets".
FIN_REJECT_STATIONS = ("O24",)

#: Real capture durations (seconds): Y1 five ~96-minute days (~8 h
#: total), Y2 three ~60-minute days (~3 h total).
_REAL_WINDOWS = {1: (5, 5760.0), 2: (3, 3600.0)}


@dataclass(frozen=True)
class CaptureConfig:
    """Knobs for synthetic capture generation."""

    seed: int = 104
    #: Fraction of the paper's real capture duration to simulate.
    time_scale: float = 0.1
    #: Idle gap between capture windows ("different days", compressed).
    window_gap: float = 1500.0
    retransmission_probability: float = 0.004
    #: Mean interval between reporting sweeps per outstation.
    report_interval: float = 2.0
    #: Optional cap on the roster size (smoke tests); None = full roster.
    max_outstations: int | None = None
    #: Include the paper's ICCP and C37.118 background traffic (§5).
    include_background: bool = True
    #: Probability that the tap misses any given frame (capture loss).
    capture_loss_probability: float = 0.0
    #: TCP acknowledgement realism: "none" (piggyback only, the
    #: calibrated default) or "delayed" (coalesced pure ACKs).
    ack_policy: str = "none"
    #: ``None`` (default): the original single-process simulation of
    #: the whole year. ``>= 1``: windowed mode — every capture day is
    #: simulated independently from a seed derived from
    #: ``(seed, year, day)``, and ``workers > 1`` fans the days out
    #: over a process pool. Windowed output is byte-identical for any
    #: worker count but differs from the monolithic default (per-day
    #: seeding replaces one shared random stream).
    workers: int | None = None

    def __post_init__(self) -> None:
        if not 0 < self.time_scale <= 1.0:
            raise ValueError("time_scale must be in (0, 1]")
        if self.window_gap < 0:
            raise ValueError("window_gap must be >= 0")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 (or None for the "
                             "monolithic path)")


def capture_windows(year: int, config: CaptureConfig
                    ) -> tuple[CaptureWindow, ...]:
    """The capture days of one year, scaled by ``config.time_scale``."""
    count, real_duration = _REAL_WINDOWS[year]
    duration = real_duration * config.time_scale
    windows = []
    start = 200.0
    for index in range(count):
        windows.append(CaptureWindow.from_seconds(
            start, start + duration, label=f"Y{year}-day{index + 1}"))
        start += duration + config.window_gap
    return tuple(windows)


def _reject_mode(spec: OutstationSpec, year: int) -> RejectMode:
    if spec.name in IGNORE_SYN_STATIONS and year == 1:
        return RejectMode.IGNORE_SYN
    if spec.name in FIN_REJECT_STATIONS:
        return RejectMode.FIN_AFTER_TESTFR
    return RejectMode.RST_AFTER_TESTFR


def build_grid(year: int, specs: list[OutstationSpec],
               windows: tuple[CaptureWindow, ...],
               rng: random.Random) -> GridSimulation:
    """Balancing-area physics for the year's generator fleet."""
    names = [spec.name for spec in specs if spec.has_generator]
    script = GridEventScript()
    # Generator synchronization (Figs. 20-21) in the third window.
    sync_window = windows[min(2, len(windows) - 1)]
    if SYNC_GENERATOR in names:
        script.generator_syncs.append((
            sync_window.start + 0.25 * sync_window.duration,
            SYNC_GENERATOR))
    grid = build_default_grid(names, rng=rng, script=script)
    if SYNC_GENERATOR in names:
        unit = grid.fleet[SYNC_GENERATOR]
        unit.trip()
        unit.state = GeneratorState.OFFLINE
        # The sync timeline must fit inside a (possibly scaled-down)
        # capture window, so the full Fig. 20 sequence — voltage ramp,
        # breaker close, power ramp — is observable.
        unit.sync_voltage_ramp_s = min(120.0,
                                       0.25 * sync_window.duration)
        unit.sync_hold_s = min(60.0, 0.1 * sync_window.duration)
        unit.post_sync_setpoint_mw = 0.5 * unit.capacity_mw
        unit.ramp_rate_mw_per_s = max(unit.ramp_rate_mw_per_s,
                                      unit.post_sync_setpoint_mw
                                      / (0.2 * sync_window.duration))
        # The operator loads the unit manually after synchronization;
        # it does not participate in AGC during the capture.
        grid.agc.participation[SYNC_GENERATOR] = 0.0
        # Rebalance the load to the fleet that is actually online.
        grid.load.base_mw = grid.fleet.total_output_mw
    # Unmet load (Figs. 18-19) in the second window: 5% of base demand
    # disconnects for a fifth of the window.
    event_window = windows[min(1, len(windows) - 1)]
    grid.load.schedule_loss(
        event_window.start + 0.35 * event_window.duration,
        0.2 * event_window.duration, 0.05 * grid.load.base_mw)
    return grid


def build_behavior(spec: OutstationSpec, year: int, grid: GridSimulation,
                   rng: random.Random,
                   config: CaptureConfig) -> OutstationBehavior:
    """Instantiate the simulator behaviour for one outstation."""
    outstation_type = spec.y1_type if year == 1 else spec.y2_type
    if outstation_type is None:
        raise ValueError(f"{spec.name} absent in year {year}")
    rejecting = outstation_type in (OutstationType.REJECTS_SECONDARY,
                                    OutstationType.BACKUP_REJECTS)
    return OutstationBehavior(
        name=spec.name, substation=spec.substation,
        outstation_type=outstation_type,
        points=build_points(spec, year, grid, rng),
        profile=spec.profile,
        reject_mode=(_reject_mode(spec, year) if rejecting
                     else RejectMode.NONE),
        keepalive_period=spec.keepalive_s or NORMAL_KEEPALIVE_S,
        # I36-flavoured RTUs report noticeably faster, skewing the
        # observed ASDU mix toward I36 as in paper Table 7.
        report_interval=(config.report_interval
                         * (0.7 if spec.analog_flavor == "i36" else 1.1)
                         * rng.uniform(0.85, 1.15)),
        reject_retry_period=spec.keepalive_s or REJECT_RETRY_S,
        has_generator=spec.has_generator,
        generator=spec.name if spec.has_generator else None,
        agc_setpoint_ioa=(AGC_SETPOINT_IOA if spec.agc_participant
                          else None))


def _build_scene(year: int, config: CaptureConfig
                 ) -> tuple[random.Random, tuple[CaptureWindow, ...],
                            GridSimulation, NetworkMap, list[LinkPlan]]:
    """Deterministic build of everything a scenario needs.

    The returned ``rng`` has consumed exactly the build-time draws
    (grid capacities, behaviour jitters), in the same order for every
    caller — the windowed workers rely on this to reconstruct an
    identical fleet and roster in each process.
    """
    rng = random.Random((config.seed, year).__hash__() & 0x7FFFFFFF)
    specs = roster(year)
    if config.max_outstations is not None:
        specs = specs[:config.max_outstations]
    windows = capture_windows(year, config)
    grid = build_grid(year, specs, windows, rng)

    network = NetworkMap()
    for server in ALL_SERVERS:
        network.add_server(server)
    plans = []
    for spec in specs:
        network.add_outstation(spec.name)
        behavior = build_behavior(spec, year, grid, rng, config)
        plans.append(LinkPlan(
            behavior=behavior, pair=spec.pair,
            primary_server=spec.primary_server,
            backup_server=spec.backup_server,
            agc_participant=spec.agc_participant,
            clock_sync=spec.name in CLOCK_SYNC_STATIONS,
            test_rtu=spec.test_rtu,
            end_of_init=spec.name in END_OF_INIT_STATIONS))
    return rng, windows, grid, network, plans


def generate_capture(year: int,
                     config: CaptureConfig = CaptureConfig()
                     ) -> SyntheticCapture:
    """Produce the synthetic capture for year 1 or 2.

    With ``config.workers`` unset this is the original monolithic
    discrete-event simulation of the whole year. With ``workers`` set,
    capture days are simulated independently (optionally in parallel);
    see :class:`CaptureConfig` and ``docs/performance.md``.
    """
    if year not in (1, 2):
        raise ValueError("year must be 1 or 2")
    if config.workers is not None:
        return _generate_windowed(year, config)
    rng, windows, grid, network, plans = _build_scene(year, config)

    scenario = Scenario(
        year=year, plans=plans, grid=grid, network=network,
        windows=windows, seed=rng.randrange(1 << 30),
        retransmission_probability=config.retransmission_probability,
        agc_dispatch_period=60.0, agc_deadband_mw=1.5,
        capture_loss_probability=config.capture_loss_probability,
        ack_policy=config.ack_policy)
    if config.include_background:
        _schedule_background(scenario, network, rng)
    return scenario.run()


# -- windowed (parallelizable) generation --------------------------------

#: Ephemeral ports per capture day in windowed mode. Each day's worker
#: starts from fresh hosts, so days get disjoint blocks to keep TCP
#: 4-tuples unique across the concatenated year.
_PORTS_PER_WINDOW = 3000
_EPHEMERAL_BASE = 49152


def _window_seed(config: CaptureConfig, year: int, index: int) -> int:
    """Deterministic per-day seed (ints only: tuple hashing is stable
    across processes, unlike strings under hash randomization)."""
    return (config.seed, year, index, 0x104).__hash__() & 0x7FFFFFFF


def _generate_window(year: int, config: CaptureConfig,
                     index: int) -> tuple[list, int, int]:
    """Simulate one capture day; returns (packets, dropped, lost).

    Module-level so :class:`ProcessPoolExecutor` can pickle it. Every
    worker rebuilds the identical scene from the shared seed, then
    simulates only its own window under a day-specific seed — making
    the result a pure function of ``(year, config, index)``, which is
    what guarantees parallel == sequential.
    """
    _, windows, grid, network, plans = _build_scene(year, config)
    if config.include_background:
        _background_hosts(network)
    base = _EPHEMERAL_BASE + (_PORTS_PER_WINDOW * index) % 16000
    for host in network.hosts.values():
        host.set_port_base(base)
    seed = _window_seed(config, year, index)
    scenario = Scenario(
        year=year, plans=plans, grid=grid, network=network,
        windows=(windows[index],), seed=seed,
        retransmission_probability=config.retransmission_probability,
        agc_dispatch_period=60.0, agc_deadband_mw=1.5,
        capture_loss_probability=config.capture_loss_probability,
        ack_policy=config.ack_policy,
        window_index_offset=index)
    if config.include_background:
        _schedule_background(scenario, network, random.Random(seed ^ 0x42))
    capture = scenario.run()
    return list(capture.packets), capture.tap.dropped, capture.tap.lost


def _generate_window_args(args: tuple[int, CaptureConfig, int]):
    return _generate_window(*args)


def _generate_windowed(year: int,
                       config: CaptureConfig) -> SyntheticCapture:
    """Simulate each capture day independently and concatenate.

    ``config.workers == 1`` runs the same per-day function in-process;
    ``> 1`` fans days out over a process pool. Both orders of execution
    produce byte-identical pcap output because each day is a pure
    function of its index.
    """
    rng, windows, grid, network, plans = _build_scene(year, config)
    del rng  # windowed mode replaces the shared stream with per-day seeds
    if config.include_background:
        _background_hosts(network)  # keep the address book complete
    jobs = [(year, config, index) for index in range(len(windows))]
    workers = min(config.workers or 1, len(windows))
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_generate_window_args, jobs))
    else:
        results = [_generate_window_args(job) for job in jobs]

    tap = CaptureTap(windows=windows)
    for packets, dropped, lost in results:
        tap.packets.extend(packets)
        tap.dropped += dropped
        tap.lost += lost
    return SyntheticCapture(year=year, tap=tap, windows=windows,
                            network=network, plans=plans, grid=grid)


def _background_hosts(network) -> tuple[object, list]:
    """Register the non-IEC-104 hosts (same order everywhere, so the
    address assignment matches between workers and the parent).

    Idempotent: window workers register these *before* applying the
    per-day ephemeral-port base, then the background scheduler reuses
    them — otherwise the auxiliary hosts would allocate from the
    default port base in every window and reuse 4-tuples across days.
    """
    if "EXT1" in network.hosts:
        return network["EXT1"], [network[f"PMU{i + 1}"] for i in range(2)]
    external = network.add_auxiliary("EXT1")
    pmus = [network.add_auxiliary(f"PMU{i + 1}") for i in range(2)]
    return external, pmus


def _schedule_background(scenario: Scenario, network, rng) -> None:
    """ICCP peering and PMU streams alongside the IEC 104 traffic."""
    from ..simnet.background import BackgroundTraffic
    external, pmus = _background_hosts(network)
    background = BackgroundTraffic(sim=scenario.sim, tap=scenario.tap,
                                   rng=rng)
    for window in scenario.windows:
        background.add_iccp_peering(
            network["C1"], external,
            start_us=window.start_us + 1_000_000,
            end_us=window.end_us, period=6.0)
        for index, pmu in enumerate(pmus):
            background.add_pmu_stream(
                pmu, network["C3"],
                start_us=window.start_us + 500_000 + index * 1_000_000,
                end_us=window.end_us, rate_hz=1.0)
