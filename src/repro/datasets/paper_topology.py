"""The paper's network, as data (Fig. 6 + Table 2 + Section 6 anecdotes).

The paper studies a balancing authority with 4 control servers (two
redundant pairs C1/C2 and C3/C4), 27 substations S1-S27 and 58
outstations O1-O58 across two capture years. This module encodes every
fact the paper states about that network:

* Table 2: outstations added and removed between Y1 and Y2, with reasons;
* Section 6.1: the non-compliant encoders (O37: 2-octet IOA; O53, O58,
  O28: 1-octet COT);
* Section 6.2 / Fig. 14: the ten Y1 connections that reset backup
  attempts (C2-O28, C2-O24, C1-O7, C1-O9, C1-O6, C1-O8, C1-O35, C2-O30,
  C1-O15, C1-O5);
* Section 6.3: the cluster-0 outliers — C2-O30 with a 430 s interval
  between U messages (vs the ~30 s norm) and the C4-O22 test RTU that
  exchanged only four packets;
* Table 6 / Fig. 17: behaviour types, honouring every named assignment
  (O5/O8 type 6, O10/O11 redundant pair in S10 with its 14 RTUs, the
  stale-threshold type 5 outstation, switchovers O20 on C3/C4 and O29
  on C1/C2);
* Section 6: 14 outstations in 7 substations stable (same IOA count)
  across years.

Facts the paper leaves unspecified (substation-to-outstation mapping
beyond the anecdotes, exact IOA counts) are filled in deterministically
and documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..iec104.profiles import (LEGACY_COT_PROFILE, LEGACY_IOA_PROFILE,
                               STANDARD_PROFILE, LinkProfile)
from ..simnet.behaviors import OutstationType

#: Control server names; each pair is a primary/backup couple (Fig. 4).
SERVER_PAIR_A = ("C1", "C2")
SERVER_PAIR_B = ("C3", "C4")
ALL_SERVERS = SERVER_PAIR_A + SERVER_PAIR_B

#: Default keep-alive / reject-retry interval on backup links (paper:
#: "a 30s average time between U messages").
NORMAL_KEEPALIVE_S = 30.0

#: The misconfigured T3 of connection C2-O30 (paper Section 6.3).
O30_KEEPALIVE_S = 430.0


@dataclass(frozen=True)
class OutstationSpec:
    """Static description of one outstation across both years."""

    name: str
    substation: str
    pair: tuple[str, str]
    #: Behaviour type per year; None = absent that year.
    y1_type: OutstationType | None
    y2_type: OutstationType | None
    has_generator: bool = False
    profile: LinkProfile = STANDARD_PROFILE
    #: Server that runs/receives the rejected backup attempts (type 6/7).
    reject_server: str | None = None
    #: Keep-alive / retry interval override (None = NORMAL_KEEPALIVE_S).
    keepalive_s: float | None = None
    #: Y1/Y2 configured IOA count (None = absent that year).
    y1_ioas: int | None = None
    y2_ioas: int | None = None
    #: Receives AGC set points (paper Table 8: I50 seen at 4 stations).
    agc_participant: bool = False
    #: Measurement flavour: which analog typeID dominates this RTU.
    analog_flavor: str = "mixed"  # "i36", "i13", or "mixed"
    #: The not-in-operation RTU of Section 6.3 (4 packets with C4).
    test_rtu: bool = False
    #: Table 2 change reason (None when present in both years).
    change_reason: str | None = None

    def __post_init__(self) -> None:
        if self.y1_type is None and self.y2_type is None:
            raise ValueError(f"{self.name}: absent in both years")
        if self.y1_type is not None and self.y1_ioas is None:
            raise ValueError(f"{self.name}: Y1 present but no IOA count")
        if self.y2_type is not None and self.y2_ioas is None:
            raise ValueError(f"{self.name}: Y2 present but no IOA count")

    @property
    def primary_server(self) -> str:
        """The server holding the I-format connection (pair first slot,
        or the non-rejecting server for types 6/7)."""
        if self.reject_server is not None:
            other = [s for s in self.pair if s != self.reject_server]
            return other[0]
        return self.pair[0]

    @property
    def backup_server(self) -> str:
        primary = self.primary_server
        return [s for s in self.pair if s != primary][0]


def _spec(name: str, substation: str, pair, y1, y2, **kwargs):
    return OutstationSpec(name=name, substation=substation, pair=pair,
                          y1_type=y1, y2_type=y2, **kwargs)


_T = OutstationType
_A = SERVER_PAIR_A
_B = SERVER_PAIR_B

#: Every outstation O1-O58. IOA counts marked "stable" (same both
#: years) are the 14 outstations in substations S3/S5/S6/S11/S12/S13/S21.
OUTSTATIONS: tuple[OutstationSpec, ...] = (
    # --- server pair A (C1/C2) --------------------------------------------
    _spec("O1", "S1", _A, _T.IDEAL, _T.IDEAL, has_generator=True,
          agc_participant=True, analog_flavor="i36",
          y1_ioas=18, y2_ioas=21),
    _spec("O2", "S2", _A, _T.PRIMARY_ONLY, None, y1_ioas=7,
          change_reason="Substation without supervision"),
    _spec("O3", "S3", _A, _T.IDEAL, _T.IDEAL, has_generator=True,
          analog_flavor="i36", y1_ioas=16, y2_ioas=16),          # stable
    _spec("O4", "S3", _A, _T.BACKUP_U_ONLY, _T.BACKUP_U_ONLY,
          y1_ioas=9, y2_ioas=9),                                  # stable
    _spec("O5", "S4", _A, _T.REJECTS_SECONDARY, _T.REJECTS_SECONDARY,
          has_generator=True, reject_server="C1", analog_flavor="i13",
          y1_ioas=12, y2_ioas=14),
    _spec("O6", "S5", _A, _T.BACKUP_REJECTS, _T.BACKUP_REJECTS,
          reject_server="C1", y1_ioas=8, y2_ioas=8),              # stable
    _spec("O7", "S6", _A, _T.BACKUP_REJECTS, _T.BACKUP_REJECTS,
          reject_server="C1", y1_ioas=10, y2_ioas=10),            # stable
    _spec("O8", "S7", _A, _T.REJECTS_SECONDARY, _T.REJECTS_SECONDARY,
          has_generator=True, reject_server="C1", analog_flavor="i13",
          y1_ioas=13, y2_ioas=11),
    _spec("O9", "S8", _A, _T.BACKUP_REJECTS, _T.IDEAL,
          reject_server="C1", analog_flavor="i13",
          y1_ioas=11, y2_ioas=13),
    _spec("O15", "S8", _A, _T.BACKUP_REJECTS, None, reject_server="C1",
          y1_ioas=11, change_reason="Redundant RTU in operation"),
    _spec("O24", "S12", _A, _T.BACKUP_REJECTS, _T.BACKUP_REJECTS,
          reject_server="C2", y1_ioas=9, y2_ioas=9),              # stable
    _spec("O25", "S5", _A, _T.PRIMARY_ONLY, _T.PRIMARY_ONLY,
          has_generator=True, analog_flavor="i13",
          y1_ioas=14, y2_ioas=14),                                # stable
    _spec("O26", "S6", _A, _T.IDEAL, _T.IDEAL, has_generator=True,
          agc_participant=True, analog_flavor="i36",
          y1_ioas=20, y2_ioas=20),                                # stable
    _spec("O27", "S8", _A, _T.I_ONLY_BOTH_SERVERS, _T.I_ONLY_BOTH_SERVERS,
          has_generator=True, analog_flavor="i13",
          y1_ioas=15, y2_ioas=18),
    _spec("O28", "S9", _A, _T.REJECTS_SECONDARY, None,
          has_generator=True, reject_server="C2",
          profile=LEGACY_COT_PROFILE, analog_flavor="i13", y1_ioas=12,
          change_reason="Redundant RTU in operation"),
    _spec("O29", "S11", _A, _T.SWITCHOVER_OBSERVED,
          _T.SWITCHOVER_OBSERVED, has_generator=True,
          analog_flavor="i36", y1_ioas=17, y2_ioas=17),           # stable
    _spec("O30", "S11", _A, _T.BACKUP_REJECTS, _T.BACKUP_REJECTS,
          reject_server="C2", keepalive_s=O30_KEEPALIVE_S,
          y1_ioas=8, y2_ioas=8),                                  # stable
    _spec("O31", "S12", _A, _T.I_ONLY_BOTH_SERVERS,
          _T.I_ONLY_BOTH_SERVERS, has_generator=True,
          analog_flavor="i13", y1_ioas=13, y2_ioas=13),           # stable
    _spec("O32", "S13", _A, _T.I_ONLY_BOTH_SERVERS,
          _T.I_ONLY_BOTH_SERVERS, has_generator=True,
          analog_flavor="i36", y1_ioas=19, y2_ioas=19),           # stable
    _spec("O35", "S13", _A, _T.BACKUP_REJECTS, _T.BACKUP_REJECTS,
          reject_server="C1", y1_ioas=7, y2_ioas=7),              # stable
    _spec("O51", "S9", _A, None, _T.IDEAL, has_generator=True,
          analog_flavor="i13", y2_ioas=15, change_reason="Backup RTU"),
    # --- server pair B (C3/C4) --------------------------------------------
    # S10 is the paper's "newer substation ... with 14 RTUs" where each
    # generator is monitored by a redundant RTU pair (O10 active, O11
    # keep-alive only, and so on).
    _spec("O10", "S10", _B, _T.IDEAL, _T.IDEAL, has_generator=True,
          agc_participant=True, analog_flavor="i36",
          y1_ioas=22, y2_ioas=25),
    _spec("O11", "S10", _B, _T.BACKUP_U_ONLY, _T.BACKUP_U_ONLY,
          y1_ioas=22, y2_ioas=25),
    _spec("O12", "S10", _B, _T.I_ONLY_BOTH_SERVERS,
          _T.I_ONLY_BOTH_SERVERS, has_generator=True,
          analog_flavor="i36", y1_ioas=16, y2_ioas=15),
    _spec("O13", "S10", _B, _T.BACKUP_U_ONLY, _T.BACKUP_U_ONLY,
          y1_ioas=16, y2_ioas=15),
    _spec("O14", "S10", _B, _T.IDEAL, _T.IDEAL, has_generator=True,
          analog_flavor="i36", y1_ioas=18, y2_ioas=20),
    _spec("O16", "S10", _B, _T.BACKUP_U_ONLY, _T.BACKUP_U_ONLY,
          y1_ioas=18, y2_ioas=20),
    _spec("O17", "S10", _B, _T.I_ONLY_BOTH_SERVERS,
          _T.I_ONLY_BOTH_SERVERS, has_generator=True,
          analog_flavor="i13", y1_ioas=14, y2_ioas=16),
    _spec("O18", "S10", _B, _T.BACKUP_U_ONLY, _T.BACKUP_U_ONLY,
          y1_ioas=14, y2_ioas=16),
    _spec("O19", "S10", _B, _T.IDEAL, _T.IDEAL, has_generator=True,
          agc_participant=True, analog_flavor="i36",
          y1_ioas=21, y2_ioas=19),
    _spec("O20", "S10", _B, _T.SWITCHOVER_OBSERVED, None,
          has_generator=True, analog_flavor="i13", y1_ioas=12,
          change_reason="Redundant RTU in operation"),
    _spec("O21", "S10", _B, _T.BACKUP_U_ONLY, _T.BACKUP_U_ONLY,
          y1_ioas=12, y2_ioas=14),
    _spec("O22", "S10", _B, _T.BACKUP_U_ONLY, None, test_rtu=True,
          y1_ioas=5, change_reason="Redundant RTU in operation"),
    _spec("O23", "S10", _B, _T.BACKUP_U_ONLY, _T.BACKUP_U_ONLY,
          y1_ioas=10, y2_ioas=12),
    _spec("O33", "S10", _B, _T.BACKUP_U_ONLY, None, y1_ioas=9,
          change_reason="Redundant RTU in operation"),
    # --- remaining pair-B substations --------------------------------------
    _spec("O34", "S14", _B, _T.IDEAL, _T.IDEAL, has_generator=True,
          analog_flavor="i36", y1_ioas=17, y2_ioas=14),
    _spec("O36", "S15", _B, _T.I_ONLY_BOTH_SERVERS,
          _T.I_ONLY_BOTH_SERVERS, analog_flavor="i13",
          y1_ioas=8, y2_ioas=10),
    _spec("O37", "S16", _B, _T.IDEAL, _T.IDEAL, has_generator=True,
          profile=LEGACY_IOA_PROFILE, analog_flavor="i13",
          y1_ioas=12, y2_ioas=13),
    _spec("O38", "S17", _B, _T.BACKUP_U_ONLY, None, y1_ioas=6,
          change_reason="Redundant RTU in operation"),
    _spec("O39", "S17", _B, _T.PRIMARY_ONLY, _T.PRIMARY_ONLY,
          has_generator=True, analog_flavor="i13",
          y1_ioas=11, y2_ioas=12),
    _spec("O40", "S18", _B, _T.SINGLE_SERVER_I_AND_U,
          _T.SINGLE_SERVER_I_AND_U, has_generator=True,
          analog_flavor="i13", y1_ioas=9, y2_ioas=8),
    _spec("O41", "S19", _B, _T.I_ONLY_BOTH_SERVERS,
          _T.I_ONLY_BOTH_SERVERS, has_generator=True,
          analog_flavor="i36", y1_ioas=15, y2_ioas=17),
    _spec("O48", "S19", _B, _T.BACKUP_U_ONLY, _T.BACKUP_U_ONLY,
          y1_ioas=8, y2_ioas=7),
    _spec("O42", "S20", _B, _T.I_ONLY_BOTH_SERVERS,
          _T.I_ONLY_BOTH_SERVERS, has_generator=True,
          analog_flavor="i36", y1_ioas=19, y2_ioas=22),
    _spec("O43", "S20", _B, _T.BACKUP_U_ONLY, _T.BACKUP_U_ONLY,
          y1_ioas=10, y2_ioas=9),
    _spec("O44", "S21", _B, _T.I_ONLY_BOTH_SERVERS,
          _T.I_ONLY_BOTH_SERVERS, has_generator=True,
          analog_flavor="i13", y1_ioas=12, y2_ioas=12),           # stable
    _spec("O47", "S21", _B, _T.BACKUP_U_ONLY, _T.BACKUP_U_ONLY,
          y1_ioas=6, y2_ioas=6),                                  # stable
    _spec("O45", "S22", _B, _T.PRIMARY_ONLY, _T.PRIMARY_ONLY,
          has_generator=True, analog_flavor="i13",
          y1_ioas=10, y2_ioas=11),
    _spec("O46", "S22", _B, _T.BACKUP_U_ONLY, _T.BACKUP_U_ONLY,
          y1_ioas=7, y2_ioas=8),
    _spec("O49", "S14", _B, _T.PRIMARY_ONLY, _T.PRIMARY_ONLY,
          analog_flavor="i13", y1_ioas=6, y2_ioas=5),
    # --- Y2 additions (Table 2) ---------------------------------------------
    _spec("O50", "S24", _B, None, _T.IDEAL, has_generator=True,
          analog_flavor="i36", y2_ioas=16, change_reason="New substations"),
    _spec("O52", "S23", _B, None, _T.IDEAL, has_generator=True,
          analog_flavor="i13", y2_ioas=13,
          change_reason="Updated from 101 to 104"),
    _spec("O53", "S27", _B, None, _T.IDEAL, has_generator=True,
          profile=LEGACY_COT_PROFILE, analog_flavor="i13", y2_ioas=12,
          change_reason="New substations"),
    _spec("O54", "S25", _B, None, _T.IDEAL, has_generator=True,
          analog_flavor="i36", y2_ioas=18,
          change_reason="Under Maintenance in year 1"),
    _spec("O55", "S26", _B, None, _T.IDEAL, has_generator=True,
          analog_flavor="i13", y2_ioas=14,
          change_reason="Updated from 101 to 104"),
    _spec("O56", "S20", _B, None, _T.BACKUP_U_ONLY, y2_ioas=9,
          change_reason="Backup RTU"),
    _spec("O57", "S22", _B, None, _T.BACKUP_U_ONLY, y2_ioas=7,
          change_reason="Backup RTU"),
    _spec("O58", "S14", _B, None, _T.IDEAL, has_generator=True,
          profile=LEGACY_COT_PROFILE, analog_flavor="i13", y2_ioas=10,
          change_reason="Backup RTU"),
)

#: Table 2 of the paper, grouped by reason.
TABLE2_ADDED = {
    "New substations": ("O50", "O53"),
    "Updated from 101 to 104": ("O52", "O55"),
    "Backup RTU": ("O51", "O56", "O57", "O58"),
    "Under Maintenance in year 1": ("O54",),
}
TABLE2_REMOVED = {
    "Redundant RTU in operation": ("O15", "O20", "O22", "O28", "O33",
                                   "O38"),
    "Substation without supervision": ("O2",),
}

#: The ten Y1 connections at Markov point (1,1) (paper Fig. 14).
Y1_RESET_CONNECTIONS = (("C2", "O28"), ("C2", "O24"), ("C1", "O7"),
                        ("C1", "O9"), ("C1", "O6"), ("C1", "O8"),
                        ("C1", "O35"), ("C2", "O30"), ("C1", "O15"),
                        ("C1", "O5"))

#: Outstations flagged 100% malformed by standard parsers (§6.1).
NON_COMPLIANT = {"O37": LEGACY_IOA_PROFILE, "O53": LEGACY_COT_PROFILE,
                 "O58": LEGACY_COT_PROFILE, "O28": LEGACY_COT_PROFILE}


def spec_by_name(name: str) -> OutstationSpec:
    for spec in OUTSTATIONS:
        if spec.name == name:
            return spec
    raise KeyError(name)


def roster(year: int) -> list[OutstationSpec]:
    """All outstations present in capture year 1 or 2."""
    if year not in (1, 2):
        raise ValueError("year must be 1 or 2")
    attr = "y1_type" if year == 1 else "y2_type"
    return [spec for spec in OUTSTATIONS
            if getattr(spec, attr) is not None]


def substations(year: int) -> set[str]:
    return {spec.substation for spec in roster(year)}


def stable_outstations() -> list[OutstationSpec]:
    """Outstations present both years with unchanged IOA counts."""
    return [spec for spec in OUTSTATIONS
            if spec.y1_type is not None and spec.y2_type is not None
            and spec.y1_ioas == spec.y2_ioas]


def _check_paper_invariants() -> None:
    """Validate this table against every count the paper states."""
    y1, y2 = roster(1), roster(2)
    assert len(y1) == 49, f"Y1 roster {len(y1)} != 49"
    assert len(y2) == 51, f"Y2 roster {len(y2)} != 51"
    names = [spec.name for spec in OUTSTATIONS]
    assert len(names) == len(set(names)) == 58
    added = {spec.name for spec in OUTSTATIONS
             if spec.y1_type is None}
    removed = {spec.name for spec in OUTSTATIONS
               if spec.y2_type is None}
    assert added == {f"O{i}" for i in range(50, 59)}
    assert removed == {"O2", "O15", "O20", "O22", "O28", "O33", "O38"}
    s10 = [spec for spec in OUTSTATIONS if spec.substation == "S10"]
    assert len(s10) == 14, f"S10 has {len(s10)} RTUs, paper says 14"
    stable = stable_outstations()
    assert len(stable) == 14, f"{len(stable)} stable outstations != 14"
    stable_subs = {spec.substation for spec in stable}
    assert len(stable_subs) == 7, f"{len(stable_subs)} stable substations"
    assert len(substations(1) | substations(2)) == 27


_check_paper_invariants()
