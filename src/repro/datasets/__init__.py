"""Synthetic datasets: the paper's topology as data, and deterministic
generation of the Y1/Y2 captures."""

from .generate import (CaptureConfig, SYNC_GENERATOR, capture_windows,
                       generate_capture)
from .paper_topology import (ALL_SERVERS, NON_COMPLIANT,
                             NORMAL_KEEPALIVE_S, O30_KEEPALIVE_S,
                             OUTSTATIONS, OutstationSpec, SERVER_PAIR_A,
                             SERVER_PAIR_B, TABLE2_ADDED, TABLE2_REMOVED,
                             Y1_RESET_CONNECTIONS, roster, spec_by_name,
                             stable_outstations, substations)
from .points import AGC_SETPOINT_IOA, build_points

__all__ = [
    "AGC_SETPOINT_IOA", "ALL_SERVERS", "CaptureConfig", "NON_COMPLIANT",
    "NORMAL_KEEPALIVE_S", "O30_KEEPALIVE_S", "OUTSTATIONS",
    "OutstationSpec", "SERVER_PAIR_A", "SERVER_PAIR_B", "SYNC_GENERATOR",
    "TABLE2_ADDED", "TABLE2_REMOVED", "Y1_RESET_CONNECTIONS",
    "build_points", "capture_windows", "generate_capture", "roster",
    "spec_by_name", "stable_outstations", "substations",
]
