"""IEC 60870-5-104 as a :class:`~repro.protocols.base.ProtocolSpec`.

This is a pure adapter: the existing stack — the paper's tolerant
profile-inferring parser, the incremental :class:`StreamDecoder`, the
port-2404 filter — is re-exposed behind the protocol interface
unchanged.  The spec's token alphabet is the paper's Table 4 grammar
(``S``, ``U1..U32``, ``I<typeID>``) that every analyzer already
consumes.
"""

from __future__ import annotations

from typing import Any

from ..iec104.codec import StreamDecoder, TolerantParser
from ..iec104.constants import IEC104_PORT
from .base import ProtocolSpec, register_protocol


def _new_parser() -> TolerantParser:
    return TolerantParser()


def _new_decoder(parser: Any, link_key: Any) -> StreamDecoder:
    return StreamDecoder(parser=parser, link_key=link_key)


#: The IEC 104 spec (adapts the existing stack unchanged).
IEC104_SPEC = register_protocol(ProtocolSpec(
    name="iec104",
    title="IEC 60870-5-104",
    ports=(IEC104_PORT,),
    tokens=("I<typeID>", "S", "U1..U32"),
    _parser_factory=_new_parser,
    _decoder_factory=_new_decoder,
))
