"""Modbus/TCP: MBAP framing + function-code PDU codec + spec.

The second protocol behind the abstraction, end-to-end.  Modbus/TCP
frames one PDU per ADU behind the 7-octet MBAP header::

    transaction id (u16be) | protocol id (u16be, always 0) |
    length (u16be, unit + PDU octets) | unit id (u8)

followed by the PDU: one function-code octet and its data.  There is
no start byte — framing integrity rests on the protocol-id field
being zero and the length being plausible, which is exactly what
:func:`scan_mbap` checks (the passive-measurement analogue of the
IEC 104 0x68 scan).

Tokens are protocol-generic strings the existing Markov/whitelist
models consume unchanged: ``F<fc>`` for a normal PDU and ``X<fc>``
for an exception response (function code with the 0x80 error bit
set).  The token says nothing about direction — like the IEC 104
alphabet, request and response of the same function share a token,
and the models learn the per-connection transition structure.

The parser/decoder shapes mirror :mod:`repro.iec104.codec` exactly
(``parse_frame`` / ``parse_stream`` / ``feed``; results with ``raw``,
``apdu``, ``error``, ``ok``, ``compliant``) so the stream pipeline
drives either through one code path.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any

from .base import ProtocolSpec, register_protocol

#: The Modbus/TCP well-known port.
MODBUS_PORT = 502

#: MBAP header octets (transaction, protocol, length, unit).
MBAP_HEADER = 7

#: Largest legal MBAP length field: unit id + function code + 252
#: data octets (the Modbus spec's 253-octet PDU ceiling).
MAX_ADU_LENGTH = 254

#: Function codes with application behaviour in the simulator; any
#: 1..127 code still *decodes* (tolerance), these just name the
#: common ones.
READ_HOLDING_REGISTERS = 3
READ_INPUT_REGISTERS = 4
WRITE_SINGLE_REGISTER = 6
WRITE_MULTIPLE_REGISTERS = 16

_MBAP = struct.Struct(">HHHB")


class ModbusError(Exception):
    """A Modbus ADU failed to decode."""


@dataclass(frozen=True, slots=True)
class ModbusAdu:
    """One decoded Modbus/TCP ADU (header + PDU).

    ``function`` is the raw function-code octet — bit 0x80 set marks
    an exception response.  Frozen and hashable, like the IEC 104
    frame classes, so results can be shared and memoized safely.
    """

    transaction: int
    unit: int
    function: int
    data: bytes

    @property
    def is_exception(self) -> bool:
        return bool(self.function & 0x80)

    @property
    def token(self) -> str:
        """Protocol-generic token (``F<fc>`` / ``X<fc>``)."""
        function = self.function
        if function & 0x80:
            return f"X{function & 0x7F}"
        return f"F{function}"

    def encode(self) -> bytes:
        """The wire form (MBAP header + PDU)."""
        return _MBAP.pack(self.transaction, 0, len(self.data) + 2,
                          self.unit) + bytes((self.function,)) \
            + self.data


def scan_mbap(buf: bytes,
              offset: int = 0) -> tuple[list[tuple[int, int]], int,
                                        str | None]:
    """Scan complete MBAP frames; ``(spans, stop, desync_reason)``.

    ``spans`` is ``(start, total)`` per complete ADU; ``stop`` is
    where scanning ended.  ``desync_reason`` is ``None`` when the
    scan stopped cleanly (buffer exhausted or a trailing partial
    frame to buffer) and a message when the octets at ``stop`` cannot
    begin a valid MBAP header (framing lost).
    """
    spans: list[tuple[int, int]] = []
    size = len(buf)
    while True:
        remaining = size - offset
        if remaining == 0:
            return spans, offset, None
        # Header plausibility over however many octets are present:
        # protocol id must be zero, the length field in range.
        if remaining >= 3 and (buf[offset + 2] != 0
                               or (remaining >= 4
                                   and buf[offset + 3] != 0)):
            return spans, offset, "MBAP protocol id is not zero"
        if remaining >= 6:
            length = (buf[offset + 4] << 8) | buf[offset + 5]
            if not 2 <= length <= MAX_ADU_LENGTH:
                return (spans, offset,
                        f"implausible MBAP length {length}")
            total = 6 + length
            if remaining < total:
                return spans, offset, None  # partial frame: buffer it
            spans.append((offset, total))
            offset += total
            continue
        return spans, offset, None  # partial header: buffer it


@dataclass(frozen=True, slots=True)
class ModbusParseResult:
    """Outcome of parsing one ADU (mirrors the IEC ParseResult)."""

    raw: bytes
    apdu: ModbusAdu | None = None
    error: ModbusError | None = None

    @property
    def ok(self) -> bool:
        return self.apdu is not None

    @property
    def compliant(self) -> bool:
        """Modbus/TCP has no legacy profile zoo: decoded ⇒ compliant."""
        return self.apdu is not None


class ModbusParser:
    """Tolerant Modbus/TCP parser (stateless per frame).

    ``link_key`` is accepted for interface parity with the IEC 104
    :class:`~repro.iec104.codec.TolerantParser` — Modbus has no
    per-link field-width profiles to infer, so it is unused.
    """

    def parse_frame(self, raw: bytes,
                    link_key: Any = None) -> ModbusParseResult:
        """Parse one complete ADU (header + PDU)."""
        if len(raw) < MBAP_HEADER + 1:
            return ModbusParseResult(raw=raw, error=ModbusError(
                f"ADU truncated at {len(raw)} octets"))
        transaction, protocol, length, unit = _MBAP.unpack_from(raw)
        if protocol != 0:
            return ModbusParseResult(raw=raw, error=ModbusError(
                f"MBAP protocol id {protocol} is not zero"))
        if len(raw) != 6 + length:
            return ModbusParseResult(raw=raw, error=ModbusError(
                f"MBAP length {length} disagrees with "
                f"{len(raw)}-octet ADU"))
        function = raw[MBAP_HEADER]
        if not 1 <= function <= 255:
            return ModbusParseResult(raw=raw, error=ModbusError(
                f"invalid function code {function}"))
        return ModbusParseResult(raw=raw, apdu=ModbusAdu(
            transaction=transaction, unit=unit, function=function,
            data=raw[MBAP_HEADER + 1:]))

    def parse_stream(self, payload: bytes,
                     link_key: Any = None) -> list[ModbusParseResult]:
        """Parse every complete ADU found in ``payload``.

        Like the IEC 104 parsers, a trailing desynchronized region is
        reported as one error result; a trailing *partial* frame is
        silently left for the caller (per-packet decode treats each
        payload as complete, so a partial tail there is simply a
        truncated capture)."""
        buf = payload if isinstance(payload, bytes) else bytes(payload)
        spans, stop, reason = scan_mbap(buf)
        results = [self.parse_frame(buf[start:start + total],
                                    link_key)
                   for start, total in spans]
        if reason is not None:
            results.append(ModbusParseResult(
                raw=buf[stop:],
                error=ModbusError(
                    f"stream desynchronized: {reason}")))
        return results


class ModbusStreamDecoder:
    """Incremental decoder for one direction of one TCP connection.

    Buffers partial ADUs across segment boundaries (the live-socket
    path).  On lost framing there is no start byte to hunt for, so
    resynchronization advances one octet at a time until a plausible
    MBAP header appears; skipped octets are counted in
    ``desync_bytes`` — same contract as the IEC 104
    :class:`~repro.iec104.codec.StreamDecoder`.
    """

    def __init__(self, parser: ModbusParser | None = None,
                 link_key: Any = None):
        self.parser = parser if parser is not None else ModbusParser()
        self.link_key = link_key
        self._buffer = b""
        self.desync_bytes = 0

    def feed(self, segment: bytes) -> list[ModbusParseResult]:
        """Add a TCP segment's payload; return completed ADUs."""
        if not isinstance(segment, bytes):
            segment = bytes(segment)
        buf = self._buffer + segment if self._buffer else segment
        parse = self.parser.parse_frame
        link_key = self.link_key
        results: list[ModbusParseResult] = []
        size = len(buf)
        offset = 0
        while True:
            spans, stop, reason = scan_mbap(buf, offset)
            results.extend(parse(buf[start:start + total], link_key)
                           for start, total in spans)
            if reason is not None and stop < size:
                # Lost framing: skip one octet and rescan.
                self.desync_bytes += 1
                offset = stop + 1
                continue
            self._buffer = buf[stop:]
            break
        return results

    @property
    def pending(self) -> int:
        """Buffered octets awaiting frame completion."""
        return len(self._buffer)


def _new_parser() -> ModbusParser:
    return ModbusParser()


def _new_decoder(parser: Any, link_key: Any) -> ModbusStreamDecoder:
    return ModbusStreamDecoder(parser=parser, link_key=link_key)


#: The Modbus/TCP spec.
MODBUS_SPEC = register_protocol(ProtocolSpec(
    name="modbus",
    title="Modbus/TCP",
    ports=(MODBUS_PORT,),
    tokens=("F<fc>", "X<fc>"),
    _parser_factory=_new_parser,
    _decoder_factory=_new_decoder,
))
