"""The protocol registry: one frozen spec per supported protocol.

The stream engine used to hard-code IEC 104 at three seams — the port
filter in ``StreamPipeline._reassemble``, the tolerant parser it
constructs, and the per-link ``StreamDecoder`` the live-tap path
builds.  :class:`ProtocolSpec` captures exactly those seams (plus the
wire metadata consumers need: default ports, the token alphabet the
Markov/whitelist models see, display hints) as a frozen value, so a
pipeline binds *one* protocol and a fleet mixes them per link.

A spec's behavioural halves are callables in underscore-prefixed
fields (:meth:`new_parser` / :meth:`new_stream_decoder`); the public
fields are pure JSON-able metadata and :meth:`to_json` is their wire
form — the schema-drift lint certifies it against the ``Protocol``
column of the docs/streaming.md schema table.

The registry is module-level and populated at import time by
:mod:`repro.protocols.iec104` and :mod:`repro.protocols.modbus`
(importing :mod:`repro.protocols` loads both).  :func:`get_protocol`
is the one lookup every layer uses; its unknown-name error lists the
registered specs, which is also the CLI's ``--protocol`` error.

Parsers and decoders are duck-typed, mirroring the IEC 104 shapes:

* a *parser* has ``parse_frame(raw, link_key=None)`` and
  ``parse_stream(payload, link_key=None)`` returning result objects
  with ``raw`` / ``apdu`` / ``error`` / ``ok`` / ``compliant``;
* a *stream decoder* has ``feed(segment) -> list[result]`` and a
  ``pending`` octet count (the live-socket path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

#: Builds a fresh (stateful) parser for one pipeline.
ParserFactory = Callable[[], Any]

#: Builds a per-link incremental decoder: ``(parser, link_key)``.
DecoderFactory = Callable[[Any, Any], Any]


@dataclass(frozen=True)
class ProtocolSpec:
    """One wire protocol as the stream engine sees it.

    ``name`` is the registry key (``"iec104"``, ``"modbus"``);
    ``title`` the human display name; ``ports`` the TCP ports whose
    traffic belongs to the protocol (the pipeline filter and the
    demux auto-detect both use them); ``tokens`` describes the token
    alphabet events carry into the Markov/whitelist models (display
    hints, e.g. ``"I<typeID>"`` or ``"F<fc>"``).
    """

    name: str
    title: str
    ports: tuple[int, ...]
    tokens: tuple[str, ...]
    _parser_factory: ParserFactory = field(repr=False)
    _decoder_factory: DecoderFactory = field(repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a protocol spec needs a name")
        if not self.ports:
            raise ValueError(
                f"protocol {self.name!r} needs at least one port")

    # -- the behavioural seams ---------------------------------------

    def new_parser(self) -> Any:
        """A fresh stateful parser (one per pipeline)."""
        return self._parser_factory()

    def new_stream_decoder(self, parser: Any, link_key: Any) -> Any:
        """A per-link incremental decoder over ``parser``."""
        return self._decoder_factory(parser, link_key)

    def matches(self, src_port: int, dst_port: int) -> bool:
        """True when either endpoint port belongs to the protocol."""
        ports = self.ports
        return src_port in ports or dst_port in ports

    # -- the wire form ------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """The JSON-able metadata form (no callables)."""
        return {
            "name": self.name,
            "title": self.title,
            "ports": list(self.ports),
            "tokens": list(self.tokens),
        }


# Populated only at import time by the package ``__init__`` (each
# bundled protocol module registers its spec on import), so every
# shard worker rebuilds the identical registry when it imports this
# package — there is no cross-process divergence to guard against.
_REGISTRY: dict[str, ProtocolSpec] = {}  # staticcheck: ignore[shard-safety] -- import-time-only registration; identical in every worker


def register_protocol(spec: ProtocolSpec) -> ProtocolSpec:
    """Register ``spec`` under its name (idempotent re-registration
    of the identical spec is allowed; a conflicting one is an error).
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing != spec:
        raise ValueError(
            f"protocol {spec.name!r} already registered "
            "with a different spec")
    _REGISTRY[spec.name] = spec
    return spec


def registered_names() -> tuple[str, ...]:
    """The registered protocol names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_protocol(name: str) -> ProtocolSpec:
    """Look up a spec by name; unknown names list the registry."""
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ValueError(
            f"unknown protocol {name!r} (registered: {known})")
    return spec


def all_protocols() -> tuple[ProtocolSpec, ...]:
    """Every registered spec, sorted by name."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def detect_protocol(src_port: int,
                    dst_port: int) -> ProtocolSpec | None:
    """The registered spec owning either port, or ``None``.

    This is the demux's port-based auto-detect: the first routed
    packet of a link decides the link's protocol hint.  Specs are
    consulted in name order, so the answer is deterministic even if
    two specs ever claimed the same port.
    """
    for name in sorted(_REGISTRY):
        spec = _REGISTRY[name]
        if spec.matches(src_port, dst_port):
            return spec
    return None
