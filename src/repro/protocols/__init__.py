"""repro.protocols — protocol specs for heterogeneous fleets.

The registry behind the stream engine's protocol abstraction: each
supported wire protocol is one frozen
:class:`~repro.protocols.base.ProtocolSpec` (name, default ports,
parser/decoder factories, token alphabet, display hints), looked up
by name through :func:`~repro.protocols.base.get_protocol`.

Importing this package registers the built-in specs:
``iec104`` (the existing stack, adapted unchanged) and ``modbus``
(Modbus/TCP end-to-end — MBAP framing, function-code PDU codec).
"""

from .base import (ProtocolSpec, all_protocols, detect_protocol,
                   get_protocol, register_protocol, registered_names)
from .iec104 import IEC104_SPEC
from .modbus import (MODBUS_PORT, ModbusAdu, ModbusError,
                     ModbusParseResult, ModbusParser,
                     ModbusStreamDecoder, MODBUS_SPEC, scan_mbap)

__all__ = [
    "IEC104_SPEC", "MODBUS_PORT", "MODBUS_SPEC", "ModbusAdu",
    "ModbusError", "ModbusParseResult", "ModbusParser",
    "ModbusStreamDecoder", "ProtocolSpec", "all_protocols",
    "detect_protocol", "get_protocol", "register_protocol",
    "registered_names", "scan_mbap",
]
