"""IEC 60870-5-104 protocol constants.

This module is the machine-readable form of Table 5 of the paper (the 54
ASDU type identifications supported by IEC 104), the cause-of-transmission
codes, the U-format function bits, and the four protocol timers T0-T3
described in Section 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: TCP port registered for IEC 60870-5-104.
IEC104_PORT = 2404

#: APCI start octet.
START_BYTE = 0x68

#: Maximum value of the APCI length octet (APDU minus start/length octets).
MAX_APDU_LENGTH = 253

#: Number of control-field octets in the APCI.
CONTROL_FIELD_LENGTH = 4

#: Maximum length of the full APDU on the wire (start + length + 253).
MAX_FRAME_LENGTH = 2 + MAX_APDU_LENGTH


class APDUFormat(enum.Enum):
    """The three APDU formats of IEC 104 (Section 4 of the paper)."""

    I = "I"  # noqa: E741 - the standard's own name
    S = "S"
    U = "U"


class UFunction(enum.IntEnum):
    """U-format connection-control function bits (APCI octet 3).

    The numeric values are the function bits themselves, which is why the
    paper tokenizes U APDUs as U1..U32 (Table 4).
    """

    STARTDT_ACT = 0x04
    STARTDT_CON = 0x08
    STOPDT_ACT = 0x10
    STOPDT_CON = 0x20
    TESTFR_ACT = 0x40
    TESTFR_CON = 0x80

    @property
    def token(self) -> str:
        """Paper Table 4 token, e.g. ``U16`` for TESTFR act."""
        return _U_TOKENS[self]

    @property
    def is_act(self) -> bool:
        return self in (UFunction.STARTDT_ACT, UFunction.STOPDT_ACT,
                        UFunction.TESTFR_ACT)

    @property
    def confirmation(self) -> "UFunction":
        """The confirmation function answering this activation."""
        if not self.is_act:
            raise ValueError(f"{self.name} is not an activation")
        return UFunction(self.value << 1)


class TypeID(enum.IntEnum):
    """The 54 ASDU type identifications supported by IEC 104 (Table 5)."""

    # Monitor direction, process information
    M_SP_NA_1 = 1     # Single-point information
    M_DP_NA_1 = 3     # Double-point information
    M_ST_NA_1 = 5     # Step position information
    M_BO_NA_1 = 7     # Bitstring of 32 bits
    M_ME_NA_1 = 9     # Measured value, normalized value
    M_ME_NB_1 = 11    # Measured value, scaled value
    M_ME_NC_1 = 13    # Measured value, short floating point number
    M_IT_NA_1 = 15    # Integrated totals
    M_PS_NA_1 = 20    # Packed single-point information w/ status change
    M_ME_ND_1 = 21    # Measured value, normalized, w/o quality descriptor
    # Monitor direction with CP56Time2a time tag
    M_SP_TB_1 = 30
    M_DP_TB_1 = 31
    M_ST_TB_1 = 32
    M_BO_TB_1 = 33
    M_ME_TD_1 = 34
    M_ME_TE_1 = 35
    M_ME_TF_1 = 36    # Measured value, short float w/ time tag (I36)
    M_IT_TB_1 = 37
    M_EP_TD_1 = 38
    M_EP_TE_1 = 39
    M_EP_TF_1 = 40
    # Control direction, process information
    C_SC_NA_1 = 45    # Single command
    C_DC_NA_1 = 46    # Double command
    C_RC_NA_1 = 47    # Regulating step command
    C_SE_NA_1 = 48    # Set point command, normalized value
    C_SE_NB_1 = 49    # Set point command, scaled value
    C_SE_NC_1 = 50    # Set point command, short floating point (AGC)
    C_BO_NA_1 = 51    # Bitstring of 32 bits
    # Control direction with CP56Time2a time tag
    C_SC_TA_1 = 58
    C_DC_TA_1 = 59
    C_RC_TA_1 = 60
    C_SE_TA_1 = 61
    C_SE_TB_1 = 62
    C_SE_TC_1 = 63
    C_BO_TA_1 = 64
    # System information
    M_EI_NA_1 = 70    # End of initialization
    C_IC_NA_1 = 100   # Interrogation command (I100)
    C_CI_NA_1 = 101   # Counter interrogation command
    C_RD_NA_1 = 102   # Read command
    C_CS_NA_1 = 103   # Clock synchronization command
    C_RP_NA_1 = 105   # Reset process command
    C_TS_TA_1 = 107   # Test command with time tag CP56Time2a
    # Parameter in control direction
    P_ME_NA_1 = 110
    P_ME_NB_1 = 111
    P_ME_NC_1 = 112
    P_AC_NA_1 = 113
    # File transfer
    F_FR_NA_1 = 120
    F_SR_NA_1 = 121
    F_SC_NA_1 = 122
    F_LS_NA_1 = 123
    F_AF_NA_1 = 124
    F_SG_NA_1 = 125
    F_DR_TA_1 = 126
    F_SC_NB_1 = 127

    @property
    def token(self) -> str:
        """Paper Table 4 token for I-format APDUs, e.g. ``I36``."""
        return _TYPE_TOKENS[self]


#: Precomputed token strings: the token properties sit on the per-event
#: analyzer hot path, and enum members are singletons, so one dict probe
#: (identity hash) replaces an f-string build per call.
_U_TOKENS = {member: f"U{member.value >> 2}" for member in UFunction}
_TYPE_TOKENS = {member: f"I{member.value}" for member in TypeID}


#: Human-readable descriptions (paper Table 5, verbatim).
TYPE_ID_DESCRIPTIONS: dict[TypeID, str] = {
    TypeID.M_SP_NA_1: "Single-point information",
    TypeID.M_DP_NA_1: "Double-point information",
    TypeID.M_ST_NA_1: "Step position information",
    TypeID.M_BO_NA_1: "Bitstring of 32 bits",
    TypeID.M_ME_NA_1: "Measured value, normalized value",
    TypeID.M_ME_NB_1: "Measured value, scaled value",
    TypeID.M_ME_NC_1: "Measured value, short floating point number",
    TypeID.M_IT_NA_1: "Integrated totals",
    TypeID.M_PS_NA_1:
        "Packed single-point information with status change detection",
    TypeID.M_ME_ND_1:
        "Measured value, normalized value without quality descriptor",
    TypeID.M_SP_TB_1: "Single-point information with time tag CP56Time2a",
    TypeID.M_DP_TB_1: "Double-point information with time tag CP56Time2a",
    TypeID.M_ST_TB_1: "Step position information with time tag CP56Time2a",
    TypeID.M_BO_TB_1: "Bitstring of 32 bit with time tag CP56Time2a",
    TypeID.M_ME_TD_1:
        "Measured value, normalized value with time tag CP56Time2a",
    TypeID.M_ME_TE_1: "Measured value, scaled value with time tag CP56Time2a",
    TypeID.M_ME_TF_1:
        "Measured value, short floating point number with time tag CP56Time2a",
    TypeID.M_IT_TB_1: "Integrated totals with time tag CP56Time2a",
    TypeID.M_EP_TD_1:
        "Event of protection equipment with time tag CP56Time2a",
    TypeID.M_EP_TE_1:
        "Packed start events of protection equipment with time tag CP56Time2a",
    TypeID.M_EP_TF_1:
        "Packed output circuit information of protection equipment "
        "with time tag CP56Time2a",
    TypeID.C_SC_NA_1: "Single command",
    TypeID.C_DC_NA_1: "Double command",
    TypeID.C_RC_NA_1: "Regulating step command",
    TypeID.C_SE_NA_1: "Set point command, normalized value",
    TypeID.C_SE_NB_1: "Set point command, scaled value",
    TypeID.C_SE_NC_1: "Set point command, short floating point number",
    TypeID.C_BO_NA_1: "Bitstring of 32 bits",
    TypeID.C_SC_TA_1: "Single command with time tag CP56Time2a",
    TypeID.C_DC_TA_1: "Double command with time tag CP56Time2a",
    TypeID.C_RC_TA_1: "Regulating step command with time tag CP56Time2a",
    TypeID.C_SE_TA_1:
        "Set point command, normalized value with time tag CP56Time2a",
    TypeID.C_SE_TB_1:
        "Set point command, scaled value with time tag CP56Time2a",
    TypeID.C_SE_TC_1:
        "Set point command, short floating point with time tag CP56Time2a",
    TypeID.C_BO_TA_1: "Bitstring of 32 bits with time tag CP56Time2a",
    TypeID.M_EI_NA_1: "End of initialization",
    TypeID.C_IC_NA_1: "Interrogation command",
    TypeID.C_CI_NA_1: "Counter interrogation command",
    TypeID.C_RD_NA_1: "Read command",
    TypeID.C_CS_NA_1: "Clock synchronization command",
    TypeID.C_RP_NA_1: "Reset process command",
    TypeID.C_TS_TA_1: "Test command with time tag CP56Time2a",
    TypeID.P_ME_NA_1: "Parameter of measured value, normalized value",
    TypeID.P_ME_NB_1: "Parameter of measured value, scaled value",
    TypeID.P_ME_NC_1:
        "Parameter of measured value, short floating-point number",
    TypeID.P_AC_NA_1: "Parameter activation",
    TypeID.F_FR_NA_1: "File ready",
    TypeID.F_SR_NA_1: "Section ready",
    TypeID.F_SC_NA_1: "Call directory, select file, call file, call section",
    TypeID.F_LS_NA_1: "Last section, last segment",
    TypeID.F_AF_NA_1: "Ack file, ack section",
    TypeID.F_SG_NA_1: "Segment",
    TypeID.F_DR_TA_1: "Directory",
    TypeID.F_SC_NB_1: "Query Log, Request archive file",
}

#: The 13 typeIDs actually observed in the paper's datasets (Table 7).
OBSERVED_TYPE_IDS: tuple[TypeID, ...] = (
    TypeID.M_ME_TF_1,   # I36, 65.1% of ASDUs
    TypeID.M_ME_NC_1,   # I13, 31.7%
    TypeID.M_ME_NA_1,   # I9
    TypeID.C_SE_NC_1,   # I50 (AGC set points)
    TypeID.M_DP_NA_1,   # I3
    TypeID.M_ST_NA_1,   # I5
    TypeID.C_IC_NA_1,   # I100 (interrogation)
    TypeID.C_CS_NA_1,   # I103
    TypeID.M_SP_TB_1,   # I30
    TypeID.M_EI_NA_1,   # I70
    TypeID.M_DP_TB_1,   # I31
    TypeID.M_SP_NA_1,   # I1
    TypeID.M_BO_NA_1,   # I7
)

#: Paper Table 8: physical symbols carried by each *observed* typeID.
#: ``"-"`` mirrors the paper's dash for typeIDs whose values have no
#: assignable scalar meaning (bitstrings, step positions, clock sync).
#: The staticcheck constants-consistency rule keeps this table and
#: :data:`OBSERVED_TYPE_IDS` cross-consistent in both directions.
TYPE_ID_SYMBOLS: dict[TypeID, tuple[str, ...]] = {
    TypeID.M_ME_TF_1: ("Freq", "I", "P", "Q", "U"),
    TypeID.M_ME_NC_1: ("Freq", "I", "P", "Q", "U"),
    TypeID.M_ME_NA_1: ("P",),
    TypeID.C_SE_NC_1: ("AGC-SP",),
    TypeID.M_DP_NA_1: ("Status",),
    TypeID.M_ST_NA_1: ("-",),
    TypeID.C_IC_NA_1: ("Inter(global)",),
    TypeID.C_CS_NA_1: ("-",),
    TypeID.M_SP_TB_1: ("Status",),
    TypeID.M_EI_NA_1: ("-",),
    TypeID.M_DP_TB_1: ("Status",),
    TypeID.M_SP_NA_1: ("Status",),
    TypeID.M_BO_NA_1: ("-",),
}


class Cause(enum.IntEnum):
    """Cause of transmission (COT) codes."""

    PERIODIC = 1
    BACKGROUND = 2
    SPONTANEOUS = 3
    INITIALIZED = 4
    REQUEST = 5
    ACTIVATION = 6
    ACTIVATION_CON = 7
    DEACTIVATION = 8
    DEACTIVATION_CON = 9
    ACTIVATION_TERMINATION = 10
    RETURN_INFO_REMOTE = 11
    RETURN_INFO_LOCAL = 12
    FILE_TRANSFER = 13
    INTERROGATED_BY_STATION = 20
    INTERROGATED_BY_GROUP_1 = 21
    INTERROGATED_BY_GROUP_2 = 22
    INTERROGATED_BY_GROUP_3 = 23
    INTERROGATED_BY_GROUP_4 = 24
    INTERROGATED_BY_GROUP_5 = 25
    INTERROGATED_BY_GROUP_6 = 26
    INTERROGATED_BY_GROUP_7 = 27
    INTERROGATED_BY_GROUP_8 = 28
    INTERROGATED_BY_GROUP_9 = 29
    INTERROGATED_BY_GROUP_10 = 30
    INTERROGATED_BY_GROUP_11 = 31
    INTERROGATED_BY_GROUP_12 = 32
    INTERROGATED_BY_GROUP_13 = 33
    INTERROGATED_BY_GROUP_14 = 34
    INTERROGATED_BY_GROUP_15 = 35
    INTERROGATED_BY_GROUP_16 = 36
    COUNTER_INTERROGATION_GENERAL = 37
    COUNTER_INTERROGATION_GROUP_1 = 38
    COUNTER_INTERROGATION_GROUP_2 = 39
    COUNTER_INTERROGATION_GROUP_3 = 40
    COUNTER_INTERROGATION_GROUP_4 = 41
    UNKNOWN_TYPE_ID = 44
    UNKNOWN_CAUSE = 45
    UNKNOWN_COMMON_ADDRESS = 46
    UNKNOWN_IOA = 47


@dataclass(frozen=True)
class ProtocolTimers:
    """The four IEC 104 timers (Section 4 of the paper).

    All values in seconds; defaults are the standard's defaults. The paper
    attributes the cluster-0 outlier (C2-O30) to a misconfigured ``t3``.
    """

    t0: float = 30.0  # connection establishment timeout
    t1: float = 15.0  # send/test APDU timeout (triggers close/switchover)
    t2: float = 10.0  # acknowledgement timeout (triggers S-format), t2 < t1
    t3: float = 20.0  # idle timeout (triggers TESTFR keep-alive)

    def __post_init__(self) -> None:
        if self.t2 >= self.t1:
            raise ValueError(f"T2 ({self.t2}) must be < T1 ({self.t1})")
        if min(self.t0, self.t1, self.t2, self.t3) <= 0:
            raise ValueError("all timers must be positive")


#: Default maximum number of unacknowledged I-format APDUs (send window).
DEFAULT_K = 12

#: Default number of I-format APDUs received before an S-format ack.
DEFAULT_W = 8
