"""Run the IEC 104 endpoints over real sockets.

:class:`SocketTransport` adapts any connected stream socket (TCP or a
Unix ``socketpair``) to the endpoint :class:`~repro.iec104.endpoint.
Transport` interface. Endpoints stay sans-io: inbound bytes are
delivered when the owner calls :meth:`pump` (select-based, bounded
wait), so applications control their own event loop.

:func:`serve_outstation` and :func:`connect_master` wrap the usual
listen/connect boilerplate for quick interoperability tests against
other IEC 104 implementations.
"""

from __future__ import annotations

import select
import socket
from typing import Callable

from .endpoint import MasterEndpoint, OutstationEndpoint, Transport
from .constants import IEC104_PORT


class SocketTransport(Transport):
    """Adapter from a connected stream socket to the Transport API."""

    def __init__(self, sock: socket.socket,
                 receive_size: int = 4096):
        if receive_size <= 0:
            raise ValueError("receive_size must be positive")
        self._sock = sock
        self._receive_size = receive_size
        self.receiver: Callable[[bytes], None] | None = None
        self.closed = False
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, data: bytes) -> None:
        if self.closed:
            raise OSError("transport closed")
        self._sock.sendall(data)
        self.bytes_sent += len(data)

    def pump(self, timeout: float = 0.0) -> int:
        """Read available bytes (waiting at most ``timeout`` seconds)
        and hand them to the receiver; return the byte count.

        Returns 0 on timeout; raises ``ConnectionError`` when the peer
        closed the socket."""
        if self.closed:
            return 0
        readable, _, _ = select.select([self._sock], [], [], timeout)
        if not readable:
            return 0
        data = self._sock.recv(self._receive_size)
        if not data:
            self.closed = True
            raise ConnectionError("peer closed the connection")
        self.bytes_received += len(data)
        if self.receiver is not None:
            self.receiver(data)
        return len(data)

    def pump_until_idle(self, timeout: float = 0.05,
                        max_rounds: int = 1000) -> int:
        """Pump until no data arrives within ``timeout``."""
        total = 0
        for _ in range(max_rounds):
            moved = self.pump(timeout)
            if not moved:
                return total
            total += moved
        return total

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()


def socketpair_endpoints(**kwargs) -> tuple[MasterEndpoint,
                                            OutstationEndpoint,
                                            Callable[[], int]]:
    """A master/outstation pair over a real OS socketpair.

    Returns ``(master, outstation, pump)`` like
    :func:`repro.iec104.endpoint.connect_pair`, but with the bytes
    crossing an actual kernel socket."""
    left, right = socket.socketpair()
    master_transport = SocketTransport(left)
    outstation_transport = SocketTransport(right)
    master = MasterEndpoint(master_transport, **kwargs)
    outstation = OutstationEndpoint(outstation_transport)

    def pump() -> int:
        total = 0
        while True:
            moved = 0
            try:
                moved += master_transport.pump(0.02)
            except ConnectionError:
                pass
            try:
                moved += outstation_transport.pump(0.02)
            except ConnectionError:
                pass
            if not moved:
                return total
            total += moved

    return master, outstation, pump


def serve_outstation(outstation_factory: Callable[[SocketTransport],
                                                  OutstationEndpoint],
                     host: str = "127.0.0.1",
                     port: int = IEC104_PORT,
                     ready: Callable[[int], None] | None = None
                     ) -> OutstationEndpoint:
    """Accept one master connection and return the live outstation.

    ``ready`` receives the bound port before accepting (pass ``0`` as
    ``port`` for an ephemeral one)."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(1)
    if ready is not None:
        ready(listener.getsockname()[1])
    connection, _ = listener.accept()
    listener.close()
    return outstation_factory(SocketTransport(connection))


def connect_master(host: str = "127.0.0.1", port: int = IEC104_PORT,
                   **kwargs) -> MasterEndpoint:
    """Connect to an outstation and return the live master."""
    sock = socket.create_connection((host, port))
    return MasterEndpoint(SocketTransport(sock), **kwargs)
