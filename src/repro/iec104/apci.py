"""APCI framing: the three APDU formats of IEC 104.

The Application Protocol Control Information is 6 octets: the 0x68 start
byte, a length octet, and a 4-octet control field whose two low bits of
the first octet select the format (Fig. 3 of the paper):

* I-format (bit0 = 0): carries an ASDU plus 15-bit send/receive
  sequence numbers.
* S-format (bits = 01): carries only a receive sequence number (ack).
* U-format (bits = 11): carries one of six connection-control function
  bits (STARTDT/STOPDT/TESTFR act/con).
"""

from __future__ import annotations

from dataclasses import dataclass

from .asdu import ASDU
from .constants import (CONTROL_FIELD_LENGTH, MAX_APDU_LENGTH, START_BYTE,
                        APDUFormat, UFunction)
from .errors import (ControlFieldError, FramingError, MalformedASDUError,
                     TruncatedError)
from .profiles import STANDARD_PROFILE, LinkProfile

#: Modulus of the 15-bit sequence-number space.
SEQ_MODULO = 1 << 15


def _check_seq(name: str, value: int) -> None:
    if not 0 <= value < SEQ_MODULO:
        raise ValueError(f"{name} sequence number {value} out of 15-bit "
                         "range")


@dataclass(frozen=True)
class IFrame:
    """I-format APDU: numbered information transfer."""

    asdu: ASDU
    send_seq: int = 0
    recv_seq: int = 0

    def __post_init__(self) -> None:
        _check_seq("send", self.send_seq)
        _check_seq("receive", self.recv_seq)

    format = APDUFormat.I

    @property
    def token(self) -> str:
        """Paper Table 4 token (e.g. ``I36``)."""
        return self.asdu.token

    def control_field(self) -> bytes:
        return bytes(((self.send_seq << 1) & 0xFF,
                      (self.send_seq >> 7) & 0xFF,
                      (self.recv_seq << 1) & 0xFF,
                      (self.recv_seq >> 7) & 0xFF))

    def encode(self, profile: LinkProfile = STANDARD_PROFILE) -> bytes:
        body = self.asdu.encode(profile)
        length = CONTROL_FIELD_LENGTH + len(body)
        if length > MAX_APDU_LENGTH:
            raise FramingError(
                f"APDU length {length} exceeds {MAX_APDU_LENGTH}")
        return bytes((START_BYTE, length)) + self.control_field() + body


@dataclass(frozen=True)
class SFrame:
    """S-format APDU: numbered supervisory function (acknowledgement)."""

    recv_seq: int = 0

    def __post_init__(self) -> None:
        _check_seq("receive", self.recv_seq)

    format = APDUFormat.S
    token = "S"

    def encode(self, profile: LinkProfile = STANDARD_PROFILE) -> bytes:
        return bytes((START_BYTE, CONTROL_FIELD_LENGTH, 0x01, 0x00,
                      (self.recv_seq << 1) & 0xFF,
                      (self.recv_seq >> 7) & 0xFF))


@dataclass(frozen=True)
class UFrame:
    """U-format APDU: unnumbered control function."""

    function: UFunction

    format = APDUFormat.U

    @property
    def token(self) -> str:
        """Paper Table 4 token (e.g. ``U16`` for TESTFR act)."""
        return self.function.token

    def encode(self, profile: LinkProfile = STANDARD_PROFILE) -> bytes:
        return bytes((START_BYTE, CONTROL_FIELD_LENGTH,
                      0x03 | int(self.function), 0x00, 0x00, 0x00))


APDU = IFrame | SFrame | UFrame

#: Ready-made U-frames for the six control functions.
STARTDT_ACT = UFrame(UFunction.STARTDT_ACT)
STARTDT_CON = UFrame(UFunction.STARTDT_CON)
STOPDT_ACT = UFrame(UFunction.STOPDT_ACT)
STOPDT_CON = UFrame(UFunction.STOPDT_CON)
TESTFR_ACT = UFrame(UFunction.TESTFR_ACT)
TESTFR_CON = UFrame(UFunction.TESTFR_CON)


def decode_apdu(data: bytes | memoryview, offset: int = 0,
                profile: LinkProfile = STANDARD_PROFILE
                ) -> tuple[APDU, int]:
    """Decode one APDU starting at ``offset``.

    Returns ``(apdu, total_octets_consumed)``. Raises
    :class:`TruncatedError` when more bytes are needed (the stream
    splitter uses this to wait for the rest of a TCP segment),
    :class:`FramingError`/:class:`ControlFieldError`/
    :class:`MalformedASDUError` on invalid content.
    """
    # Hot path: operate on the caller's bytes in place (no per-frame
    # buffer copy); a memoryview argument is materialized once.
    buf = data if isinstance(data, bytes) else bytes(data)
    available = len(buf) - offset
    if available < 2:
        raise TruncatedError("need APCI start+length", needed=2,
                             available=max(available, 0))
    if buf[offset] != START_BYTE:
        raise FramingError(
            f"bad start byte 0x{buf[offset]:02x} (expected 0x68)",
            offset=offset)
    length = buf[offset + 1]
    if length < CONTROL_FIELD_LENGTH:
        raise FramingError(f"APCI length {length} < control field size",
                           offset=offset)
    total = 2 + length
    if available < total:
        raise TruncatedError("APDU extends past buffer", needed=total,
                             available=available)

    control = buf[offset + 2:offset + 2 + CONTROL_FIELD_LENGTH]
    body = buf[offset + 2 + CONTROL_FIELD_LENGTH:offset + total]

    if control[0] & 0x01 == 0:  # I-format
        if not body:
            raise MalformedASDUError("I-format APDU with empty ASDU")
        send_seq = (control[0] >> 1) | (control[1] << 7)
        recv_seq = (control[2] >> 1) | (control[3] << 7)
        asdu = ASDU.decode(body, profile)
        return IFrame(asdu=asdu, send_seq=send_seq, recv_seq=recv_seq), total

    if control[0] & 0x03 == 0x01:  # S-format
        if length != CONTROL_FIELD_LENGTH:
            raise ControlFieldError("S-format APDU must carry no ASDU")
        if control[0] & 0xFC or control[1]:
            raise ControlFieldError("reserved S-format bits set")
        recv_seq = (control[2] >> 1) | (control[3] << 7)
        return SFrame(recv_seq=recv_seq), total

    # U-format (bits = 11)
    if length != CONTROL_FIELD_LENGTH:
        raise ControlFieldError("U-format APDU must carry no ASDU")
    function_bits = control[0] & 0xFC
    try:
        function = UFunction(function_bits)
    except ValueError:
        raise ControlFieldError(
            f"invalid U-format function bits 0x{function_bits:02x}"
        ) from None
    if control[1] or control[2] or control[3]:
        raise ControlFieldError("U-format octets 4-6 must be zero")
    return UFrame(function=function), total
