"""APCI framing: the three APDU formats of IEC 104.

The Application Protocol Control Information is 6 octets: the 0x68 start
byte, a length octet, and a 4-octet control field whose two low bits of
the first octet select the format (Fig. 3 of the paper):

* I-format (bit0 = 0): carries an ASDU plus 15-bit send/receive
  sequence numbers.
* S-format (bits = 01): carries only a receive sequence number (ack).
* U-format (bits = 11): carries one of six connection-control function
  bits (STARTDT/STOPDT/TESTFR act/con).
"""

from __future__ import annotations

from dataclasses import dataclass

from .asdu import ASDU
from .constants import (_TYPE_TOKENS, CONTROL_FIELD_LENGTH,
                        MAX_APDU_LENGTH, START_BYTE, APDUFormat, UFunction)
from .errors import (ControlFieldError, FramingError, MalformedASDUError,
                     TruncatedError)
from .profiles import STANDARD_PROFILE, LinkProfile

#: Modulus of the 15-bit sequence-number space.
SEQ_MODULO = 1 << 15


def _check_seq(name: str, value: int) -> None:
    if not 0 <= value < SEQ_MODULO:
        raise ValueError(f"{name} sequence number {value} out of 15-bit "
                         "range")


@dataclass(frozen=True)
class IFrame:
    """I-format APDU: numbered information transfer."""

    asdu: ASDU
    send_seq: int = 0
    recv_seq: int = 0

    def __post_init__(self) -> None:
        _check_seq("send", self.send_seq)
        _check_seq("receive", self.recv_seq)

    format = APDUFormat.I

    @property
    def token(self) -> str:
        """Paper Table 4 token (e.g. ``I36``)."""
        return _TYPE_TOKENS[self.asdu.type_id]

    def control_field(self) -> bytes:
        return bytes(((self.send_seq << 1) & 0xFF,
                      (self.send_seq >> 7) & 0xFF,
                      (self.recv_seq << 1) & 0xFF,
                      (self.recv_seq >> 7) & 0xFF))

    def encode(self, profile: LinkProfile = STANDARD_PROFILE) -> bytes:
        body = self.asdu.encode(profile)
        length = CONTROL_FIELD_LENGTH + len(body)
        if length > MAX_APDU_LENGTH:
            raise FramingError(
                f"APDU length {length} exceeds {MAX_APDU_LENGTH}")
        return bytes((START_BYTE, length)) + self.control_field() + body


@dataclass(frozen=True)
class SFrame:
    """S-format APDU: numbered supervisory function (acknowledgement)."""

    recv_seq: int = 0

    def __post_init__(self) -> None:
        _check_seq("receive", self.recv_seq)

    format = APDUFormat.S
    token = "S"

    def encode(self, profile: LinkProfile = STANDARD_PROFILE) -> bytes:
        return bytes((START_BYTE, CONTROL_FIELD_LENGTH, 0x01, 0x00,
                      (self.recv_seq << 1) & 0xFF,
                      (self.recv_seq >> 7) & 0xFF))


@dataclass(frozen=True)
class UFrame:
    """U-format APDU: unnumbered control function."""

    function: UFunction

    format = APDUFormat.U

    @property
    def token(self) -> str:
        """Paper Table 4 token (e.g. ``U16`` for TESTFR act)."""
        return self.function.token

    def encode(self, profile: LinkProfile = STANDARD_PROFILE) -> bytes:
        return bytes((START_BYTE, CONTROL_FIELD_LENGTH,
                      0x03 | int(self.function), 0x00, 0x00, 0x00))


APDU = IFrame | SFrame | UFrame

#: Ready-made U-frames for the six control functions.
STARTDT_ACT = UFrame(UFunction.STARTDT_ACT)
STARTDT_CON = UFrame(UFunction.STARTDT_CON)
STOPDT_ACT = UFrame(UFunction.STOPDT_ACT)
STOPDT_CON = UFrame(UFunction.STOPDT_CON)
TESTFR_ACT = UFrame(UFunction.TESTFR_ACT)
TESTFR_CON = UFrame(UFunction.TESTFR_CON)

#: Function-bit lookup for the decode fast path: U-frames are pure
#: singletons (frozen, field-determined), so every TESTFR/STARTDT on
#: the wire decodes to a shared instance instead of a fresh enum
#: round-trip plus allocation.
_U_FRAMES = {int(frame.function): frame
             for frame in (STARTDT_ACT, STARTDT_CON, STOPDT_ACT,
                           STOPDT_CON, TESTFR_ACT, TESTFR_CON)}

#: APCI span kinds produced by :func:`scan_apci` (the low control
#: bits, normalized): 0 = I-format, 1 = S-format, 3 = U-format.
SPAN_I, SPAN_S, SPAN_U = 0, 1, 3


def scan_apci(buf: bytes, offset: int = 0,
              limit: int | None = None
              ) -> tuple[list[tuple[int, int, int]], int]:
    """One-pass batch frame scan: split and classify without decoding.

    Scans ``buf`` from ``offset`` for consecutive complete APCI frames
    and returns ``(spans, stop)`` where each span is ``(start, total,
    kind)`` — frame start offset, total octet count (2 + length) and
    the APDU format kind (:data:`SPAN_I`/:data:`SPAN_S`/
    :data:`SPAN_U`) read straight from the control field — and
    ``stop`` is the offset where scanning ended: the start of a
    trailing partial frame, of a non-0x68 byte (lost framing), or
    ``len(buf)``.

    This is the vectorized front half of the decode path: the whole
    tail-read buffer is split and classified in one tight loop over
    index arithmetic, and per-frame objects are only built for the
    frames a caller actually decodes. Emitting spans (index pairs)
    instead of slices keeps the scan allocation-free.

    A frame whose declared length is shorter than a control field is
    *not* split here — it is left at ``stop`` for the caller's error
    path, exactly where the scalar splitter stopped.
    """
    spans: list[tuple[int, int, int]] = []
    size = len(buf)
    start_byte = START_BYTE
    while offset + 2 <= size:
        if buf[offset] != start_byte:
            break
        total = 2 + buf[offset + 1]
        end = offset + total
        if end > size:
            break
        low = (buf[offset + 2] & 0x03) if total > 2 else 0
        # Low control bits: even -> I-format; 01 -> S; 11 -> U.
        kind = low if low & 0x01 else SPAN_I
        spans.append((offset, total, kind))
        offset = end
        if limit is not None and len(spans) >= limit:
            break
    return spans, offset


def decode_apdu(data: bytes | memoryview, offset: int = 0,
                profile: LinkProfile = STANDARD_PROFILE
                ) -> tuple[APDU, int]:
    """Decode one APDU starting at ``offset``.

    Returns ``(apdu, total_octets_consumed)``. Raises
    :class:`TruncatedError` when more bytes are needed (the stream
    splitter uses this to wait for the rest of a TCP segment),
    :class:`FramingError`/:class:`ControlFieldError`/
    :class:`MalformedASDUError` on invalid content.
    """
    # Hot path: operate on the caller's bytes in place (no per-frame
    # buffer copy); a memoryview argument is materialized once.
    buf = data if isinstance(data, bytes) else bytes(data)
    available = len(buf) - offset
    if available < 2:
        raise TruncatedError("need APCI start+length", needed=2,
                             available=max(available, 0))
    if buf[offset] != START_BYTE:
        raise FramingError(
            f"bad start byte 0x{buf[offset]:02x} (expected 0x68)",
            offset=offset)
    length = buf[offset + 1]
    if length < CONTROL_FIELD_LENGTH:
        raise FramingError(f"APCI length {length} < control field size",
                           offset=offset)
    total = 2 + length
    if available < total:
        raise TruncatedError("APDU extends past buffer", needed=total,
                             available=available)

    # Control octets read by index (no 4-octet slice per frame).
    control0 = buf[offset + 2]
    control1 = buf[offset + 3]
    control2 = buf[offset + 4]
    control3 = buf[offset + 5]

    if control0 & 0x01 == 0:  # I-format
        if length == CONTROL_FIELD_LENGTH:
            raise MalformedASDUError("I-format APDU with empty ASDU")
        # Trusted-wire construction: the bit extraction below cannot
        # exceed 15 bits, which is the whole of ``IFrame.__post_init__``
        # — so skip the dataclass ``__init__`` re-validation.
        send_seq = (control0 >> 1) | (control1 << 7)
        recv_seq = (control2 >> 1) | (control3 << 7)
        asdu = ASDU.decode(buf[offset + 6:offset + total], profile)
        frame = object.__new__(IFrame)
        fields = frame.__dict__
        fields["asdu"] = asdu
        fields["send_seq"] = send_seq
        fields["recv_seq"] = recv_seq
        return frame, total

    if control0 & 0x03 == 0x01:  # S-format
        if length != CONTROL_FIELD_LENGTH:
            raise ControlFieldError("S-format APDU must carry no ASDU")
        if control0 & 0xFC or control1:
            raise ControlFieldError("reserved S-format bits set")
        sframe = object.__new__(SFrame)
        sframe.__dict__["recv_seq"] = (control2 >> 1) | (control3 << 7)
        return sframe, total

    # U-format (bits = 11)
    if length != CONTROL_FIELD_LENGTH:
        raise ControlFieldError("U-format APDU must carry no ASDU")
    function_bits = control0 & 0xFC
    frame = _U_FRAMES.get(function_bits)
    if frame is None:
        raise ControlFieldError(
            f"invalid U-format function bits 0x{function_bits:02x}")
    if control1 or control2 or control3:
        raise ControlFieldError("U-format octets 4-6 must be zero")
    return frame, total
