"""IEC 60870-5-101 serial link layer (FT1.2 framing).

The paper's network contains three kinds of substations; those on
serial links speak IEC 101, which the system operator cannot see at
the 104 tap. IEC 101 matters to the paper because upgraded RTUs kept
its *field widths* inside their 104 frames (§6.1). This module
implements the 101 side: FT1.2 frames over a byte-oriented line,
carrying ASDUs with IEC 101's narrow field widths.

FT1.2 defines three frame formats:

* single control character ``0xE5`` (positive acknowledgement);
* fixed-length frame ``0x10 C A CS 0x16`` (link-layer services);
* variable-length frame ``0x68 L L 0x68 C A <ASDU> CS 0x16`` where L
  counts C + A + ASDU octets and CS is their modulo-256 sum.

The control octet C carries PRM (primary message, 0x40), FCB (frame
count bit, 0x20), FCV (FCB valid, 0x10) and a 4-bit function code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .asdu import ASDU
from .errors import FramingError, IEC104Error, TruncatedError
from .profiles import LinkProfile

#: IEC 101's classic narrow field widths (cf. paper Fig. 7).
IEC101_PROFILE = LinkProfile(cot_length=1, ioa_length=2,
                             common_address_length=1)

ACK_CHAR = 0xE5
_FIXED_START = 0x10
_VARIABLE_START = 0x68
_END = 0x16


class LinkFunction(enum.IntEnum):
    """FT1.2 function codes (balanced transmission subset)."""

    # Primary (PRM=1)
    RESET_LINK = 0
    TEST_LINK = 2
    USER_DATA_CONFIRMED = 3
    USER_DATA_UNCONFIRMED = 4
    REQUEST_LINK_STATUS = 9
    # Secondary (PRM=0)
    ACK = 0
    NACK = 1
    LINK_STATUS = 11


@dataclass(frozen=True)
class LinkControl:
    """The FT1.2 control octet."""

    function: int
    prm: bool = True
    fcb: bool = False
    fcv: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.function <= 15:
            raise ValueError("function code must fit in 4 bits")

    def encode(self) -> int:
        return (self.function
                | (0x40 if self.prm else 0)
                | (0x20 if self.fcb else 0)
                | (0x10 if self.fcv else 0))

    @classmethod
    def decode(cls, octet: int) -> "LinkControl":
        if octet & 0x80:
            raise FramingError("reserved bit set in control octet")
        return cls(function=octet & 0x0F, prm=bool(octet & 0x40),
                   fcb=bool(octet & 0x20), fcv=bool(octet & 0x10))


@dataclass(frozen=True)
class Ft12Frame:
    """One decoded FT1.2 frame."""

    control: LinkControl
    address: int
    asdu_bytes: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.address <= 255:
            raise ValueError("link address must fit in one octet")

    @property
    def is_ack(self) -> bool:
        return False

    def decode_asdu(self, profile: LinkProfile = IEC101_PROFILE) -> ASDU:
        if not self.asdu_bytes:
            raise IEC104Error("frame carries no ASDU")
        return ASDU.decode(self.asdu_bytes, profile)


@dataclass(frozen=True)
class AckFrame:
    """The single-character positive acknowledgement (0xE5)."""

    is_ack = True


def _checksum(data: bytes) -> int:
    return sum(data) & 0xFF


def encode_fixed(control: LinkControl, address: int) -> bytes:
    body = bytes((control.encode(), address))
    return bytes((_FIXED_START,)) + body + bytes((_checksum(body), _END))


def encode_variable(control: LinkControl, address: int,
                    asdu: ASDU | bytes,
                    profile: LinkProfile = IEC101_PROFILE) -> bytes:
    asdu_bytes = asdu if isinstance(asdu, bytes) else asdu.encode(profile)
    body = bytes((control.encode(), address)) + asdu_bytes
    if len(body) > 255:
        raise FramingError("FT1.2 body exceeds 255 octets")
    return (bytes((_VARIABLE_START, len(body), len(body),
                   _VARIABLE_START))
            + body + bytes((_checksum(body), _END)))


def encode_ack() -> bytes:
    return bytes((ACK_CHAR,))


def decode_frame(data: bytes | memoryview, offset: int = 0
                 ) -> tuple[Ft12Frame | AckFrame, int]:
    """Decode one FT1.2 frame at ``offset``; return (frame, consumed)."""
    view = memoryview(bytes(data))[offset:]
    if len(view) < 1:
        raise TruncatedError("empty buffer", needed=1, available=0)
    start = view[0]
    if start == ACK_CHAR:
        return AckFrame(), 1
    if start == _FIXED_START:
        if len(view) < 5:
            raise TruncatedError("fixed frame truncated", needed=5,
                                 available=len(view))
        control_octet, address, checksum, end = view[1:5]
        if end != _END:
            raise FramingError("fixed frame missing end character")
        if _checksum(bytes((control_octet, address))) != checksum:
            raise FramingError("fixed frame checksum mismatch")
        return (Ft12Frame(control=LinkControl.decode(control_octet),
                          address=address), 5)
    if start == _VARIABLE_START:
        if len(view) < 4:
            raise TruncatedError("variable frame header truncated",
                                 needed=4, available=len(view))
        length, length2, second = view[1], view[2], view[3]
        if length != length2:
            raise FramingError("length octets disagree")
        if second != _VARIABLE_START:
            raise FramingError("second start octet missing")
        total = 4 + length + 2
        if len(view) < total:
            raise TruncatedError("variable frame truncated",
                                 needed=total, available=len(view))
        body = bytes(view[4:4 + length])
        checksum, end = view[4 + length], view[5 + length]
        if end != _END:
            raise FramingError("variable frame missing end character")
        if _checksum(body) != checksum:
            raise FramingError("variable frame checksum mismatch")
        if length < 2:
            raise FramingError("body too short for control + address")
        return (Ft12Frame(control=LinkControl.decode(body[0]),
                          address=body[1], asdu_bytes=body[2:]), total)
    raise FramingError(f"not an FT1.2 start character: 0x{start:02x}")


class SerialLine:
    """A byte stream splitting incoming data into FT1.2 frames."""

    def __init__(self) -> None:
        self._buffer = b""
        self.garbage = 0

    def feed(self, data: bytes) -> list[Ft12Frame | AckFrame]:
        self._buffer += data
        frames: list[Ft12Frame | AckFrame] = []
        while self._buffer:
            try:
                frame, consumed = decode_frame(self._buffer)
            except TruncatedError:
                break
            except FramingError:
                # Byte-level resync: skip one octet and retry.
                self._buffer = self._buffer[1:]
                self.garbage += 1
                continue
            frames.append(frame)
            self._buffer = self._buffer[consumed:]
        return frames

    @property
    def pending(self) -> int:
        return len(self._buffer)
