"""Information elements for every IEC 104 ASDU typeID.

Each of the 54 typeIDs of Table 5 carries a fixed (or, for file
segments, variable) information-element layout after the information
object address. This module defines one value class per element family
and a registry of per-typeID codecs used by :mod:`repro.iec104.asdu`.

Time-tagged typeIDs (e.g. I36 vs I13) reuse the un-tagged value class
with a non-``None`` ``time`` field rather than duplicating classes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import Any, Generic, Protocol, TypeVar

from .constants import TypeID
from .errors import MalformedASDUError
from .time_tag import CP16_SIZE, CP56_SIZE, CP16Time2a, CP56Time2a

_FLOAT = struct.Struct("<f")    # staticcheck: width=4
_INT16 = struct.Struct("<h")    # staticcheck: width=2
_INT32 = struct.Struct("<i")    # staticcheck: width=4
_UINT32 = struct.Struct("<I")   # staticcheck: width=4


@dataclass(frozen=True)
class Quality:
    """Quality descriptor (QDS) bits shared by monitor-direction types."""

    overflow: bool = False
    blocked: bool = False
    substituted: bool = False
    not_topical: bool = False
    invalid: bool = False

    def encode(self) -> int:
        return ((0x01 if self.overflow else 0)
                | (0x10 if self.blocked else 0)
                | (0x20 if self.substituted else 0)
                | (0x40 if self.not_topical else 0)
                | (0x80 if self.invalid else 0))

    @classmethod
    def decode(cls, octet: int) -> "Quality":
        # Only 32 distinct QDS bit patterns exist (reserved bits are
        # ignored) and Quality is frozen, so the wire decode returns a
        # shared interned instance instead of allocating per element.
        # Subclasses fall through to a fresh construction.
        if cls is Quality:
            return _QUALITY_INTERNED[octet & 0xF1]
        return cls(overflow=bool(octet & 0x01),
                   blocked=bool(octet & 0x10),
                   substituted=bool(octet & 0x20),
                   not_topical=bool(octet & 0x40),
                   invalid=bool(octet & 0x80))

    @property
    def good(self) -> bool:
        """True when no quality bit marks the value unusable."""
        return not (self.invalid or self.not_topical or self.blocked)


GOOD = Quality()

#: Interned instances for every meaningful QDS bit pattern (the five
#: quality bits; reserved bits 0x0E carry no information).
_QUALITY_INTERNED = {
    bits: Quality(overflow=bool(bits & 0x01),
                  blocked=bool(bits & 0x10),
                  substituted=bool(bits & 0x20),
                  not_topical=bool(bits & 0x40),
                  invalid=bool(bits & 0x80))
    for bits in (low | high for low in (0x00, 0x01)
                 for high in range(0x00, 0x100, 0x10))
}


@dataclass(frozen=True)
class SinglePoint:
    """SIQ: single-point information (typeIDs 1 and 30)."""

    value: bool
    quality: Quality = GOOD
    time: CP56Time2a | None = None


@dataclass(frozen=True)
class DoublePoint:
    """DIQ: double-point information (typeIDs 3 and 31).

    ``state``: 0 indeterminate/intermediate, 1 OFF, 2 ON, 3 indeterminate.
    The paper's Fig. 20 breaker status uses exactly these states.
    """

    state: int
    quality: Quality = GOOD
    time: CP56Time2a | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.state <= 3:
            raise ValueError(f"double-point state {self.state} out of range")

    @property
    def value(self) -> int:
        return self.state


@dataclass(frozen=True)
class StepPosition:
    """VTI + QDS: step position, -64..63 (typeIDs 5 and 32)."""

    value: int
    transient: bool = False
    quality: Quality = GOOD
    time: CP56Time2a | None = None

    def __post_init__(self) -> None:
        if not -64 <= self.value <= 63:
            raise ValueError(f"step position {self.value} out of range")


@dataclass(frozen=True)
class Bitstring32:
    """BSI + QDS: bitstring of 32 bits (typeIDs 7 and 33)."""

    bits: int
    quality: Quality = GOOD
    time: CP56Time2a | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.bits <= 0xFFFFFFFF:
            raise ValueError("bitstring must fit in 32 bits")

    @property
    def value(self) -> int:
        return self.bits


@dataclass(frozen=True)
class NormalizedValue:
    """NVA + QDS: normalized measured value in [-1, 1) (typeIDs 9, 34).

    TypeID 21 (M_ME_ND_1) carries the NVA without a quality descriptor;
    its codec ignores ``quality`` on encode and restores ``GOOD``.
    """

    value: float
    quality: Quality = GOOD
    time: CP56Time2a | None = None

    def __post_init__(self) -> None:
        if not -1.0 <= self.value < 1.0 + 2 ** -15:
            raise ValueError(f"normalized value {self.value} out of [-1, 1)")

    @property
    def raw(self) -> int:
        return max(-32768, min(32767, int(round(self.value * 32768.0))))

    @classmethod
    def from_raw(cls, raw: int, **kwargs) -> "NormalizedValue":
        return cls(value=raw / 32768.0, **kwargs)


@dataclass(frozen=True)
class ScaledValue:
    """SVA + QDS: scaled measured value, 16-bit signed (typeIDs 11, 35)."""

    value: int
    quality: Quality = GOOD
    time: CP56Time2a | None = None

    def __post_init__(self) -> None:
        if not -32768 <= self.value <= 32767:
            raise ValueError(f"scaled value {self.value} out of int16 range")


@dataclass(frozen=True)
class ShortFloat:
    """R32 + QDS: short floating point measured value (typeIDs 13, 36).

    These two typeIDs carry 97% of the ASDUs in the paper's datasets.
    """

    value: float
    quality: Quality = GOOD
    time: CP56Time2a | None = None


@dataclass(frozen=True)
class IntegratedTotals:
    """BCR: binary counter reading (typeIDs 15, 37)."""

    counter: int
    sequence: int = 0
    carry: bool = False
    adjusted: bool = False
    invalid: bool = False
    time: CP56Time2a | None = None

    def __post_init__(self) -> None:
        if not -(2 ** 31) <= self.counter < 2 ** 31:
            raise ValueError("counter must fit in int32")
        if not 0 <= self.sequence <= 31:
            raise ValueError("BCR sequence out of range")

    @property
    def value(self) -> int:
        return self.counter


@dataclass(frozen=True)
class PackedSinglePoints:
    """SCD + QDS: 16 status bits + 16 change-detection bits (typeID 20)."""

    status: int
    change: int
    quality: Quality = GOOD

    def __post_init__(self) -> None:
        if not 0 <= self.status <= 0xFFFF or not 0 <= self.change <= 0xFFFF:
            raise ValueError("SCD fields must fit in 16 bits")

    @property
    def value(self) -> int:
        return self.status


@dataclass(frozen=True)
class ProtectionEvent:
    """SEP + CP16 + CP56: event of protection equipment (typeID 38)."""

    event_state: int  # 0..3 (like DoublePoint)
    elapsed: CP16Time2a = field(default_factory=CP16Time2a)
    quality: Quality = GOOD
    time: CP56Time2a = field(default_factory=CP56Time2a)

    def __post_init__(self) -> None:
        if not 0 <= self.event_state <= 3:
            raise ValueError("protection event state out of range")


@dataclass(frozen=True)
class ProtectionStartEvents:
    """SPE + QDP + CP16 + CP56 (typeID 39)."""

    start_events: int  # 6 bits
    quality: Quality = GOOD
    duration: CP16Time2a = field(default_factory=CP16Time2a)
    time: CP56Time2a = field(default_factory=CP56Time2a)

    def __post_init__(self) -> None:
        if not 0 <= self.start_events <= 0x3F:
            raise ValueError("SPE must fit in 6 bits")


@dataclass(frozen=True)
class ProtectionOutputCircuit:
    """OCI + QDP + CP16 + CP56 (typeID 40)."""

    output_circuits: int  # 4 bits
    quality: Quality = GOOD
    operating_time: CP16Time2a = field(default_factory=CP16Time2a)
    time: CP56Time2a = field(default_factory=CP56Time2a)

    def __post_init__(self) -> None:
        if not 0 <= self.output_circuits <= 0x0F:
            raise ValueError("OCI must fit in 4 bits")


@dataclass(frozen=True)
class SingleCommand:
    """SCO: single command (typeIDs 45, 58)."""

    state: bool
    qualifier: int = 0  # QU, 0..31
    select: bool = False  # S/E bit: select (True) vs execute (False)
    time: CP56Time2a | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.qualifier <= 31:
            raise ValueError("command qualifier out of range")

    @property
    def value(self) -> bool:
        return self.state


@dataclass(frozen=True)
class DoubleCommand:
    """DCO: double command (typeIDs 46, 59). state: 1 OFF, 2 ON."""

    state: int
    qualifier: int = 0
    select: bool = False
    time: CP56Time2a | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.state <= 3:
            raise ValueError("double command state out of range")
        if not 0 <= self.qualifier <= 31:
            raise ValueError("command qualifier out of range")

    @property
    def value(self) -> int:
        return self.state


@dataclass(frozen=True)
class RegulatingStep:
    """RCO: regulating step command (typeIDs 47, 60). 1 LOWER, 2 HIGHER."""

    step: int
    qualifier: int = 0
    select: bool = False
    time: CP56Time2a | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.step <= 3:
            raise ValueError("regulating step out of range")
        if not 0 <= self.qualifier <= 31:
            raise ValueError("command qualifier out of range")

    @property
    def value(self) -> int:
        return self.step


@dataclass(frozen=True)
class SetpointNormalized:
    """NVA + QOS: set point command, normalized (typeIDs 48, 61)."""

    value: float
    ql: int = 0
    select: bool = False
    time: CP56Time2a | None = None

    def __post_init__(self) -> None:
        if not -1.0 <= self.value < 1.0 + 2 ** -15:
            raise ValueError("normalized set point out of [-1, 1)")
        if not 0 <= self.ql <= 127:
            raise ValueError("QOS ql out of range")


@dataclass(frozen=True)
class SetpointScaled:
    """SVA + QOS: set point command, scaled (typeIDs 49, 62)."""

    value: int
    ql: int = 0
    select: bool = False
    time: CP56Time2a | None = None

    def __post_init__(self) -> None:
        if not -32768 <= self.value <= 32767:
            raise ValueError("scaled set point out of int16 range")
        if not 0 <= self.ql <= 127:
            raise ValueError("QOS ql out of range")


@dataclass(frozen=True)
class SetpointFloat:
    """R32 + QOS: set point command, short float (typeIDs 50, 63).

    TypeID 50 is the AGC set-point command observed in the paper
    (Table 8, symbol AGC-SP).
    """

    value: float
    ql: int = 0
    select: bool = False
    time: CP56Time2a | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.ql <= 127:
            raise ValueError("QOS ql out of range")


@dataclass(frozen=True)
class Bitstring32Command:
    """BSI: bitstring command (typeIDs 51, 64)."""

    bits: int
    time: CP56Time2a | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.bits <= 0xFFFFFFFF:
            raise ValueError("bitstring must fit in 32 bits")

    @property
    def value(self) -> int:
        return self.bits


@dataclass(frozen=True)
class EndOfInitialization:
    """COI: cause of initialization (typeID 70)."""

    cause: int = 0  # 0 local power on, 1 local manual, 2 remote reset
    after_parameter_change: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.cause <= 127:
            raise ValueError("COI cause out of range")


@dataclass(frozen=True)
class InterrogationCommand:
    """QOI: qualifier of interrogation (typeID 100, the paper's I100).

    ``qoi`` 20 requests a (global) station interrogation; 21..36 request
    group interrogations.
    """

    qoi: int = 20

    def __post_init__(self) -> None:
        if not 0 <= self.qoi <= 255:
            raise ValueError("QOI out of range")

    @property
    def is_global(self) -> bool:
        return self.qoi == 20


@dataclass(frozen=True)
class CounterInterrogationCommand:
    """QCC: qualifier of counter interrogation (typeID 101)."""

    request: int = 5  # RQT: 5 = general counter request
    freeze: int = 0   # FRZ

    def __post_init__(self) -> None:
        if not 0 <= self.request <= 63:
            raise ValueError("QCC request out of range")
        if not 0 <= self.freeze <= 3:
            raise ValueError("QCC freeze out of range")


@dataclass(frozen=True)
class ReadCommand:
    """TypeID 102 carries no information element after the IOA."""


@dataclass(frozen=True)
class ClockSyncCommand:
    """CP56Time2a: clock synchronization (typeID 103, the paper's I103)."""

    time: CP56Time2a = field(default_factory=CP56Time2a)


@dataclass(frozen=True)
class ResetProcessCommand:
    """QRP: qualifier of reset process (typeID 105)."""

    qrp: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.qrp <= 255:
            raise ValueError("QRP out of range")


@dataclass(frozen=True)
class TestCommand:
    """TSC + CP56Time2a: test command with time tag (typeID 107)."""

    __test__ = False  # keep pytest from collecting this dataclass

    counter: int = 0
    time: CP56Time2a = field(default_factory=CP56Time2a)

    def __post_init__(self) -> None:
        if not 0 <= self.counter <= 0xFFFF:
            raise ValueError("test counter must fit in 16 bits")


@dataclass(frozen=True)
class ParameterNormalized:
    """NVA + QPM (typeID 110)."""

    value: float
    qpm: int = 1

    def __post_init__(self) -> None:
        if not -1.0 <= self.value < 1.0 + 2 ** -15:
            raise ValueError("normalized parameter out of [-1, 1)")
        if not 0 <= self.qpm <= 255:
            raise ValueError("QPM out of range")


@dataclass(frozen=True)
class ParameterScaled:
    """SVA + QPM (typeID 111)."""

    value: int
    qpm: int = 1

    def __post_init__(self) -> None:
        if not -32768 <= self.value <= 32767:
            raise ValueError("scaled parameter out of int16 range")
        if not 0 <= self.qpm <= 255:
            raise ValueError("QPM out of range")


@dataclass(frozen=True)
class ParameterFloat:
    """R32 + QPM (typeID 112)."""

    value: float
    qpm: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.qpm <= 255:
            raise ValueError("QPM out of range")


@dataclass(frozen=True)
class ParameterActivation:
    """QPA (typeID 113)."""

    qpa: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.qpa <= 255:
            raise ValueError("QPA out of range")


@dataclass(frozen=True)
class FileReady:
    """NOF + LOF + FRQ (typeID 120)."""

    file_name: int
    file_length: int
    qualifier: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.file_name <= 0xFFFF:
            raise ValueError("NOF must fit in 16 bits")
        if not 0 <= self.file_length <= 0xFFFFFF:
            raise ValueError("LOF must fit in 24 bits")
        if not 0 <= self.qualifier <= 255:
            raise ValueError("FRQ out of range")


@dataclass(frozen=True)
class SectionReady:
    """NOF + NOS + LOF + SRQ (typeID 121)."""

    file_name: int
    section: int
    section_length: int
    qualifier: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.file_name <= 0xFFFF:
            raise ValueError("NOF must fit in 16 bits")
        if not 0 <= self.section <= 255:
            raise ValueError("NOS out of range")
        if not 0 <= self.section_length <= 0xFFFFFF:
            raise ValueError("LOF must fit in 24 bits")
        if not 0 <= self.qualifier <= 255:
            raise ValueError("SRQ out of range")


@dataclass(frozen=True)
class CallFile:
    """NOF + NOS + SCQ (typeID 122)."""

    file_name: int
    section: int = 0
    qualifier: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.file_name <= 0xFFFF:
            raise ValueError("NOF must fit in 16 bits")
        if not 0 <= self.section <= 255:
            raise ValueError("NOS out of range")
        if not 0 <= self.qualifier <= 255:
            raise ValueError("SCQ out of range")


@dataclass(frozen=True)
class LastSection:
    """NOF + NOS + LSQ + CHS (typeID 123)."""

    file_name: int
    section: int = 0
    qualifier: int = 0
    checksum: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.file_name <= 0xFFFF:
            raise ValueError("NOF must fit in 16 bits")
        for name, value in (("NOS", self.section), ("LSQ", self.qualifier),
                            ("CHS", self.checksum)):
            if not 0 <= value <= 255:
                raise ValueError(f"{name} out of range")


@dataclass(frozen=True)
class AckFile:
    """NOF + NOS + AFQ (typeID 124)."""

    file_name: int
    section: int = 0
    qualifier: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.file_name <= 0xFFFF:
            raise ValueError("NOF must fit in 16 bits")
        if not 0 <= self.section <= 255 or not 0 <= self.qualifier <= 255:
            raise ValueError("NOS/AFQ out of range")


@dataclass(frozen=True)
class Segment:
    """NOF + NOS + LOS + data (typeID 125, variable length)."""

    file_name: int
    section: int
    data: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.file_name <= 0xFFFF:
            raise ValueError("NOF must fit in 16 bits")
        if not 0 <= self.section <= 255:
            raise ValueError("NOS out of range")
        if len(self.data) > 255:
            raise ValueError("segment data exceeds 255 octets")


@dataclass(frozen=True)
class Directory:
    """NOF + LOF + SOF + CP56 (typeID 126)."""

    file_name: int
    file_length: int
    status: int = 0
    time: CP56Time2a = field(default_factory=CP56Time2a)

    def __post_init__(self) -> None:
        if not 0 <= self.file_name <= 0xFFFF:
            raise ValueError("NOF must fit in 16 bits")
        if not 0 <= self.file_length <= 0xFFFFFF:
            raise ValueError("LOF must fit in 24 bits")
        if not 0 <= self.status <= 255:
            raise ValueError("SOF out of range")


@dataclass(frozen=True)
class QueryLog:
    """NOF + start CP56 + stop CP56 (typeID 127)."""

    file_name: int
    start: CP56Time2a = field(default_factory=CP56Time2a)
    stop: CP56Time2a = field(default_factory=CP56Time2a)

    def __post_init__(self) -> None:
        if not 0 <= self.file_name <= 0xFFFF:
            raise ValueError("NOF must fit in 16 bits")


#: Union of every information-element value class. ``ASDU`` payloads
#: and ``InformationObject.element`` are typed against this union so
#: mypy can flag codec/typeID mismatches at construction sites.
InformationElement = (
    SinglePoint | DoublePoint | StepPosition | Bitstring32
    | NormalizedValue | ScaledValue | ShortFloat | IntegratedTotals
    | PackedSinglePoints | ProtectionEvent | ProtectionStartEvents
    | ProtectionOutputCircuit | SingleCommand | DoubleCommand
    | RegulatingStep | SetpointNormalized | SetpointScaled
    | SetpointFloat | Bitstring32Command | EndOfInitialization
    | InterrogationCommand | CounterInterrogationCommand | ReadCommand
    | ClockSyncCommand | ResetProcessCommand | TestCommand
    | ParameterNormalized | ParameterScaled | ParameterFloat
    | ParameterActivation | FileReady | SectionReady | CallFile
    | LastSection | AckFile | Segment | Directory | QueryLog
)


# ---------------------------------------------------------------------------
# Wire codecs
# ---------------------------------------------------------------------------

E = TypeVar("E", bound=InformationElement)


class ElementCodec(Generic[E]):
    """Encode/decode one information element for a specific typeID.

    Each concrete codec is parameterized by the value class it accepts
    (``ElementCodec[ShortFloat]`` etc.), so ``encode`` rejects the
    wrong element class and ``decode`` returns a precise type. ``size``
    is the fixed on-wire size in octets, or ``None`` for the
    variable-length file segment (typeID 125).
    """

    #: Value class accepted by :meth:`encode`.
    element_type: type[E]
    size: int | None = 0
    #: True when the element carries a trailing CP56Time2a.
    timed: bool = False

    def encode(self, element: E) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[E, int]:
        """Return ``(element, octets_consumed)``."""
        raise NotImplementedError

    def _need(self, data: bytes | memoryview, offset: int,
              count: int) -> bytes:
        raw = bytes(data[offset:offset + count])
        if len(raw) < count:
            raise MalformedASDUError(
                f"information element truncated: need {count} octets, "
                f"have {len(raw)}")
        return raw

    def _ensure(self, data: bytes | memoryview, offset: int,
                count: int) -> None:
        """Bounds check for in-place decodes (no slice copy)."""
        have = len(data) - offset
        if have < count:
            raise MalformedASDUError(
                f"information element truncated: need {count} octets, "
                f"have {have if have > 0 else 0}")


class _TimeTagged(Protocol):
    """Structural type of elements with an optional CP56 time tag."""

    @property
    def time(self) -> CP56Time2a | None: ...


def _encode_time(element: _TimeTagged, timed: bool) -> bytes:
    if timed:
        if element.time is None:
            raise ValueError("time-tagged typeID requires a time tag")
        return element.time.encode()
    if element.time is not None:
        raise ValueError("un-tagged typeID must not carry a time tag")
    return b""


class _SinglePointCodec(ElementCodec[SinglePoint]):
    element_type = SinglePoint

    def __init__(self, timed: bool = False):
        self.timed = timed
        self.size = 1 + (CP56_SIZE if timed else 0)

    def encode(self, element: SinglePoint) -> bytes:
        siq = (0x01 if element.value else 0) | (element.quality.encode()
                                                & 0xF0)
        return bytes((siq,)) + _encode_time(element, self.timed)

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[SinglePoint, int]:
        # In-place trusted decode (no ``__post_init__`` on SinglePoint).
        size = self.size
        self._ensure(data, offset, size)
        siq = data[offset]
        element = object.__new__(SinglePoint)
        fields = element.__dict__
        fields["value"] = bool(siq & 0x01)
        fields["quality"] = Quality.decode(siq & 0xF0)
        fields["time"] = (CP56Time2a.decode(data, offset + 1)
                          if self.timed else None)
        return element, size


class _DoublePointCodec(ElementCodec[DoublePoint]):
    element_type = DoublePoint

    def __init__(self, timed: bool = False):
        self.timed = timed
        self.size = 1 + (CP56_SIZE if timed else 0)

    def encode(self, element: DoublePoint) -> bytes:
        diq = (element.state & 0x03) | (element.quality.encode() & 0xF0)
        return bytes((diq,)) + _encode_time(element, self.timed)

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[DoublePoint, int]:
        raw = self._need(data, offset, self.size)
        element = DoublePoint(
            state=raw[0] & 0x03,
            quality=Quality.decode(raw[0] & 0xF0),
            time=CP56Time2a.decode(raw, 1) if self.timed else None)
        return element, self.size


class _StepPositionCodec(ElementCodec[StepPosition]):
    element_type = StepPosition

    def __init__(self, timed: bool = False):
        self.timed = timed
        self.size = 2 + (CP56_SIZE if timed else 0)

    def encode(self, element: StepPosition) -> bytes:
        vti = (element.value & 0x7F) | (0x80 if element.transient else 0)
        return (bytes((vti, element.quality.encode()))
                + _encode_time(element, self.timed))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[StepPosition, int]:
        raw = self._need(data, offset, self.size)
        value = raw[0] & 0x7F
        if value >= 64:
            value -= 128
        element = StepPosition(
            value=value,
            transient=bool(raw[0] & 0x80),
            quality=Quality.decode(raw[1]),
            time=CP56Time2a.decode(raw, 2) if self.timed else None)
        return element, self.size


class _Bitstring32Codec(ElementCodec[Bitstring32]):
    element_type = Bitstring32

    def __init__(self, timed: bool = False):
        self.timed = timed
        self.size = 5 + (CP56_SIZE if timed else 0)

    def encode(self, element: Bitstring32) -> bytes:
        return (_UINT32.pack(element.bits)
                + bytes((element.quality.encode(),))
                + _encode_time(element, self.timed))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[Bitstring32, int]:
        raw = self._need(data, offset, self.size)
        element = Bitstring32(
            bits=_UINT32.unpack_from(raw)[0],
            quality=Quality.decode(raw[4]),
            time=CP56Time2a.decode(raw, 5) if self.timed else None)
        return element, self.size


class _NormalizedCodec(ElementCodec[NormalizedValue]):
    element_type = NormalizedValue

    def __init__(self, timed: bool = False, with_quality: bool = True):
        self.timed = timed
        self.with_quality = with_quality
        self.size = 2 + (1 if with_quality else 0) + (CP56_SIZE if timed
                                                      else 0)

    def encode(self, element: NormalizedValue) -> bytes:
        out = _INT16.pack(element.raw)
        if self.with_quality:
            out += bytes((element.quality.encode(),))
        return out + _encode_time(element, self.timed)

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[NormalizedValue, int]:
        # Trusted decode: int16 / 32768.0 lands in [-1, 1), which is
        # exactly the ``__post_init__`` range check.
        size = self.size
        self._ensure(data, offset, size)
        with_quality = self.with_quality
        quality = (Quality.decode(data[offset + 2]) if with_quality
                   else GOOD)
        tail = offset + (3 if with_quality else 2)
        element = object.__new__(NormalizedValue)
        fields = element.__dict__
        fields["value"] = _INT16.unpack_from(data, offset)[0] / 32768.0
        fields["quality"] = quality
        fields["time"] = (CP56Time2a.decode(data, tail)
                          if self.timed else None)
        return element, size


class _ScaledCodec(ElementCodec[ScaledValue]):
    element_type = ScaledValue

    def __init__(self, timed: bool = False):
        self.timed = timed
        self.size = 3 + (CP56_SIZE if timed else 0)

    def encode(self, element: ScaledValue) -> bytes:
        return (_INT16.pack(element.value)
                + bytes((element.quality.encode(),))
                + _encode_time(element, self.timed))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[ScaledValue, int]:
        # Trusted decode: the int16 read satisfies the range check in
        # ``ScaledValue.__post_init__`` by construction.
        size = self.size
        self._ensure(data, offset, size)
        element = object.__new__(ScaledValue)
        fields = element.__dict__
        fields["value"] = _INT16.unpack_from(data, offset)[0]
        fields["quality"] = Quality.decode(data[offset + 2])
        fields["time"] = (CP56Time2a.decode(data, offset + 3)
                          if self.timed else None)
        return element, size


class _ShortFloatCodec(ElementCodec[ShortFloat]):
    element_type = ShortFloat

    def __init__(self, timed: bool = False):
        self.timed = timed
        self.size = 5 + (CP56_SIZE if timed else 0)

    def encode(self, element: ShortFloat) -> bytes:
        return (_FLOAT.pack(element.value)
                + bytes((element.quality.encode(),))
                + _encode_time(element, self.timed))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[ShortFloat, int]:
        # The hottest codec of all (typeIDs 13/36 carry 97% of the
        # paper's ASDUs): decode in place — no slice copy — and build
        # the frozen element via ``object.__new__`` (ShortFloat has no
        # ``__post_init__``, so there is nothing to re-validate).
        size = self.size
        self._ensure(data, offset, size)
        element = object.__new__(ShortFloat)
        fields = element.__dict__
        fields["value"] = _FLOAT.unpack_from(data, offset)[0]
        fields["quality"] = Quality.decode(data[offset + 4])
        fields["time"] = (CP56Time2a.decode(data, offset + 5)
                          if self.timed else None)
        return element, size


class _IntegratedTotalsCodec(ElementCodec[IntegratedTotals]):
    element_type = IntegratedTotals

    def __init__(self, timed: bool = False):
        self.timed = timed
        self.size = 5 + (CP56_SIZE if timed else 0)

    def encode(self, element: IntegratedTotals) -> bytes:
        seq = (element.sequence
               | (0x20 if element.carry else 0)
               | (0x40 if element.adjusted else 0)
               | (0x80 if element.invalid else 0))
        return (_INT32.pack(element.counter) + bytes((seq,))
                + _encode_time(element, self.timed))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[IntegratedTotals, int]:
        raw = self._need(data, offset, self.size)
        element = IntegratedTotals(
            counter=_INT32.unpack_from(raw)[0],
            sequence=raw[4] & 0x1F,
            carry=bool(raw[4] & 0x20),
            adjusted=bool(raw[4] & 0x40),
            invalid=bool(raw[4] & 0x80),
            time=CP56Time2a.decode(raw, 5) if self.timed else None)
        return element, self.size


class _PackedSinglePointsCodec(ElementCodec[PackedSinglePoints]):
    element_type = PackedSinglePoints
    size = 5

    def encode(self, element: PackedSinglePoints) -> bytes:
        return (struct.pack("<HH", element.status, element.change)
                + bytes((element.quality.encode(),)))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[PackedSinglePoints, int]:
        raw = self._need(data, offset, self.size)
        status, change = struct.unpack_from("<HH", raw)
        return (PackedSinglePoints(status=status, change=change,
                                   quality=Quality.decode(raw[4])),
                self.size)


class _ProtectionEventCodec(ElementCodec[ProtectionEvent]):
    element_type = ProtectionEvent
    size = 1 + CP16_SIZE + CP56_SIZE
    timed = True

    def encode(self, element: ProtectionEvent) -> bytes:
        sep = (element.event_state & 0x03) | (element.quality.encode() & 0xF0)
        return (bytes((sep,)) + element.elapsed.encode()
                + element.time.encode())

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[ProtectionEvent, int]:
        raw = self._need(data, offset, self.size)
        return (ProtectionEvent(
            event_state=raw[0] & 0x03,
            quality=Quality.decode(raw[0] & 0xF0),
            elapsed=CP16Time2a.decode(raw, 1),
            time=CP56Time2a.decode(raw, 3)), self.size)


class _ProtectionStartCodec(ElementCodec[ProtectionStartEvents]):
    element_type = ProtectionStartEvents
    size = 2 + CP16_SIZE + CP56_SIZE
    timed = True

    def encode(self, element: ProtectionStartEvents) -> bytes:
        return (bytes((element.start_events & 0x3F,
                       element.quality.encode()))
                + element.duration.encode() + element.time.encode())

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[ProtectionStartEvents, int]:
        raw = self._need(data, offset, self.size)
        return (ProtectionStartEvents(
            start_events=raw[0] & 0x3F,
            quality=Quality.decode(raw[1]),
            duration=CP16Time2a.decode(raw, 2),
            time=CP56Time2a.decode(raw, 4)), self.size)


class _ProtectionOutputCodec(ElementCodec[ProtectionOutputCircuit]):
    element_type = ProtectionOutputCircuit
    size = 2 + CP16_SIZE + CP56_SIZE
    timed = True

    def encode(self, element: ProtectionOutputCircuit) -> bytes:
        return (bytes((element.output_circuits & 0x0F,
                       element.quality.encode()))
                + element.operating_time.encode() + element.time.encode())

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[ProtectionOutputCircuit, int]:
        raw = self._need(data, offset, self.size)
        return (ProtectionOutputCircuit(
            output_circuits=raw[0] & 0x0F,
            quality=Quality.decode(raw[1]),
            operating_time=CP16Time2a.decode(raw, 2),
            time=CP56Time2a.decode(raw, 4)), self.size)


class _SingleCommandCodec(ElementCodec[SingleCommand]):
    element_type = SingleCommand

    def __init__(self, timed: bool = False):
        self.timed = timed
        self.size = 1 + (CP56_SIZE if timed else 0)

    def encode(self, element: SingleCommand) -> bytes:
        sco = ((0x01 if element.state else 0)
               | ((element.qualifier & 0x1F) << 2)
               | (0x80 if element.select else 0))
        return bytes((sco,)) + _encode_time(element, self.timed)

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[SingleCommand, int]:
        raw = self._need(data, offset, self.size)
        element = SingleCommand(
            state=bool(raw[0] & 0x01),
            qualifier=(raw[0] >> 2) & 0x1F,
            select=bool(raw[0] & 0x80),
            time=CP56Time2a.decode(raw, 1) if self.timed else None)
        return element, self.size


class _DoubleCommandCodec(ElementCodec[DoubleCommand]):
    element_type = DoubleCommand

    def __init__(self, timed: bool = False):
        self.timed = timed
        self.size = 1 + (CP56_SIZE if timed else 0)

    def encode(self, element: DoubleCommand) -> bytes:
        dco = ((element.state & 0x03)
               | ((element.qualifier & 0x1F) << 2)
               | (0x80 if element.select else 0))
        return bytes((dco,)) + _encode_time(element, self.timed)

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[DoubleCommand, int]:
        raw = self._need(data, offset, self.size)
        element = DoubleCommand(
            state=raw[0] & 0x03,
            qualifier=(raw[0] >> 2) & 0x1F,
            select=bool(raw[0] & 0x80),
            time=CP56Time2a.decode(raw, 1) if self.timed else None)
        return element, self.size


class _RegulatingStepCodec(ElementCodec[RegulatingStep]):
    element_type = RegulatingStep

    def __init__(self, timed: bool = False):
        self.timed = timed
        self.size = 1 + (CP56_SIZE if timed else 0)

    def encode(self, element: RegulatingStep) -> bytes:
        rco = ((element.step & 0x03)
               | ((element.qualifier & 0x1F) << 2)
               | (0x80 if element.select else 0))
        return bytes((rco,)) + _encode_time(element, self.timed)

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[RegulatingStep, int]:
        raw = self._need(data, offset, self.size)
        element = RegulatingStep(
            step=raw[0] & 0x03,
            qualifier=(raw[0] >> 2) & 0x1F,
            select=bool(raw[0] & 0x80),
            time=CP56Time2a.decode(raw, 1) if self.timed else None)
        return element, self.size


def _qos(ql: int, select: bool) -> int:
    return (ql & 0x7F) | (0x80 if select else 0)


class _SetpointNormalizedCodec(ElementCodec[SetpointNormalized]):
    element_type = SetpointNormalized

    def __init__(self, timed: bool = False):
        self.timed = timed
        self.size = 3 + (CP56_SIZE if timed else 0)

    def encode(self, element: SetpointNormalized) -> bytes:
        raw = max(-32768, min(32767, int(round(element.value * 32768.0))))
        return (_INT16.pack(raw) + bytes((_qos(element.ql, element.select),))
                + _encode_time(element, self.timed))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[SetpointNormalized, int]:
        raw = self._need(data, offset, self.size)
        element = SetpointNormalized(
            value=_INT16.unpack_from(raw)[0] / 32768.0,
            ql=raw[2] & 0x7F,
            select=bool(raw[2] & 0x80),
            time=CP56Time2a.decode(raw, 3) if self.timed else None)
        return element, self.size


class _SetpointScaledCodec(ElementCodec[SetpointScaled]):
    element_type = SetpointScaled

    def __init__(self, timed: bool = False):
        self.timed = timed
        self.size = 3 + (CP56_SIZE if timed else 0)

    def encode(self, element: SetpointScaled) -> bytes:
        return (_INT16.pack(element.value)
                + bytes((_qos(element.ql, element.select),))
                + _encode_time(element, self.timed))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[SetpointScaled, int]:
        raw = self._need(data, offset, self.size)
        element = SetpointScaled(
            value=_INT16.unpack_from(raw)[0],
            ql=raw[2] & 0x7F,
            select=bool(raw[2] & 0x80),
            time=CP56Time2a.decode(raw, 3) if self.timed else None)
        return element, self.size


class _SetpointFloatCodec(ElementCodec[SetpointFloat]):
    element_type = SetpointFloat

    def __init__(self, timed: bool = False):
        self.timed = timed
        self.size = 5 + (CP56_SIZE if timed else 0)

    def encode(self, element: SetpointFloat) -> bytes:
        return (_FLOAT.pack(element.value)
                + bytes((_qos(element.ql, element.select),))
                + _encode_time(element, self.timed))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[SetpointFloat, int]:
        raw = self._need(data, offset, self.size)
        element = SetpointFloat(
            value=_FLOAT.unpack_from(raw)[0],
            ql=raw[4] & 0x7F,
            select=bool(raw[4] & 0x80),
            time=CP56Time2a.decode(raw, 5) if self.timed else None)
        return element, self.size


class _Bitstring32CommandCodec(ElementCodec[Bitstring32Command]):
    element_type = Bitstring32Command

    def __init__(self, timed: bool = False):
        self.timed = timed
        self.size = 4 + (CP56_SIZE if timed else 0)

    def encode(self, element: Bitstring32Command) -> bytes:
        return _UINT32.pack(element.bits) + _encode_time(element, self.timed)

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[Bitstring32Command, int]:
        raw = self._need(data, offset, self.size)
        element = Bitstring32Command(
            bits=_UINT32.unpack_from(raw)[0],
            time=CP56Time2a.decode(raw, 4) if self.timed else None)
        return element, self.size


class _EndOfInitCodec(ElementCodec[EndOfInitialization]):
    element_type = EndOfInitialization
    size = 1

    def encode(self, element: EndOfInitialization) -> bytes:
        return bytes(((element.cause & 0x7F)
                      | (0x80 if element.after_parameter_change else 0),))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[EndOfInitialization, int]:
        raw = self._need(data, offset, self.size)
        return (EndOfInitialization(
            cause=raw[0] & 0x7F,
            after_parameter_change=bool(raw[0] & 0x80)), self.size)


class _InterrogationCodec(ElementCodec[InterrogationCommand]):
    element_type = InterrogationCommand
    size = 1

    def encode(self, element: InterrogationCommand) -> bytes:
        return bytes((element.qoi,))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[InterrogationCommand, int]:
        raw = self._need(data, offset, self.size)
        return InterrogationCommand(qoi=raw[0]), self.size


class _CounterInterrogationCodec(ElementCodec[CounterInterrogationCommand]):
    element_type = CounterInterrogationCommand
    size = 1

    def encode(self, element: CounterInterrogationCommand) -> bytes:
        return bytes(((element.request & 0x3F)
                      | ((element.freeze & 0x03) << 6),))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[CounterInterrogationCommand, int]:
        raw = self._need(data, offset, self.size)
        return (CounterInterrogationCommand(
            request=raw[0] & 0x3F, freeze=(raw[0] >> 6) & 0x03), self.size)


class _ReadCommandCodec(ElementCodec[ReadCommand]):
    element_type = ReadCommand
    size = 0

    def encode(self, element: ReadCommand) -> bytes:
        return b""

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[ReadCommand, int]:
        return ReadCommand(), 0


class _ClockSyncCodec(ElementCodec[ClockSyncCommand]):
    element_type = ClockSyncCommand
    size = CP56_SIZE
    timed = True

    def encode(self, element: ClockSyncCommand) -> bytes:
        return element.time.encode()

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[ClockSyncCommand, int]:
        self._need(data, offset, self.size)
        return (ClockSyncCommand(time=CP56Time2a.decode(data, offset)),
                self.size)


class _ResetProcessCodec(ElementCodec[ResetProcessCommand]):
    element_type = ResetProcessCommand
    size = 1

    def encode(self, element: ResetProcessCommand) -> bytes:
        return bytes((element.qrp,))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[ResetProcessCommand, int]:
        raw = self._need(data, offset, self.size)
        return ResetProcessCommand(qrp=raw[0]), self.size


class _TestCommandCodec(ElementCodec[TestCommand]):
    element_type = TestCommand
    size = 2 + CP56_SIZE
    timed = True

    def encode(self, element: TestCommand) -> bytes:
        return struct.pack("<H", element.counter) + element.time.encode()

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[TestCommand, int]:
        raw = self._need(data, offset, self.size)
        return (TestCommand(counter=struct.unpack_from("<H", raw)[0],
                            time=CP56Time2a.decode(raw, 2)), self.size)


class _ParameterNormalizedCodec(ElementCodec[ParameterNormalized]):
    element_type = ParameterNormalized
    size = 3

    def encode(self, element: ParameterNormalized) -> bytes:
        raw = max(-32768, min(32767, int(round(element.value * 32768.0))))
        return _INT16.pack(raw) + bytes((element.qpm,))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[ParameterNormalized, int]:
        raw = self._need(data, offset, self.size)
        return (ParameterNormalized(
            value=_INT16.unpack_from(raw)[0] / 32768.0, qpm=raw[2]),
            self.size)


class _ParameterScaledCodec(ElementCodec[ParameterScaled]):
    element_type = ParameterScaled
    size = 3

    def encode(self, element: ParameterScaled) -> bytes:
        return _INT16.pack(element.value) + bytes((element.qpm,))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[ParameterScaled, int]:
        raw = self._need(data, offset, self.size)
        return (ParameterScaled(value=_INT16.unpack_from(raw)[0],
                                qpm=raw[2]), self.size)


class _ParameterFloatCodec(ElementCodec[ParameterFloat]):
    element_type = ParameterFloat
    size = 5

    def encode(self, element: ParameterFloat) -> bytes:
        return _FLOAT.pack(element.value) + bytes((element.qpm,))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[ParameterFloat, int]:
        raw = self._need(data, offset, self.size)
        return (ParameterFloat(value=_FLOAT.unpack_from(raw)[0],
                               qpm=raw[4]), self.size)


class _ParameterActivationCodec(ElementCodec[ParameterActivation]):
    element_type = ParameterActivation
    size = 1

    def encode(self, element: ParameterActivation) -> bytes:
        return bytes((element.qpa,))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[ParameterActivation, int]:
        raw = self._need(data, offset, self.size)
        return ParameterActivation(qpa=raw[0]), self.size


def _pack_u24(value: int) -> bytes:
    return bytes((value & 0xFF, (value >> 8) & 0xFF, (value >> 16) & 0xFF))


def _unpack_u24(raw: bytes, offset: int) -> int:
    return raw[offset] | (raw[offset + 1] << 8) | (raw[offset + 2] << 16)


class _FileReadyCodec(ElementCodec[FileReady]):
    element_type = FileReady
    size = 6

    def encode(self, element: FileReady) -> bytes:
        return (struct.pack("<H", element.file_name)
                + _pack_u24(element.file_length)
                + bytes((element.qualifier,)))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[FileReady, int]:
        raw = self._need(data, offset, self.size)
        return (FileReady(file_name=struct.unpack_from("<H", raw)[0],
                          file_length=_unpack_u24(raw, 2),
                          qualifier=raw[5]), self.size)


class _SectionReadyCodec(ElementCodec[SectionReady]):
    element_type = SectionReady
    size = 7

    def encode(self, element: SectionReady) -> bytes:
        return (struct.pack("<H", element.file_name)
                + bytes((element.section,))
                + _pack_u24(element.section_length)
                + bytes((element.qualifier,)))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[SectionReady, int]:
        raw = self._need(data, offset, self.size)
        return (SectionReady(file_name=struct.unpack_from("<H", raw)[0],
                             section=raw[2],
                             section_length=_unpack_u24(raw, 3),
                             qualifier=raw[6]), self.size)


class _CallFileCodec(ElementCodec[CallFile]):
    element_type = CallFile
    size = 4

    def encode(self, element: CallFile) -> bytes:
        return (struct.pack("<H", element.file_name)
                + bytes((element.section, element.qualifier)))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[CallFile, int]:
        raw = self._need(data, offset, self.size)
        return (CallFile(file_name=struct.unpack_from("<H", raw)[0],
                         section=raw[2], qualifier=raw[3]), self.size)


class _LastSectionCodec(ElementCodec[LastSection]):
    element_type = LastSection
    size = 5

    def encode(self, element: LastSection) -> bytes:
        return (struct.pack("<H", element.file_name)
                + bytes((element.section, element.qualifier,
                         element.checksum)))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[LastSection, int]:
        raw = self._need(data, offset, self.size)
        return (LastSection(file_name=struct.unpack_from("<H", raw)[0],
                            section=raw[2], qualifier=raw[3],
                            checksum=raw[4]), self.size)


class _AckFileCodec(ElementCodec[AckFile]):
    element_type = AckFile
    size = 4

    def encode(self, element: AckFile) -> bytes:
        return (struct.pack("<H", element.file_name)
                + bytes((element.section, element.qualifier)))

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[AckFile, int]:
        raw = self._need(data, offset, self.size)
        return (AckFile(file_name=struct.unpack_from("<H", raw)[0],
                        section=raw[2], qualifier=raw[3]), self.size)


class _SegmentCodec(ElementCodec[Segment]):
    element_type = Segment
    size = None  # variable

    def encode(self, element: Segment) -> bytes:
        return (struct.pack("<H", element.file_name)
                + bytes((element.section, len(element.data)))
                + element.data)

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[Segment, int]:
        head = self._need(data, offset, 4)
        los = head[3]
        raw = self._need(data, offset, 4 + los)
        return (Segment(file_name=struct.unpack_from("<H", head)[0],
                        section=head[2], data=raw[4:]), 4 + los)


class _DirectoryCodec(ElementCodec[Directory]):
    element_type = Directory
    size = 6 + CP56_SIZE
    timed = True

    def encode(self, element: Directory) -> bytes:
        return (struct.pack("<H", element.file_name)
                + _pack_u24(element.file_length)
                + bytes((element.status,))
                + element.time.encode())

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[Directory, int]:
        raw = self._need(data, offset, self.size)
        return (Directory(file_name=struct.unpack_from("<H", raw)[0],
                          file_length=_unpack_u24(raw, 2),
                          status=raw[5],
                          time=CP56Time2a.decode(raw, 6)), self.size)


class _QueryLogCodec(ElementCodec[QueryLog]):
    element_type = QueryLog
    size = 2 + 2 * CP56_SIZE
    timed = True

    def encode(self, element: QueryLog) -> bytes:
        return (struct.pack("<H", element.file_name)
                + element.start.encode() + element.stop.encode())

    def decode(self, data: bytes | memoryview,
               offset: int) -> tuple[QueryLog, int]:
        raw = self._need(data, offset, self.size)
        return (QueryLog(file_name=struct.unpack_from("<H", raw)[0],
                         start=CP56Time2a.decode(raw, 2),
                         stop=CP56Time2a.decode(raw, 9)), self.size)


#: Registry mapping each of the 54 typeIDs to its element codec.
#: The registry erases each codec's element parameter: a lookup
#: keyed by a runtime TypeID cannot be statically precise.
ELEMENT_CODECS: dict[TypeID, ElementCodec[Any]] = {
    TypeID.M_SP_NA_1: _SinglePointCodec(),
    TypeID.M_DP_NA_1: _DoublePointCodec(),
    TypeID.M_ST_NA_1: _StepPositionCodec(),
    TypeID.M_BO_NA_1: _Bitstring32Codec(),
    TypeID.M_ME_NA_1: _NormalizedCodec(),
    TypeID.M_ME_NB_1: _ScaledCodec(),
    TypeID.M_ME_NC_1: _ShortFloatCodec(),
    TypeID.M_IT_NA_1: _IntegratedTotalsCodec(),
    TypeID.M_PS_NA_1: _PackedSinglePointsCodec(),
    TypeID.M_ME_ND_1: _NormalizedCodec(with_quality=False),
    TypeID.M_SP_TB_1: _SinglePointCodec(timed=True),
    TypeID.M_DP_TB_1: _DoublePointCodec(timed=True),
    TypeID.M_ST_TB_1: _StepPositionCodec(timed=True),
    TypeID.M_BO_TB_1: _Bitstring32Codec(timed=True),
    TypeID.M_ME_TD_1: _NormalizedCodec(timed=True),
    TypeID.M_ME_TE_1: _ScaledCodec(timed=True),
    TypeID.M_ME_TF_1: _ShortFloatCodec(timed=True),
    TypeID.M_IT_TB_1: _IntegratedTotalsCodec(timed=True),
    TypeID.M_EP_TD_1: _ProtectionEventCodec(),
    TypeID.M_EP_TE_1: _ProtectionStartCodec(),
    TypeID.M_EP_TF_1: _ProtectionOutputCodec(),
    TypeID.C_SC_NA_1: _SingleCommandCodec(),
    TypeID.C_DC_NA_1: _DoubleCommandCodec(),
    TypeID.C_RC_NA_1: _RegulatingStepCodec(),
    TypeID.C_SE_NA_1: _SetpointNormalizedCodec(),
    TypeID.C_SE_NB_1: _SetpointScaledCodec(),
    TypeID.C_SE_NC_1: _SetpointFloatCodec(),
    TypeID.C_BO_NA_1: _Bitstring32CommandCodec(),
    TypeID.C_SC_TA_1: _SingleCommandCodec(timed=True),
    TypeID.C_DC_TA_1: _DoubleCommandCodec(timed=True),
    TypeID.C_RC_TA_1: _RegulatingStepCodec(timed=True),
    TypeID.C_SE_TA_1: _SetpointNormalizedCodec(timed=True),
    TypeID.C_SE_TB_1: _SetpointScaledCodec(timed=True),
    TypeID.C_SE_TC_1: _SetpointFloatCodec(timed=True),
    TypeID.C_BO_TA_1: _Bitstring32CommandCodec(timed=True),
    TypeID.M_EI_NA_1: _EndOfInitCodec(),
    TypeID.C_IC_NA_1: _InterrogationCodec(),
    TypeID.C_CI_NA_1: _CounterInterrogationCodec(),
    TypeID.C_RD_NA_1: _ReadCommandCodec(),
    TypeID.C_CS_NA_1: _ClockSyncCodec(),
    TypeID.C_RP_NA_1: _ResetProcessCodec(),
    TypeID.C_TS_TA_1: _TestCommandCodec(),
    TypeID.P_ME_NA_1: _ParameterNormalizedCodec(),
    TypeID.P_ME_NB_1: _ParameterScaledCodec(),
    TypeID.P_ME_NC_1: _ParameterFloatCodec(),
    TypeID.P_AC_NA_1: _ParameterActivationCodec(),
    TypeID.F_FR_NA_1: _FileReadyCodec(),
    TypeID.F_SR_NA_1: _SectionReadyCodec(),
    TypeID.F_SC_NA_1: _CallFileCodec(),
    TypeID.F_LS_NA_1: _LastSectionCodec(),
    TypeID.F_AF_NA_1: _AckFileCodec(),
    TypeID.F_SG_NA_1: _SegmentCodec(),
    TypeID.F_DR_TA_1: _DirectoryCodec(),
    TypeID.F_SC_NB_1: _QueryLogCodec(),
}


def codec_for(type_id: TypeID) -> ElementCodec[Any]:
    """Return the element codec for ``type_id``."""
    return ELEMENT_CODECS[type_id]


def strip_time(element):
    """Return a copy of ``element`` with its time tag removed (if any)."""
    if getattr(element, "time", None) is None:
        return element
    return replace(element, time=None)


def with_time(element, time: CP56Time2a):
    """Return a copy of ``element`` carrying ``time``."""
    return replace(element, time=time)
