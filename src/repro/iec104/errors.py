"""Exception hierarchy for the IEC 60870-5-104 codec.

Every decoding failure raises a subclass of :class:`IEC104Error` carrying
enough context (offset, raw bytes) to support the compliance analysis of
Section 6.1 of the paper, where malformed packets must be *explained*,
not merely rejected.
"""

from __future__ import annotations


class IEC104Error(Exception):
    """Base class for all IEC 104 protocol errors."""


class FramingError(IEC104Error):
    """The APCI framing is invalid (bad start byte or length)."""

    def __init__(self, message: str, offset: int = 0):
        super().__init__(message)
        self.offset = offset


class TruncatedError(IEC104Error):
    """The buffer ended before a complete APDU could be read."""

    def __init__(self, message: str, needed: int = 0, available: int = 0):
        super().__init__(message)
        self.needed = needed
        self.available = available


class ControlFieldError(IEC104Error):
    """The 4-octet APCI control field does not match any APDU format."""


class UnknownTypeIDError(IEC104Error):
    """The ASDU type identification octet is not an IEC 104 typeID."""

    def __init__(self, type_id: int):
        super().__init__(f"unknown ASDU typeID {type_id}")
        self.type_id = type_id


class MalformedASDUError(IEC104Error):
    """The ASDU body cannot be decoded with the active link profile.

    This is the error a standard-compliant parser (e.g. Wireshark) raises
    on the non-compliant packets of Section 6.1; the tolerant parser
    recovers from it by switching link profiles.
    """

    def __init__(self, message: str, *, type_id: int | None = None,
                 trailing: int = 0):
        super().__init__(message)
        self.type_id = type_id
        #: Number of undecoded octets left in the ASDU (positive when the
        #: profile consumed too little, indicating field-width mismatch).
        self.trailing = trailing


class InvalidIOAError(MalformedASDUError):
    """An information object address is outside the valid range."""


class SequenceError(IEC104Error):
    """A send/receive sequence number violated the protocol window."""


class StateError(IEC104Error):
    """An APDU arrived that is illegal in the current connection state."""
