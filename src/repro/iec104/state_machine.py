"""IEC 104 connection state machine.

Models one endpoint's view of an established TCP connection: the
STOPDT/STARTDT data-transfer state, the 15-bit send/receive sequence
numbers, the k (unacknowledged-send) and w (receive-before-ack) windows,
and the timers T1-T3 described in Section 4 of the paper. Newly
established connections start in the STOPDT state, as the standard (and
the paper) specify.

The machine is event-driven and time-explicit: callers pass the current
time to :meth:`on_send`/:meth:`on_receive`/:meth:`poll` and act on the
returned :class:`Action` hints, which keeps the machine reusable both by
the discrete-event simulator and by tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .apci import (APDU, SEQ_MODULO, IFrame, SFrame, UFrame)
from .constants import DEFAULT_K, DEFAULT_W, ProtocolTimers, UFunction
from .errors import SequenceError, StateError


class TransferState(enum.Enum):
    """Data-transfer state of a connection (per direction-independent)."""

    STOPPED = "STOPDT"   # default after connect / switchover
    PENDING_START = "STARTDT sent, awaiting con"
    STARTED = "STARTDT"
    PENDING_STOP = "STOPDT sent, awaiting con"


class ActionKind(enum.Enum):
    """What the caller should do in response to machine events."""

    SEND_S_ACK = "send S-format acknowledgement"
    SEND_TESTFR_ACT = "send TESTFR act keep-alive"
    SEND_TESTFR_CON = "send TESTFR con"
    SEND_STARTDT_CON = "send STARTDT con"
    SEND_STOPDT_CON = "send STOPDT con"
    CLOSE_CONNECTION = "close connection (T1 expired)"


@dataclass(frozen=True)
class Action:
    kind: ActionKind
    #: Receive sequence number to place in an S-format frame, if any.
    recv_seq: int | None = None


def seq_distance(older: int, newer: int) -> int:
    """Forward distance from ``older`` to ``newer`` modulo 2^15."""
    return (newer - older) % SEQ_MODULO


@dataclass
class ConnectionMachine:
    """One endpoint of an IEC 104 connection.

    ``is_controlling`` marks the controlling station (the SCADA/control
    server); only the controlling station may send STARTDT/STOPDT acts.
    """

    is_controlling: bool = False
    timers: ProtocolTimers = field(default_factory=ProtocolTimers)
    k: int = DEFAULT_K
    w: int = DEFAULT_W

    state: TransferState = TransferState.STOPPED
    send_seq: int = 0                 # V(S): next N(S) we will send
    recv_seq: int = 0                 # V(R): next N(S) we expect
    acked_seq: int = 0                # highest N(S) of ours acknowledged
    unacked_received: int = 0         # I-frames received since our last ack

    # Timer bookkeeping (absolute times; None = not running)
    _t1_deadline: float | None = None
    _t2_deadline: float | None = None
    _t3_deadline: float | None = None
    _testfr_outstanding: bool = False

    def __post_init__(self) -> None:
        if self.k < 1 or self.w < 1:
            raise ValueError("k and w must be >= 1")
        if self.w > self.k:
            raise ValueError("w must be <= k (standard recommendation)")

    # -- queries ----------------------------------------------------------

    @property
    def unacked_sent(self) -> int:
        """Number of our I-frames not yet acknowledged by the peer."""
        return seq_distance(self.acked_seq, self.send_seq)

    @property
    def can_send_i(self) -> bool:
        """True when an I-frame may be sent (state + k window)."""
        return (self.state is TransferState.STARTED
                and self.unacked_sent < self.k)

    # -- outbound ----------------------------------------------------------

    def next_i_frame(self, asdu) -> IFrame:
        """Build (and account for) the next outgoing I-frame."""
        if self.state is not TransferState.STARTED:
            raise StateError(
                f"cannot send I-format in state {self.state.value}")
        if self.unacked_sent >= self.k:
            raise SequenceError(
                f"send window full: {self.unacked_sent} unacked >= k="
                f"{self.k}")
        frame = IFrame(asdu=asdu, send_seq=self.send_seq,
                       recv_seq=self.recv_seq)
        self.send_seq = (self.send_seq + 1) % SEQ_MODULO
        return frame

    def start_transfer(self) -> UFrame:
        """Controlling station: request STARTDT."""
        if not self.is_controlling:
            raise StateError("only the controlling station sends "
                             "STARTDT act")
        if self.state is not TransferState.STOPPED:
            raise StateError(f"STARTDT act illegal in {self.state.value}")
        self.state = TransferState.PENDING_START
        return UFrame(UFunction.STARTDT_ACT)

    def stop_transfer(self) -> UFrame:
        """Controlling station: request STOPDT."""
        if not self.is_controlling:
            raise StateError("only the controlling station sends STOPDT act")
        if self.state is not TransferState.STARTED:
            raise StateError(f"STOPDT act illegal in {self.state.value}")
        self.state = TransferState.PENDING_STOP
        return UFrame(UFunction.STOPDT_ACT)

    def on_send(self, frame: APDU, now: float) -> None:
        """Account for a frame we transmitted at time ``now``."""
        self._t3_deadline = now + self.timers.t3
        if isinstance(frame, IFrame):
            self._t1_deadline = now + self.timers.t1
            self.unacked_received = 0
            self._t2_deadline = None
        elif isinstance(frame, SFrame):
            self.unacked_received = 0
            self._t2_deadline = None
        elif isinstance(frame, UFrame):
            if frame.function is UFunction.TESTFR_ACT:
                self._testfr_outstanding = True
                self._t1_deadline = now + self.timers.t1

    # -- inbound -----------------------------------------------------------

    def on_receive(self, frame: APDU, now: float) -> list[Action]:
        """Process a received frame; return actions the caller must take."""
        actions: list[Action] = []
        self._t3_deadline = now + self.timers.t3

        if isinstance(frame, IFrame):
            if self.state not in (TransferState.STARTED,
                                  TransferState.PENDING_STOP):
                raise StateError(
                    f"I-format received in state {self.state.value}")
            if frame.send_seq != self.recv_seq:
                raise SequenceError(
                    f"expected N(S)={self.recv_seq}, got {frame.send_seq}")
            self.recv_seq = (self.recv_seq + 1) % SEQ_MODULO
            self._apply_ack(frame.recv_seq)
            self.unacked_received += 1
            if self.unacked_received >= self.w:
                actions.append(Action(ActionKind.SEND_S_ACK,
                                      recv_seq=self.recv_seq))
            elif self._t2_deadline is None:
                self._t2_deadline = now + self.timers.t2
            return actions

        if isinstance(frame, SFrame):
            self._apply_ack(frame.recv_seq)
            return actions

        function = frame.function
        if function is UFunction.STARTDT_ACT:
            if self.is_controlling:
                raise StateError("controlled station sent STARTDT act")
            self.state = TransferState.STARTED
            actions.append(Action(ActionKind.SEND_STARTDT_CON))
        elif function is UFunction.STARTDT_CON:
            if self.state is not TransferState.PENDING_START:
                raise StateError("unexpected STARTDT con")
            self.state = TransferState.STARTED
        elif function is UFunction.STOPDT_ACT:
            if self.is_controlling:
                raise StateError("controlled station sent STOPDT act")
            self.state = TransferState.STOPPED
            actions.append(Action(ActionKind.SEND_STOPDT_CON))
        elif function is UFunction.STOPDT_CON:
            if self.state is not TransferState.PENDING_STOP:
                raise StateError("unexpected STOPDT con")
            self.state = TransferState.STOPPED
        elif function is UFunction.TESTFR_ACT:
            actions.append(Action(ActionKind.SEND_TESTFR_CON))
        elif function is UFunction.TESTFR_CON:
            self._testfr_outstanding = False
            self._t1_deadline = None
        return actions

    def _apply_ack(self, recv_seq: int) -> None:
        advance = seq_distance(self.acked_seq, recv_seq)
        if advance > self.unacked_sent:
            raise SequenceError(
                f"ack N(R)={recv_seq} acknowledges unsent frames "
                f"(acked={self.acked_seq}, sent={self.send_seq})")
        self.acked_seq = recv_seq
        if self.unacked_sent == 0:
            self._t1_deadline = None

    # -- timers ------------------------------------------------------------

    def poll(self, now: float) -> list[Action]:
        """Check timers at time ``now``; return required actions.

        * T1 expiry → close the connection (triggers switchover).
        * T2 expiry → send an S-format acknowledgement.
        * T3 expiry → send a TESTFR act keep-alive.
        """
        actions: list[Action] = []
        if self._t1_deadline is not None and now >= self._t1_deadline:
            actions.append(Action(ActionKind.CLOSE_CONNECTION))
            self._t1_deadline = None
            return actions
        if (self._t2_deadline is not None and now >= self._t2_deadline
                and self.unacked_received > 0):
            actions.append(Action(ActionKind.SEND_S_ACK,
                                  recv_seq=self.recv_seq))
            self._t2_deadline = None
        if (self._t3_deadline is not None and now >= self._t3_deadline
                and not self._testfr_outstanding):
            actions.append(Action(ActionKind.SEND_TESTFR_ACT))
            self._t3_deadline = None
        return actions

    def connection_opened(self, now: float) -> None:
        """Reset state for a freshly established TCP connection."""
        self.state = TransferState.STOPPED
        self.send_seq = 0
        self.recv_seq = 0
        self.acked_seq = 0
        self.unacked_received = 0
        self._t1_deadline = None
        self._t2_deadline = None
        self._t3_deadline = now + self.timers.t3
        self._testfr_outstanding = False
