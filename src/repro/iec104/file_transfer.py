"""IEC 104 file transfer (typeIDs 120-127).

Implements the standard's file-transfer choreography on top of the
endpoint layer — the mechanism real RTUs use to ship disturbance
records and event logs to the control center:

    master: F_SC_NA_1 (call directory)        ->
    rtu:    F_DR_TA_1 (directory entries)     <-
    master: F_SC_NA_1 (select file)           ->
    rtu:    F_FR_NA_1 (file ready)            <-
    master: F_SC_NA_1 (call file)             ->
    rtu:    F_SR_NA_1 (section ready)         <-
    master: F_SC_NA_1 (call section)          ->
    rtu:    F_SG_NA_1 * n (segments)          <-
    rtu:    F_LS_NA_1 (last segment, checksum)<-
    master: F_AF_NA_1 (ack section/file)      ->

The paper's Table 5 lists these typeIDs (never observed in its
captures — file transfer is rare, operator-initiated traffic), and the
codec layer already round-trips them; this module adds the service
logic so the endpoints form a complete implementation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .asdu import ASDU, InformationObject
from .constants import Cause, TypeID
from .endpoint import MasterEndpoint, OutstationEndpoint
from .errors import IEC104Error
from .information_elements import (AckFile, CallFile, Directory,
                                   FileReady, LastSection, SectionReady,
                                   Segment)
from .time_tag import CP56Time2a

#: Maximum payload octets per F_SG segment (fits the 253-octet APDU).
SEGMENT_SIZE = 200

#: SCQ values for F_SC_NA_1 (select-and-call qualifier).
SCQ_SELECT_FILE = 1
SCQ_CALL_FILE = 2
SCQ_CALL_SECTION = 6
#: Call directory uses the reserved file name 0 with SCQ select.
DIRECTORY_IOA = 0


def file_checksum(data: bytes) -> int:
    """Modulo-256 sum, the CHS of F_LS_NA_1."""
    return sum(data) & 0xFF


@dataclass(frozen=True)
class StoredFile:
    """One file held by an outstation (e.g. a disturbance record)."""

    name: int            # NOF, 16-bit file identifier
    data: bytes
    created: CP56Time2a = field(default_factory=CP56Time2a)

    def __post_init__(self) -> None:
        if not 0 < self.name <= 0xFFFF:
            raise ValueError("file name must be a 16-bit id > 0")


class FileServer:
    """Attach file service behaviour to an :class:`OutstationEndpoint`.

    Files live at a dedicated IOA; the standard transfers one section
    per file here (ample for disturbance records of a few kB)."""

    def __init__(self, outstation: OutstationEndpoint,
                 files_ioa: int = 1):
        self.outstation = outstation
        self.files_ioa = files_ioa
        self._files: dict[int, StoredFile] = {}
        previous = outstation.on_command
        outstation.on_command = self._dispatch(previous)

    def add_file(self, stored: StoredFile) -> None:
        self._files[stored.name] = stored

    def remove_file(self, name: int) -> None:
        del self._files[name]

    @property
    def file_count(self) -> int:
        return len(self._files)

    # -- protocol ----------------------------------------------------------

    def _send(self, type_id: TypeID, element, cause: Cause,
              ioa: int | None = None, negative: bool = False) -> None:
        asdu = ASDU(type_id=type_id, cause=cause, negative=negative,
                    common_address=self.outstation.common_address,
                    objects=(InformationObject(
                        self.files_ioa if ioa is None else ioa,
                        element),))
        self.outstation._send(
            self.outstation.machine.next_i_frame(asdu))

    def _dispatch(self, previous):
        def handle(asdu: ASDU) -> None:
            if asdu.type_id is TypeID.F_SC_NA_1:
                self._handle_call(asdu)
            elif asdu.type_id is TypeID.F_AF_NA_1:
                pass  # ack of a completed transfer; nothing to do
            elif previous is not None:
                previous(asdu)
        return handle

    def _handle_call(self, asdu: ASDU) -> None:
        request: CallFile = asdu.objects[0].element
        if request.file_name == DIRECTORY_IOA:
            self._send_directory()
            return
        stored = self._files.get(request.file_name)
        if stored is None:
            self._send(TypeID.F_SC_NA_1,
                       CallFile(file_name=request.file_name,
                                qualifier=request.qualifier),
                       cause=Cause.UNKNOWN_IOA, negative=True)
            return
        if request.qualifier == SCQ_SELECT_FILE:
            self._send(TypeID.F_FR_NA_1,
                       FileReady(file_name=stored.name,
                                 file_length=len(stored.data)),
                       cause=Cause.FILE_TRANSFER)
        elif request.qualifier == SCQ_CALL_FILE:
            self._send(TypeID.F_SR_NA_1,
                       SectionReady(file_name=stored.name, section=1,
                                    section_length=len(stored.data)),
                       cause=Cause.FILE_TRANSFER)
        elif request.qualifier == SCQ_CALL_SECTION:
            self._send_section(stored)

    def _send_directory(self) -> None:
        for stored in sorted(self._files.values(),
                             key=lambda f: f.name):
            self._send(TypeID.F_DR_TA_1,
                       Directory(file_name=stored.name,
                                 file_length=len(stored.data),
                                 time=stored.created),
                       cause=Cause.FILE_TRANSFER)

    def _send_section(self, stored: StoredFile) -> None:
        for offset in range(0, len(stored.data), SEGMENT_SIZE):
            chunk = stored.data[offset:offset + SEGMENT_SIZE]
            self._send(TypeID.F_SG_NA_1,
                       Segment(file_name=stored.name, section=1,
                               data=chunk),
                       cause=Cause.FILE_TRANSFER)
        self._send(TypeID.F_LS_NA_1,
                   LastSection(file_name=stored.name, section=1,
                               qualifier=1,
                               checksum=file_checksum(stored.data)),
                   cause=Cause.FILE_TRANSFER)


class TransferState(enum.Enum):
    IDLE = "idle"
    AWAITING_READY = "awaiting file ready"
    AWAITING_SECTION = "awaiting section ready"
    RECEIVING = "receiving segments"
    COMPLETE = "complete"
    FAILED = "failed"


@dataclass
class ReceivedFile:
    name: int
    data: bytes
    checksum_ok: bool


class FileClient:
    """Attach file retrieval to a :class:`MasterEndpoint`."""

    def __init__(self, master: MasterEndpoint, files_ioa: int = 1,
                 common_address: int = 1):
        self.master = master
        self.files_ioa = files_ioa
        self.common_address = common_address
        self.state = TransferState.IDLE
        self.directory: list[Directory] = []
        self.received: list[ReceivedFile] = []
        self._buffer = bytearray()
        self._current: int | None = None
        previous = master._handle_asdu
        master._handle_asdu = self._wrap(previous)

    def _wrap(self, previous):
        def handle(asdu: ASDU) -> None:
            if asdu.type_id is TypeID.F_DR_TA_1:
                self.directory.append(asdu.objects[0].element)
            elif asdu.type_id is TypeID.F_FR_NA_1:
                self._on_file_ready(asdu.objects[0].element)
            elif asdu.type_id is TypeID.F_SR_NA_1:
                self._on_section_ready(asdu.objects[0].element)
            elif asdu.type_id is TypeID.F_SG_NA_1:
                self._buffer.extend(asdu.objects[0].element.data)
            elif asdu.type_id is TypeID.F_LS_NA_1:
                self._on_last_section(asdu.objects[0].element)
            elif asdu.type_id is TypeID.F_SC_NA_1 and asdu.negative:
                self.state = TransferState.FAILED
            else:
                previous(asdu)
        return handle

    # -- requests ------------------------------------------------------------

    def _call(self, file_name: int, qualifier: int) -> None:
        if not self.master.started:
            raise IEC104Error("data transfer not started")
        self.master.send_command(
            TypeID.F_SC_NA_1, self.files_ioa,
            CallFile(file_name=file_name, qualifier=qualifier),
            common_address=self.common_address)

    def request_directory(self) -> None:
        self.directory = []
        self._call(DIRECTORY_IOA, SCQ_SELECT_FILE)

    def request_file(self, file_name: int) -> None:
        if self.state not in (TransferState.IDLE, TransferState.COMPLETE,
                              TransferState.FAILED):
            raise IEC104Error(f"transfer already running: {self.state}")
        self._current = file_name
        self._buffer = bytearray()
        self.state = TransferState.AWAITING_READY
        self._call(file_name, SCQ_SELECT_FILE)

    # -- responses -------------------------------------------------------------

    def _on_file_ready(self, ready: FileReady) -> None:
        if ready.file_name != self._current:
            return
        self.state = TransferState.AWAITING_SECTION
        self._call(ready.file_name, SCQ_CALL_FILE)

    def _on_section_ready(self, ready: SectionReady) -> None:
        if ready.file_name != self._current:
            return
        self.state = TransferState.RECEIVING
        self._call(ready.file_name, SCQ_CALL_SECTION)

    def _on_last_section(self, last: LastSection) -> None:
        if last.file_name != self._current:
            return
        data = bytes(self._buffer)
        ok = file_checksum(data) == last.checksum
        self.received.append(ReceivedFile(name=last.file_name,
                                          data=data, checksum_ok=ok))
        self.state = (TransferState.COMPLETE if ok
                      else TransferState.FAILED)
        self.master.send_command(
            TypeID.F_AF_NA_1, self.files_ioa,
            AckFile(file_name=last.file_name, section=1,
                    qualifier=1 if ok else 4),
            common_address=self.common_address)
