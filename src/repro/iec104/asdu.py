"""Application Service Data Unit (ASDU) model and codec.

An ASDU is the payload of an I-format APDU: a Data Unit Identifier
(typeID, variable structure qualifier, cause of transmission, common
address) followed by one or more information objects (Fig. 3 of the
paper). Encoding and decoding are parameterized by a
:class:`~repro.iec104.profiles.LinkProfile` so that the legacy
non-compliant field widths of Section 6.1 can be produced and consumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from .constants import _TYPE_TOKENS, Cause, TypeID
from .errors import InvalidIOAError, MalformedASDUError, UnknownTypeIDError
from .information_elements import (ELEMENT_CODECS, InformationElement,
                                   codec_for)
from .profiles import STANDARD_PROFILE, LinkProfile

#: Maximum number of information objects in one ASDU (7-bit VSQ count).
MAX_OBJECTS = 127

#: Value→member lookup tables for the decode hot path: a dict probe is
#: several times cheaper than the enum ``__call__`` protocol (which
#: runs ``__new__``/missing-handling per conversion).
_TYPE_BY_VALUE = {int(member): member for member in TypeID}
_CAUSE_BY_VALUE = {int(member): member for member in Cause}


@dataclass(frozen=True)
class InformationObject:
    """One information object: an address plus its information element."""

    address: int
    element: InformationElement

    def __post_init__(self) -> None:
        if self.address < 0:
            raise InvalidIOAError(f"negative IOA {self.address}")


@dataclass(frozen=True)
class ASDU:
    """A decoded (or to-be-encoded) ASDU.

    ``sequential`` is the VSQ SQ bit: when True the information objects
    share a single on-wire IOA and occupy consecutive addresses.
    ``negative`` is the P/N bit and ``test`` the T bit of the COT octet.
    """

    type_id: TypeID
    cause: Cause
    common_address: int
    objects: tuple[InformationObject, ...]
    sequential: bool = False
    negative: bool = False
    test: bool = False
    originator: int = 0

    def __post_init__(self) -> None:
        if not self.objects:
            raise MalformedASDUError("ASDU must carry >= 1 information "
                                     "object", type_id=int(self.type_id))
        if len(self.objects) > MAX_OBJECTS:
            raise MalformedASDUError(
                f"ASDU carries {len(self.objects)} > {MAX_OBJECTS} objects",
                type_id=int(self.type_id))
        if not 0 <= self.originator <= 255:
            raise ValueError("originator address out of range")
        if self.common_address < 0:
            raise ValueError("common address must be >= 0")
        if self.sequential:
            addresses = [obj.address for obj in self.objects]
            expected = list(range(addresses[0],
                                  addresses[0] + len(addresses)))
            if addresses != expected:
                raise MalformedASDUError(
                    "sequential ASDU requires consecutive IOAs",
                    type_id=int(self.type_id))
        codec = ELEMENT_CODECS[self.type_id]
        for obj in self.objects:
            if not isinstance(obj.element, codec.element_type):
                raise MalformedASDUError(
                    f"typeID {self.type_id.name} requires "
                    f"{codec.element_type.__name__}, got "
                    f"{type(obj.element).__name__}",
                    type_id=int(self.type_id))

    @property
    def token(self) -> str:
        """Paper Table 4 token, e.g. ``I36``."""
        # Direct table probe: this sits on the per-event analyzer hot
        # path, where the ``type_id.token`` property hop shows up.
        return _TYPE_TOKENS[self.type_id]

    @property
    def is_command(self) -> bool:
        """True for control-direction typeIDs (C_*, P_* and the file
        transfer family F_*)."""
        return self.type_id.name.startswith(("C_", "P_", "F_"))

    def encode(self, profile: LinkProfile = STANDARD_PROFILE) -> bytes:
        """Serialize the ASDU under ``profile`` field widths."""
        for obj in self.objects:
            if obj.address > profile.max_ioa:
                raise InvalidIOAError(
                    f"IOA {obj.address} exceeds profile maximum "
                    f"{profile.max_ioa}")
        if self.common_address > profile.max_common_address:
            raise ValueError("common address exceeds profile maximum")

        vsq = len(self.objects) | (0x80 if self.sequential else 0)
        cot = (int(self.cause)
               | (0x40 if self.negative else 0)
               | (0x80 if self.test else 0))
        out = bytearray((int(self.type_id), vsq, cot))
        if profile.cot_length == 2:
            out.append(self.originator)
        out += self.common_address.to_bytes(
            profile.common_address_length, "little")

        codec = codec_for(self.type_id)
        if self.sequential:
            out += self.objects[0].address.to_bytes(profile.ioa_length,
                                                    "little")
            for obj in self.objects:
                out += codec.encode(obj.element)
        else:
            for obj in self.objects:
                out += obj.address.to_bytes(profile.ioa_length, "little")
                out += codec.encode(obj.element)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes | memoryview,
               profile: LinkProfile = STANDARD_PROFILE) -> "ASDU":
        """Parse an ASDU under ``profile`` field widths.

        Raises :class:`MalformedASDUError` when the body does not decode
        cleanly — including when octets remain after the declared number
        of objects, the signal the compliance analyzer uses to infer that
        the wrong profile is in use.
        """
        # Hot path: keep bytes input as-is (slice-free header reads);
        # memoryview input is materialized once.
        view = data if isinstance(data, bytes) else bytes(data)
        cot_length = profile.cot_length
        ca_length = profile.common_address_length
        ioa_length = profile.ioa_length
        header = 2 + cot_length + ca_length
        size = len(view)
        if size < header:
            raise MalformedASDUError(
                f"ASDU shorter than DUI: {size} < {header} octets")

        raw_type = view[0]
        type_id = _TYPE_BY_VALUE.get(raw_type)
        if type_id is None:
            raise UnknownTypeIDError(raw_type)

        count = view[1] & 0x7F
        sequential = view[1] > 0x7F
        if count == 0:
            raise MalformedASDUError("VSQ object count is zero",
                                     type_id=raw_type)

        raw_cause = view[2] & 0x3F
        negative = bool(view[2] & 0x40)
        test = view[2] > 0x7F
        cause = _CAUSE_BY_VALUE.get(raw_cause)
        if cause is None:
            raise MalformedASDUError(
                f"invalid cause of transmission {raw_cause}",
                type_id=raw_type)
        originator = view[3] if cot_length == 2 else 0

        offset = 2 + cot_length
        if ca_length == 2:
            common_address = view[offset] | view[offset + 1] << 8
        else:
            common_address = int.from_bytes(
                view[offset:offset + ca_length], "little")
        offset = header

        codec = codec_for(type_id)
        decode_element = codec.decode
        # Trusted-wire construction: every ``__post_init__`` invariant
        # of InformationObject and ASDU is guaranteed here by
        # construction — the IOA is an unsigned little-endian read, the
        # count is 1..127 (7-bit VSQ, zero rejected above), the
        # originator is one raw octet, sequential addresses are built
        # as base+index, and the codec only produces its own element
        # type. Building via ``object.__new__`` skips re-validating
        # what the wire already proves, which is most of the per-frame
        # cost on the streaming path.
        new = object.__new__
        objects: list[InformationObject] = []
        append = objects.append
        if sequential:
            if size < offset + ioa_length:
                raise MalformedASDUError("truncated sequential IOA",
                                         type_id=raw_type)
            base = int.from_bytes(view[offset:offset + ioa_length],
                                  "little")
            offset += ioa_length
            for index in range(count):
                element, consumed = decode_element(view, offset)
                offset += consumed
                obj = new(InformationObject)
                fields = obj.__dict__
                fields["address"] = base + index
                fields["element"] = element
                append(obj)
        elif count == 1:
            # Single-object fast path (the dominant ASDU shape in the
            # paper's traffic): no loop machinery.
            end = offset + ioa_length
            if size < end:
                raise MalformedASDUError("truncated IOA",
                                         type_id=raw_type)
            if ioa_length == 3:
                address = (view[offset] | view[offset + 1] << 8
                           | view[offset + 2] << 16)
            elif ioa_length == 2:
                address = view[offset] | view[offset + 1] << 8
            else:
                address = view[offset]
            element, consumed = decode_element(view, end)
            offset = end + consumed
            obj = new(InformationObject)
            fields = obj.__dict__
            fields["address"] = address
            fields["element"] = element
            append(obj)
        else:
            for _ in range(count):
                end = offset + ioa_length
                if size < end:
                    raise MalformedASDUError("truncated IOA",
                                             type_id=raw_type)
                if ioa_length == 3:
                    address = (view[offset] | view[offset + 1] << 8
                               | view[offset + 2] << 16)
                elif ioa_length == 2:
                    address = view[offset] | view[offset + 1] << 8
                else:
                    address = int.from_bytes(view[offset:end], "little")
                offset = end
                element, consumed = decode_element(view, offset)
                offset += consumed
                obj = new(InformationObject)
                fields = obj.__dict__
                fields["address"] = address
                fields["element"] = element
                append(obj)

        if offset != size:
            raise MalformedASDUError(
                f"{size - offset} trailing octets after "
                f"{count} information objects",
                type_id=raw_type, trailing=size - offset)

        if cls is ASDU:
            asdu = new(ASDU)
            fields = asdu.__dict__
            fields["type_id"] = type_id
            fields["cause"] = cause
            fields["common_address"] = common_address
            fields["objects"] = tuple(objects)
            fields["sequential"] = sequential
            fields["negative"] = negative
            fields["test"] = test
            fields["originator"] = originator
            return asdu
        return cls(type_id=type_id, cause=cause,
                   common_address=common_address, objects=tuple(objects),
                   sequential=sequential, negative=negative, test=test,
                   originator=originator)


def measurement(type_id: TypeID, address: int,
                element: InformationElement,
                cause: Cause = Cause.SPONTANEOUS,
                common_address: int = 1) -> ASDU:
    """Convenience constructor for a single-object monitor ASDU."""
    return ASDU(type_id=type_id, cause=cause, common_address=common_address,
                objects=(InformationObject(address, element),))
