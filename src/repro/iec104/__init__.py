"""IEC 60870-5-104 protocol implementation.

Public API:

* Constants and catalogs: :class:`TypeID`, :class:`Cause`,
  :class:`UFunction`, :data:`TYPE_ID_DESCRIPTIONS`,
  :data:`OBSERVED_TYPE_IDS`, :class:`ProtocolTimers`.
* Frames: :class:`IFrame`, :class:`SFrame`, :class:`UFrame`,
  :func:`decode_apdu`.
* ASDUs: :class:`ASDU`, :class:`InformationObject`, the information
  element classes, :class:`CP56Time2a`.
* Parsers: :class:`StrictParser` (standard-compliant baseline),
  :class:`TolerantParser` (the paper's profile-inferring parser),
  :class:`StreamDecoder`, :class:`LinkProfile`.
* Connection logic: :class:`ConnectionMachine`.
"""

from .apci import (APDU, SEQ_MODULO, STARTDT_ACT, STARTDT_CON, STOPDT_ACT,
                   STOPDT_CON, TESTFR_ACT, TESTFR_CON, IFrame, SFrame,
                   UFrame)
from .asdu import ASDU, InformationObject, measurement
from .codec import (ParseResult, ParserStats, StreamDecoder, StrictParser,
                    TolerantParser)
from .endpoint import (EndpointStats, MasterEndpoint,
                       OutstationEndpoint, PipeTransport,
                       ReceivedMeasurement, Transport, connect_pair)
from .gateway import GatewayMode, GatewayStats, Iec101To104Gateway
from .iec101 import (ACK_CHAR, AckFrame, Ft12Frame, IEC101_PROFILE,
                     LinkControl, LinkFunction, SerialLine, decode_frame,
                     encode_ack, encode_fixed, encode_variable)
from .redundancy import (FailoverEvent, LinkRole, RedundancyGroup)
from .socket_transport import (SocketTransport, connect_master,
                               serve_outstation, socketpair_endpoints)
from .constants import (DEFAULT_K, DEFAULT_W, IEC104_PORT,
                        OBSERVED_TYPE_IDS, TYPE_ID_DESCRIPTIONS,
                        APDUFormat, Cause, ProtocolTimers, TypeID, UFunction)
from .errors import (ControlFieldError, FramingError, IEC104Error,
                     InvalidIOAError, MalformedASDUError, SequenceError,
                     StateError, TruncatedError, UnknownTypeIDError)
from .information_elements import (GOOD, Bitstring32, Bitstring32Command,
                                   ClockSyncCommand,
                                   CounterInterrogationCommand, DoubleCommand,
                                   DoublePoint, EndOfInitialization,
                                   InformationElement, IntegratedTotals,
                                   InterrogationCommand,
                                   NormalizedValue, Quality, RegulatingStep,
                                   ScaledValue, SetpointFloat,
                                   SetpointNormalized, SetpointScaled,
                                   ShortFloat, SingleCommand, SinglePoint,
                                   StepPosition)
from .profiles import (CANDIDATE_PROFILES, FULL_IEC101_PROFILE,
                       LEGACY_COT_PROFILE, LEGACY_IOA_PROFILE,
                       STANDARD_PROFILE, LinkProfile)
from .state_machine import (Action, ActionKind, ConnectionMachine,
                            TransferState, seq_distance)
from .time_tag import CP16Time2a, CP56Time2a

#: Deprecated package-level re-exports, served lazily with a warning.
#: Callers should use the submodule (``repro.iec104.apci.decode_apdu``,
#: ``repro.iec104.codec.split_frames``) or, protocol-generically, a
#: :class:`~repro.protocols.base.ProtocolSpec`'s parser/decoder.
_DEPRECATED_EXPORTS = {
    "decode_apdu": ("repro.iec104.apci", "decode_apdu"),
    "split_frames": ("repro.iec104.codec", "split_frames"),
}


def __getattr__(name: str):
    """Serve the deprecated re-exports with a DeprecationWarning."""
    target = _DEPRECATED_EXPORTS.get(name)
    if target is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib
    import warnings
    module_name, attribute = target
    warnings.warn(
        f"importing {name!r} from {__name__!r} is deprecated; use "
        f"{module_name}.{attribute} or a ProtocolSpec's "
        "parser/decoder factories instead",
        DeprecationWarning,
        stacklevel=2)  # staticcheck: remove-in=1.3.0
    return getattr(importlib.import_module(module_name), attribute)

__all__ = [
    "APDU", "ASDU", "Action", "ActionKind", "APDUFormat",
    "Bitstring32", "Bitstring32Command", "CANDIDATE_PROFILES",
    "CP16Time2a", "CP56Time2a", "Cause", "ClockSyncCommand",
    "ConnectionMachine", "ControlFieldError",
    "CounterInterrogationCommand", "DEFAULT_K", "DEFAULT_W",
    "DoubleCommand", "DoublePoint", "EndOfInitialization",
    "ACK_CHAR", "AckFrame", "EndpointStats", "FULL_IEC101_PROFILE",
    "FailoverEvent", "FramingError", "Ft12Frame", "GatewayMode",
    "GatewayStats", "IEC101_PROFILE", "Iec101To104Gateway",
    "LinkControl", "LinkFunction", "LinkRole", "SerialLine",
    "decode_frame", "encode_ack", "encode_fixed", "encode_variable",
    "MasterEndpoint", "RedundancyGroup", "SocketTransport",
    "connect_master", "serve_outstation", "socketpair_endpoints",
    "OutstationEndpoint", "PipeTransport", "ReceivedMeasurement",
    "Transport", "connect_pair",
    "GOOD", "IEC104Error", "IEC104_PORT", "IFrame", "InformationElement",
    "InformationObject",
    "IntegratedTotals", "InterrogationCommand", "InvalidIOAError",
    "LEGACY_COT_PROFILE", "LEGACY_IOA_PROFILE", "LinkProfile",
    "MalformedASDUError", "NormalizedValue", "OBSERVED_TYPE_IDS",
    "ParseResult", "ParserStats", "ProtocolTimers", "Quality",
    "RegulatingStep", "SEQ_MODULO", "SFrame", "STANDARD_PROFILE",
    "STARTDT_ACT", "STARTDT_CON", "STOPDT_ACT", "STOPDT_CON",
    "ScaledValue", "SequenceError", "SetpointFloat", "SetpointNormalized",
    "SetpointScaled", "ShortFloat", "SingleCommand", "SinglePoint",
    "StateError", "StepPosition", "StreamDecoder", "StrictParser",
    "TESTFR_ACT", "TESTFR_CON", "TYPE_ID_DESCRIPTIONS", "TolerantParser",
    "TransferState", "TruncatedError", "TypeID", "UFrame", "UFunction",
    "UnknownTypeIDError", "decode_apdu", "measurement", "seq_distance",
    "split_frames",
]
