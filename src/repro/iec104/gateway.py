"""An IEC 101 -> IEC 104 protocol gateway.

This is the upgrade path of the paper's Table 2 rows "Updated from 101
to 104" — and the origin story of its Section 6.1 finding. A gateway
takes telecontrol ASDUs arriving over a serial FT1.2 link and re-emits
them as IEC 104 I-frames over TCP. Doing that *correctly* means
re-encoding each ASDU from IEC 101's narrow field widths (1-octet COT,
1-octet common address, 2-octet IOA) to 104's (2/2/3).

The gateway supports two modes:

* ``rewrite`` — the correct conversion: decode under the 101 profile,
  re-encode under the 104 standard profile;
* ``passthrough`` — the lazy configuration the paper caught in the
  wild: the serial ASDU bytes are wrapped in a 104 APCI *unchanged*,
  producing exactly the "malformed" frames of outstations O53/O58/O28
  (1-octet COT on the wire) that only a tolerant parser can decode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .apci import IFrame
from .asdu import ASDU
from .errors import IEC104Error
from .iec101 import (AckFrame, Ft12Frame, IEC101_PROFILE, SerialLine)
from .profiles import STANDARD_PROFILE, LinkProfile
from .state_machine import ConnectionMachine


class GatewayMode(enum.Enum):
    REWRITE = "re-encode ASDUs with IEC 104 field widths"
    PASSTHROUGH = "wrap serial ASDU bytes unchanged (legacy quirk)"


@dataclass
class GatewayStats:
    serial_frames: int = 0
    forwarded: int = 0
    link_service_frames: int = 0
    conversion_failures: int = 0


@dataclass
class Iec101To104Gateway:
    """Convert one serial RTU's traffic onto a 104 connection.

    Feed serial bytes with :meth:`from_serial`; collect the 104 frames
    to transmit from the returned list. The caller owns the TCP side —
    typically an :class:`~repro.iec104.endpoint.OutstationEndpoint`'s
    transport or a raw socket — and must keep ``machine`` acknowledged
    (the gateway uses it for send sequence numbers).
    """

    mode: GatewayMode = GatewayMode.REWRITE
    serial_profile: LinkProfile = IEC101_PROFILE
    #: Remap the 101 common address to a 104 one (None = keep).
    common_address_map: dict[int, int] = field(default_factory=dict)
    machine: ConnectionMachine = field(
        default_factory=lambda: ConnectionMachine(is_controlling=False))
    stats: GatewayStats = field(default_factory=GatewayStats)
    _line: SerialLine = field(default_factory=SerialLine)

    def __post_init__(self) -> None:
        # The TCP side is assumed started by the caller's STARTDT.
        from .state_machine import TransferState
        self.machine.state = TransferState.STARTED

    def from_serial(self, data: bytes) -> list[bytes]:
        """Consume serial bytes; return encoded 104 frames to send."""
        out: list[bytes] = []
        for frame in self._line.feed(data):
            self.stats.serial_frames += 1
            if isinstance(frame, AckFrame) or not frame.asdu_bytes:
                self.stats.link_service_frames += 1
                continue
            try:
                out.append(self._convert(frame))
                self.stats.forwarded += 1
            except IEC104Error:
                self.stats.conversion_failures += 1
        return out

    def _convert(self, frame: Ft12Frame) -> bytes:
        if self.mode is GatewayMode.PASSTHROUGH:
            # The paper's quirk: 104 APCI around 101-width ASDU bytes.
            # We still *validate* the ASDU parses under the serial
            # profile so garbage is not forwarded.
            ASDU.decode(frame.asdu_bytes, self.serial_profile)
            i_frame = IFrame(asdu=_RawAsdu(frame.asdu_bytes),
                             send_seq=self.machine.send_seq,
                             recv_seq=self.machine.recv_seq)
            encoded = _encode_raw_iframe(frame.asdu_bytes,
                                         self.machine)
            self._advance_seq()
            return encoded
        asdu = ASDU.decode(frame.asdu_bytes, self.serial_profile)
        if asdu.common_address in self.common_address_map:
            from dataclasses import replace
            asdu = replace(asdu, common_address=self.common_address_map[
                asdu.common_address])
        i_frame = self.machine.next_i_frame(asdu)
        return i_frame.encode(STANDARD_PROFILE)

    def _advance_seq(self) -> None:
        from .apci import SEQ_MODULO
        self.machine.send_seq = (self.machine.send_seq + 1) % SEQ_MODULO


@dataclass(frozen=True)
class _RawAsdu:
    """Marker wrapper (unused for encoding; kept for introspection)."""

    raw: bytes


def _encode_raw_iframe(asdu_bytes: bytes,
                       machine: ConnectionMachine) -> bytes:
    """Build an I-frame APCI around raw (101-width) ASDU bytes."""
    from .constants import (CONTROL_FIELD_LENGTH, MAX_APDU_LENGTH,
                            START_BYTE)
    length = CONTROL_FIELD_LENGTH + len(asdu_bytes)
    if length > MAX_APDU_LENGTH:
        raise IEC104Error("ASDU too large for one APDU")
    send, recv = machine.send_seq, machine.recv_seq
    control = bytes(((send << 1) & 0xFF, (send >> 7) & 0xFF,
                     (recv << 1) & 0xFF, (recv >> 7) & 0xFF))
    return bytes((START_BYTE, length)) + control + asdu_bytes
