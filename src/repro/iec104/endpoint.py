"""High-level IEC 104 endpoints: a controlling master and an outstation.

These classes turn the frame/state-machine layers into a usable
protocol implementation (comparable to lib60870's CS104 master/slave):

* :class:`OutstationEndpoint` holds a point database, answers general
  interrogations, confirms commands, and reports point updates
  spontaneously once data transfer is started;
* :class:`MasterEndpoint` starts data transfer, interrogates, issues
  set-point commands, acknowledges I-frames per the w window / T2
  timer, and surfaces received measurements to a callback.

Endpoints are sans-io: they communicate through a :class:`Transport`
(bytes in, bytes out) and take explicit timestamps, so they run equally
well over an in-memory pipe (tests, simulation) or a real socket pump.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .apci import APDU, IFrame, SFrame, UFrame
from .asdu import ASDU, InformationObject
from .codec import StreamDecoder, TolerantParser
from .constants import (DEFAULT_K, DEFAULT_W, Cause, ProtocolTimers,
                        TypeID, UFunction)
from .errors import IEC104Error, StateError
from .information_elements import (CounterInterrogationCommand,
                                   IntegratedTotals,
                                   InterrogationCommand, codec_for)
from .profiles import STANDARD_PROFILE, LinkProfile
from .state_machine import ActionKind, ConnectionMachine, TransferState


class Transport:
    """Byte-pipe interface endpoints speak through."""

    def send(self, data: bytes) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class PipeTransport(Transport):
    """In-memory transport; delivery happens on :meth:`pump`.

    Create a connected pair with :meth:`pair`. Outgoing bytes queue up
    until the owner pumps them into the peer — this keeps delivery
    order deterministic and lets tests interleave time with traffic.
    """

    def __init__(self) -> None:
        self.peer: "PipeTransport | None" = None
        self.receiver: Callable[[bytes], None] | None = None
        self._outbox: list[bytes] = []
        self.closed = False

    @classmethod
    def pair(cls) -> tuple["PipeTransport", "PipeTransport"]:
        a, b = cls(), cls()
        a.peer, b.peer = b, a
        return a, b

    def send(self, data: bytes) -> None:
        if self.closed:
            raise IEC104Error("transport closed")
        self._outbox.append(data)

    def pump(self) -> int:
        """Deliver queued bytes to the peer; return segment count."""
        delivered = 0
        while self._outbox:
            segment = self._outbox.pop(0)
            if self.peer is not None and self.peer.receiver is not None:
                self.peer.receiver(segment)
            delivered += 1
        return delivered

    def close(self) -> None:
        self.closed = True


@dataclass
class EndpointStats:
    sent_i: int = 0
    sent_s: int = 0
    sent_u: int = 0
    received_i: int = 0
    received_s: int = 0
    received_u: int = 0


class _EndpointBase:
    """Shared plumbing: framing, machine wiring, timers."""

    def __init__(self, transport: Transport, is_controlling: bool,
                 profile: LinkProfile = STANDARD_PROFILE,
                 timers: ProtocolTimers | None = None,
                 k: int = DEFAULT_K, w: int = DEFAULT_W):
        self.transport = transport
        self.profile = profile
        self.machine = ConnectionMachine(
            is_controlling=is_controlling,
            timers=timers or ProtocolTimers(), k=k, w=w)
        self._decoder = StreamDecoder(parser=TolerantParser())
        if hasattr(transport, "receiver"):
            transport.receiver = self._on_bytes
        self.now = 0.0
        self.stats = EndpointStats()
        self.machine.connection_opened(self.now)
        self.closed = False
        #: Called when the T1 timer demands the connection be dropped.
        self.on_close_request: Callable[[], None] | None = None
        #: Called when STARTDT completes (data transfer is running).
        self.on_transfer_started: Callable[[], None] | None = None

    # -- byte I/O -----------------------------------------------------------

    def _on_bytes(self, data: bytes) -> None:
        for result in self._decoder.feed(data):
            if not result.ok:
                raise result.error
            self._receive(result.apdu)

    def _send(self, frame: APDU) -> None:
        if self.closed:
            raise IEC104Error("endpoint closed")
        self.transport.send(frame.encode(self.profile))
        self.machine.on_send(frame, self.now)
        if isinstance(frame, IFrame):
            self.stats.sent_i += 1
        elif isinstance(frame, SFrame):
            self.stats.sent_s += 1
        else:
            self.stats.sent_u += 1

    def _receive(self, frame: APDU) -> None:
        actions = self.machine.on_receive(frame, self.now)
        if isinstance(frame, IFrame):
            self.stats.received_i += 1
            self._handle_asdu(frame.asdu)
        elif isinstance(frame, SFrame):
            self.stats.received_s += 1
        else:
            self.stats.received_u += 1
            if frame.function is UFunction.STARTDT_CON \
                    and self.on_transfer_started is not None:
                self.on_transfer_started()
        self._run_actions(actions)

    def _run_actions(self, actions) -> None:
        for action in actions:
            if action.kind is ActionKind.SEND_S_ACK:
                self._send(SFrame(recv_seq=action.recv_seq))
            elif action.kind is ActionKind.SEND_STARTDT_CON:
                self._send(UFrame(UFunction.STARTDT_CON))
                self._transfer_started()
            elif action.kind is ActionKind.SEND_STOPDT_CON:
                self._send(UFrame(UFunction.STOPDT_CON))
            elif action.kind is ActionKind.SEND_TESTFR_CON:
                self._send(UFrame(UFunction.TESTFR_CON))
            elif action.kind is ActionKind.SEND_TESTFR_ACT:
                self._send(UFrame(UFunction.TESTFR_ACT))
            elif action.kind is ActionKind.CLOSE_CONNECTION:
                self.closed = True
                if self.on_close_request is not None:
                    self.on_close_request()

    # -- time ----------------------------------------------------------------

    def tick(self, now: float) -> None:
        """Advance the endpoint's clock and run due timers."""
        if now < self.now:
            raise ValueError("time cannot move backwards")
        self.now = now
        self._run_actions(self.machine.poll(now))

    # -- hooks ----------------------------------------------------------------

    def _handle_asdu(self, asdu: ASDU) -> None:
        raise NotImplementedError

    def _transfer_started(self) -> None:
        """Called on the controlled side when STARTDT completes."""

    @property
    def started(self) -> bool:
        return self.machine.state is TransferState.STARTED


class OutstationEndpoint(_EndpointBase):
    """An RTU: point database + interrogation + spontaneous reports."""

    def __init__(self, transport: Transport, common_address: int = 1,
                 profile: LinkProfile = STANDARD_PROFILE,
                 timers: ProtocolTimers | None = None,
                 on_command: Callable[[ASDU], None] | None = None,
                 require_select: bool = False):
        super().__init__(transport, is_controlling=False,
                         profile=profile, timers=timers)
        self.common_address = common_address
        self.on_command = on_command
        #: Enforce select-before-operate on SCO/DCO/RCO commands: an
        #: execute without a preceding select on the same IOA is
        #: negatively confirmed. Direct-operate RTUs leave this off.
        self.require_select = require_select
        #: IOAs currently selected (armed) for execution.
        self._selected: set[int] = set()
        #: Point database: ioa -> (typeID, element).
        self._points: dict[int, tuple[TypeID, object]] = {}

    # -- database -------------------------------------------------------------

    def define_point(self, ioa: int, type_id: TypeID, element) -> None:
        """Register (or overwrite) a point without reporting it."""
        codec = codec_for(type_id)
        if not isinstance(element, codec.element_type):
            raise TypeError(
                f"typeID {type_id.name} requires "
                f"{codec.element_type.__name__}")
        self._points[ioa] = (type_id, element)

    def update_point(self, ioa: int, element,
                     cause: Cause = Cause.SPONTANEOUS) -> bool:
        """Update a point; report it if data transfer is running.

        Returns True when a report was transmitted."""
        if ioa not in self._points:
            raise KeyError(f"point {ioa} is not defined")
        type_id, _ = self._points[ioa]
        self._points[ioa] = (type_id, element)
        if not (self.started and self.machine.can_send_i):
            return False
        asdu = ASDU(type_id=type_id, cause=cause,
                    common_address=self.common_address,
                    objects=(InformationObject(ioa, element),))
        self._send(self.machine.next_i_frame(asdu))
        return True

    @property
    def point_count(self) -> int:
        return len(self._points)

    # -- protocol --------------------------------------------------------------

    _SBO_TYPES = (TypeID.C_SC_NA_1, TypeID.C_DC_NA_1, TypeID.C_RC_NA_1,
                  TypeID.C_SC_TA_1, TypeID.C_DC_TA_1, TypeID.C_RC_TA_1)

    def _handle_asdu(self, asdu: ASDU) -> None:
        if asdu.type_id is TypeID.C_IC_NA_1 \
                and asdu.cause is Cause.ACTIVATION:
            self._answer_interrogation(asdu)
            return
        if asdu.type_id is TypeID.C_CI_NA_1 \
                and asdu.cause is Cause.ACTIVATION:
            self._answer_counter_interrogation(asdu)
            return
        if asdu.is_command and asdu.cause is Cause.ACTIVATION:
            if not self._command_permitted(asdu):
                negative = ASDU(type_id=asdu.type_id,
                                cause=Cause.ACTIVATION_CON,
                                common_address=asdu.common_address,
                                negative=True, objects=asdu.objects)
                self._send(self.machine.next_i_frame(negative))
                return
            # Mirror an activation confirmation, then notify.
            con = ASDU(type_id=asdu.type_id, cause=Cause.ACTIVATION_CON,
                       common_address=asdu.common_address,
                       objects=asdu.objects)
            self._send(self.machine.next_i_frame(con))
            if self.on_command is not None:
                self.on_command(asdu)

    def _command_permitted(self, asdu: ASDU) -> bool:
        """Select-before-operate bookkeeping for switching commands."""
        if asdu.type_id not in self._SBO_TYPES:
            return True
        obj = asdu.objects[0]
        is_select = bool(getattr(obj.element, "select", False))
        if is_select:
            self._selected.add(obj.address)
            return True
        if not self.require_select:
            return True
        if obj.address in self._selected:
            self._selected.discard(obj.address)  # one-shot arming
            return True
        return False

    def _answer_counter_interrogation(self, request: ASDU) -> None:
        """Report every integrated-totals point (C_CI_NA_1 / I101)."""
        con = ASDU(type_id=TypeID.C_CI_NA_1, cause=Cause.ACTIVATION_CON,
                   common_address=self.common_address,
                   objects=request.objects)
        self._send(self.machine.next_i_frame(con))
        counters = [(ioa, element) for ioa, (type_id, element)
                    in sorted(self._points.items())
                    if isinstance(element, IntegratedTotals)]
        for start in range(0, len(counters), 8):
            chunk = counters[start:start + 8]
            asdu = ASDU(
                type_id=TypeID.M_IT_NA_1,
                cause=Cause.COUNTER_INTERROGATION_GENERAL,
                common_address=self.common_address,
                objects=tuple(InformationObject(ioa, element)
                              for ioa, element in chunk))
            self._send(self.machine.next_i_frame(asdu))
        term = ASDU(type_id=TypeID.C_CI_NA_1,
                    cause=Cause.ACTIVATION_TERMINATION,
                    common_address=self.common_address,
                    objects=request.objects)
        self._send(self.machine.next_i_frame(term))

    def _answer_interrogation(self, request: ASDU) -> None:
        con = ASDU(type_id=TypeID.C_IC_NA_1, cause=Cause.ACTIVATION_CON,
                   common_address=self.common_address,
                   objects=request.objects)
        self._send(self.machine.next_i_frame(con))
        by_type: dict[TypeID, list[tuple[int, object]]] = {}
        for ioa, (type_id, element) in sorted(self._points.items()):
            by_type.setdefault(type_id, []).append((ioa, element))
        for type_id, entries in sorted(by_type.items()):
            for start in range(0, len(entries), 8):
                chunk = entries[start:start + 8]
                asdu = ASDU(type_id=type_id,
                            cause=Cause.INTERROGATED_BY_STATION,
                            common_address=self.common_address,
                            objects=tuple(InformationObject(ioa, element)
                                          for ioa, element in chunk))
                self._send(self.machine.next_i_frame(asdu))
        term = ASDU(type_id=TypeID.C_IC_NA_1,
                    cause=Cause.ACTIVATION_TERMINATION,
                    common_address=self.common_address,
                    objects=request.objects)
        self._send(self.machine.next_i_frame(term))


@dataclass
class ReceivedMeasurement:
    """One information object delivered to the master."""

    time: float
    common_address: int
    type_id: TypeID
    cause: Cause
    ioa: int
    element: object


class MasterEndpoint(_EndpointBase):
    """A controlling station (SCADA front-end)."""

    def __init__(self, transport: Transport,
                 profile: LinkProfile = STANDARD_PROFILE,
                 timers: ProtocolTimers | None = None,
                 on_measurement: Callable[[ReceivedMeasurement],
                                          None] | None = None):
        super().__init__(transport, is_controlling=True,
                         profile=profile, timers=timers)
        self.on_measurement = on_measurement
        self.measurements: list[ReceivedMeasurement] = []
        #: Causes seen for interrogation commands (act-con, act-term).
        self.interrogation_progress: list[Cause] = []
        #: Causes seen for counter interrogations.
        self.counter_progress: list[Cause] = []
        #: Commands the outstation negatively confirmed.
        self.rejected_commands: list[ASDU] = []

    def start_data_transfer(self) -> None:
        self._send(self.machine.start_transfer())

    def stop_data_transfer(self) -> None:
        self._send(self.machine.stop_transfer())

    def send_test_frame(self) -> None:
        self._send(UFrame(UFunction.TESTFR_ACT))

    def interrogate(self, common_address: int = 1,
                    qoi: int = 20) -> None:
        if not self.started:
            raise StateError("cannot interrogate before STARTDT")
        asdu = ASDU(type_id=TypeID.C_IC_NA_1, cause=Cause.ACTIVATION,
                    common_address=common_address,
                    objects=(InformationObject(
                        0, InterrogationCommand(qoi=qoi)),))
        self._send(self.machine.next_i_frame(asdu))

    def send_command(self, type_id: TypeID, ioa: int, element,
                     common_address: int = 1) -> None:
        """Issue any control-direction command (e.g. an I50 set point)."""
        if not self.started:
            raise StateError("cannot command before STARTDT")
        asdu = ASDU(type_id=type_id, cause=Cause.ACTIVATION,
                    common_address=common_address,
                    objects=(InformationObject(ioa, element),))
        self._send(self.machine.next_i_frame(asdu))

    def counter_interrogate(self, common_address: int = 1) -> None:
        """Request every integrated-totals counter (C_CI_NA_1)."""
        if not self.started:
            raise StateError("cannot interrogate before STARTDT")
        asdu = ASDU(type_id=TypeID.C_CI_NA_1, cause=Cause.ACTIVATION,
                    common_address=common_address,
                    objects=(InformationObject(
                        0, CounterInterrogationCommand()),))
        self._send(self.machine.next_i_frame(asdu))

    def _handle_asdu(self, asdu: ASDU) -> None:
        if asdu.type_id is TypeID.C_IC_NA_1:
            self.interrogation_progress.append(asdu.cause)
            return
        if asdu.type_id is TypeID.C_CI_NA_1:
            self.counter_progress.append(asdu.cause)
            return
        if asdu.is_command:
            if asdu.negative:
                self.rejected_commands.append(asdu)
            return  # activation confirmations of our own commands
        for obj in asdu.objects:
            measurement = ReceivedMeasurement(
                time=self.now, common_address=asdu.common_address,
                type_id=asdu.type_id, cause=asdu.cause,
                ioa=obj.address, element=obj.element)
            self.measurements.append(measurement)
            if self.on_measurement is not None:
                self.on_measurement(measurement)


def connect_pair(master_profile: LinkProfile = STANDARD_PROFILE,
                 outstation_profile: LinkProfile | None = None,
                 timers: ProtocolTimers | None = None,
                 common_address: int = 1
                 ) -> tuple[MasterEndpoint, OutstationEndpoint,
                            Callable[[], int]]:
    """Wire a master and an outstation over an in-memory pipe.

    Returns ``(master, outstation, pump)`` where ``pump()`` delivers
    all in-flight bytes in both directions until quiescent. The two
    endpoints may use *different* link profiles — exactly the §6.1
    situation, with the master's tolerant parser absorbing the
    mismatch.
    """
    a, b = PipeTransport.pair()
    master = MasterEndpoint(a, timers=timers, profile=master_profile)
    outstation = OutstationEndpoint(
        b, common_address=common_address, timers=timers,
        profile=(outstation_profile if outstation_profile is not None
                 else master_profile))

    def pump() -> int:
        total = 0
        while True:
            moved = a.pump() + b.pump()
            if not moved:
                return total
            total += moved

    return master, outstation, pump
