"""Primary/secondary connection redundancy (paper Fig. 4).

In high-reliability IEC 104 deployments an outstation keeps a primary
connection (carrying I-frames) to one control server and a secondary
connection (keep-alives only) to a backup server; when the primary
fails, the backup is promoted with STARTDT and a general interrogation.

:class:`RedundancyGroup` implements the *control-center side* of that
scheme over two :class:`~repro.iec104.endpoint.MasterEndpoint` links:
it keeps exactly one link started, sends keep-alives on the standby
link, and fails over when the active link dies (T1 expiry or transport
loss). This is the machinery whose field-side misbehaviour (backup
connections reset by the RTU) the paper spends Section 6.2 on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .endpoint import MasterEndpoint
from .errors import IEC104Error


class LinkRole(enum.Enum):
    PRIMARY = "primary"
    SECONDARY = "secondary"
    FAILED = "failed"


@dataclass
class FailoverEvent:
    """One switchover in the group's history."""

    time: float
    from_link: str
    to_link: str
    reason: str


class RedundancyGroup:
    """Manages one outstation's two control-center links (Fig. 4)."""

    def __init__(self, links: dict[str, MasterEndpoint],
                 preferred: str | None = None,
                 keepalive_period: float = 30.0,
                 interrogate_on_promote: bool = True):
        if len(links) < 2:
            raise ValueError("redundancy needs at least two links")
        if keepalive_period <= 0:
            raise ValueError("keepalive_period must be positive")
        self.links = dict(links)
        self.roles: dict[str, LinkRole] = {
            name: LinkRole.SECONDARY for name in links}
        self._keepalive_period = keepalive_period
        self._interrogate = interrogate_on_promote
        self._last_keepalive: dict[str, float] = {
            name: 0.0 for name in links}
        self.history: list[FailoverEvent] = []
        self.now = 0.0
        first = preferred if preferred is not None \
            else sorted(links)[0]
        if first not in links:
            raise KeyError(first)
        for name, link in links.items():
            link.on_close_request = (
                lambda name=name: self._link_failed(name, "T1 expiry"))
            link.on_transfer_started = (
                lambda name=name: self._transfer_started(name))
        self._promote(first, reason="initial activation")

    def _transfer_started(self, name: str) -> None:
        """STARTDT completed on a promoted link: interrogate."""
        if self.roles.get(name) is LinkRole.PRIMARY \
                and self._interrogate:
            self.links[name].interrogate()

    # -- queries ----------------------------------------------------------

    @property
    def active(self) -> str | None:
        for name, role in self.roles.items():
            if role is LinkRole.PRIMARY:
                return name
        return None

    @property
    def active_link(self) -> MasterEndpoint | None:
        name = self.active
        return self.links[name] if name is not None else None

    def role_of(self, name: str) -> LinkRole:
        return self.roles[name]

    # -- control ----------------------------------------------------------

    def _promote(self, name: str, reason: str,
                 previous: str | None = None) -> None:
        link = self.links[name]
        if link.closed:
            raise IEC104Error(f"cannot promote closed link {name}")
        previous = previous if previous is not None else self.active
        self.roles[name] = LinkRole.PRIMARY
        link.start_data_transfer()
        self.history.append(FailoverEvent(
            time=self.now, from_link=previous or "-", to_link=name,
            reason=reason))

    def _link_failed(self, name: str, reason: str) -> None:
        was_primary = self.roles[name] is LinkRole.PRIMARY
        self.roles[name] = LinkRole.FAILED
        if was_primary:
            self._failover(reason, failed=name)

    def report_transport_loss(self, name: str) -> None:
        """The owner saw the link's TCP connection die."""
        if name not in self.links:
            raise KeyError(name)
        self._link_failed(name, "transport loss")

    def _failover(self, reason: str, failed: str | None = None) -> None:
        candidates = [name for name, role in self.roles.items()
                      if role is LinkRole.SECONDARY
                      and not self.links[name].closed]
        if not candidates:
            return  # total outage; operator intervention required
        self._promote(sorted(candidates)[0], reason=reason,
                      previous=failed)

    def tick(self, now: float) -> None:
        """Advance time: endpoint timers + standby keep-alives."""
        self.now = now
        for name, link in self.links.items():
            if self.roles[name] is LinkRole.FAILED:
                continue
            link.tick(now)
            if self.roles[name] is LinkRole.SECONDARY \
                    and not link.closed \
                    and now - self._last_keepalive[name] \
                    >= self._keepalive_period:
                link.send_test_frame()
                self._last_keepalive[name] = now

    @property
    def healthy(self) -> bool:
        """True while an active link exists and is started."""
        link = self.active_link
        return link is not None and not link.closed
