"""CP56Time2a and CP16Time2a time tags (IEC 60870-5-4).

CP56Time2a is the 7-octet binary timestamp carried by the time-tagged
ASDU typeIDs (I30-I40, I58-I64, I103, I107, I126, I127). The paper's
most frequent typeID, I36, carries one in every information object.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import MalformedASDUError

CP56_SIZE = 7
CP16_SIZE = 2


@dataclass(frozen=True)
class CP56Time2a:
    """7-octet date and time: milliseconds to year.

    Fields mirror the wire format (milliseconds first). Comparison is
    chronological, not field-order lexicographic.
    """

    milliseconds: int = 0   # 0..59999 (includes seconds)
    minute: int = 0         # 0..59
    hour: int = 0           # 0..23
    day_of_month: int = 1   # 1..31
    day_of_week: int = 0    # 0 (unused) or 1..7
    month: int = 1          # 1..12
    year: int = 0           # 0..99 (offset from 2000)
    invalid: bool = False
    summer_time: bool = False

    def __post_init__(self) -> None:
        checks = (
            (0 <= self.milliseconds <= 59999, "milliseconds"),
            (0 <= self.minute <= 59, "minute"),
            (0 <= self.hour <= 23, "hour"),
            (1 <= self.day_of_month <= 31, "day_of_month"),
            (0 <= self.day_of_week <= 7, "day_of_week"),
            (1 <= self.month <= 12, "month"),
            (0 <= self.year <= 99, "year"),
        )
        for ok, name in checks:
            if not ok:
                raise ValueError(f"CP56Time2a field {name} out of range")

    @classmethod
    def from_us(cls, time_us: int) -> "CP56Time2a":
        """Build a tag from integer microseconds since the epoch.

        Exact integer arithmetic: sub-millisecond ticks floor to the
        millisecond the wire format can carry.
        """
        if not isinstance(time_us, int) or isinstance(time_us, bool):
            raise TypeError(f"time_us must be int, got {time_us!r}")
        if time_us < 0:
            raise ValueError("time_us must be >= 0")
        return cls._from_ms(time_us // 1000)

    @classmethod
    def from_seconds(cls, epoch_seconds: float) -> "CP56Time2a":
        """Build a tag from seconds since 2000-01-01 00:00:00.

        The simulator uses a simplified 30-day-month calendar: the tag is
        only required to be *monotonic and reversible*, which this is.
        """
        if epoch_seconds < 0:
            raise ValueError("epoch_seconds must be >= 0")
        return cls._from_ms(int(round(epoch_seconds * 1000.0)))

    @classmethod
    def _from_ms(cls, total_ms: int) -> "CP56Time2a":
        ms = total_ms % 60000
        total_min = total_ms // 60000
        minute = total_min % 60
        total_hours = total_min // 60
        hour = total_hours % 24
        total_days = total_hours // 24
        day = total_days % 30 + 1
        total_months = total_days // 30
        month = total_months % 12 + 1
        year = total_months // 12
        if year > 99:
            raise ValueError("timestamp beyond CP56Time2a range")
        return cls(milliseconds=ms, minute=minute, hour=hour,
                   day_of_month=day, month=month, year=year)

    def to_seconds(self) -> float:
        """Inverse of :meth:`from_seconds` (simplified calendar)."""
        days = (self.year * 12 + (self.month - 1)) * 30 + self.day_of_month - 1
        minutes = (days * 24 + self.hour) * 60 + self.minute
        return minutes * 60.0 + self.milliseconds / 1000.0

    def _sort_key(self) -> tuple:
        return (self.year, self.month, self.day_of_month, self.hour,
                self.minute, self.milliseconds)

    def __lt__(self, other: "CP56Time2a") -> bool:
        return self._sort_key() < other._sort_key()

    def __le__(self, other: "CP56Time2a") -> bool:
        return self._sort_key() <= other._sort_key()

    def __gt__(self, other: "CP56Time2a") -> bool:
        return self._sort_key() > other._sort_key()

    def __ge__(self, other: "CP56Time2a") -> bool:
        return self._sort_key() >= other._sort_key()

    def encode(self) -> bytes:
        octet3 = self.minute | (0x80 if self.invalid else 0)
        octet4 = self.hour | (0x80 if self.summer_time else 0)
        octet5 = self.day_of_month | (self.day_of_week << 5)
        return bytes((
            self.milliseconds & 0xFF,
            (self.milliseconds >> 8) & 0xFF,
            octet3,
            octet4,
            octet5,
            self.month,
            self.year,
        ))

    @classmethod
    def decode(cls, data: bytes | memoryview, offset: int = 0) -> "CP56Time2a":
        raw = bytes(data[offset:offset + CP56_SIZE])
        if len(raw) < CP56_SIZE:
            raise MalformedASDUError(
                f"truncated CP56Time2a: {len(raw)} < {CP56_SIZE} octets")
        ms = raw[0] | (raw[1] << 8)
        minute = raw[2] & 0x3F
        invalid = bool(raw[2] & 0x80)
        hour = raw[3] & 0x1F
        summer = bool(raw[3] & 0x80)
        day = raw[4] & 0x1F
        dow = (raw[4] >> 5) & 0x07
        month = raw[5] & 0x0F
        year = raw[6] & 0x7F
        try:
            return cls(milliseconds=ms, minute=minute, hour=hour,
                       day_of_month=day, day_of_week=dow, month=month,
                       year=year, invalid=invalid, summer_time=summer)
        except ValueError as exc:
            raise MalformedASDUError(f"invalid CP56Time2a: {exc}") from exc


@dataclass(frozen=True, order=True)
class CP16Time2a:
    """2-octet elapsed time in milliseconds (0..59999)."""

    milliseconds: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.milliseconds <= 59999:
            raise ValueError("CP16Time2a milliseconds out of range")

    def encode(self) -> bytes:
        return bytes((self.milliseconds & 0xFF, (self.milliseconds >> 8)))

    @classmethod
    def decode(cls, data: bytes | memoryview, offset: int = 0) -> "CP16Time2a":
        raw = bytes(data[offset:offset + CP16_SIZE])
        if len(raw) < CP16_SIZE:
            raise MalformedASDUError("truncated CP16Time2a")
        value = raw[0] | (raw[1] << 8)
        if value > 59999:
            raise MalformedASDUError(f"CP16Time2a value {value} out of range")
        return cls(milliseconds=value)
