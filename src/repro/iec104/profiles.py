"""Link profiles: standard vs legacy (IEC 101 carry-over) field widths.

Section 6.1 of the paper found outstations emitting IEC 104 frames with
IEC 101 field widths: O37 used a 2-octet information object address, and
O53/O58/O28 used a 1-octet cause of transmission. A *link profile*
captures the field widths of one link so the tolerant parser can decode
such traffic; the strict profile is the IEC 104 standard.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkProfile:
    """Field widths used by one IEC 104 link.

    The IEC 104 standard fixes ``cot_length`` = 2, ``ioa_length`` = 3 and
    ``common_address_length`` = 2. IEC 101 permits 1-octet COT and
    2-octet IOA — widths that leak into 104 traffic when a serial RTU
    configuration is carried over unchanged (paper Fig. 7).
    """

    cot_length: int = 2
    ioa_length: int = 3
    common_address_length: int = 2

    def __post_init__(self) -> None:
        if self.cot_length not in (1, 2):
            raise ValueError("cot_length must be 1 or 2")
        if self.ioa_length not in (1, 2, 3):
            raise ValueError("ioa_length must be 1, 2 or 3")
        if self.common_address_length not in (1, 2):
            raise ValueError("common_address_length must be 1 or 2")

    def __hash__(self) -> int:
        # Same field-tuple formula the dataclass machinery would
        # generate (equal profiles keep equal hashes), but cached in
        # the instance ``__dict__``: profile hashes sit on the parser's
        # memo hot path, twice per frame.
        try:
            return self.__dict__["_hash"]
        except KeyError:
            value = hash((self.cot_length, self.ioa_length,
                          self.common_address_length))
            self.__dict__["_hash"] = value
            return value

    @property
    def is_standard(self) -> bool:
        """True iff this profile matches the IEC 104 standard."""
        return self == STANDARD_PROFILE

    @property
    def max_ioa(self) -> int:
        """Largest representable information object address."""
        return (1 << (8 * self.ioa_length)) - 1

    @property
    def max_common_address(self) -> int:
        return (1 << (8 * self.common_address_length)) - 1

    def describe(self) -> str:
        if self.is_standard:
            return "IEC 104 standard"
        deviations = []
        if self.cot_length != 2:
            deviations.append(f"COT={self.cot_length} octet (legacy IEC 101)")
        if self.ioa_length != 3:
            deviations.append(
                f"IOA={self.ioa_length} octets (legacy IEC 101)")
        if self.common_address_length != 2:
            deviations.append(
                f"common address={self.common_address_length} octet")
        return "non-compliant: " + ", ".join(deviations)


#: The IEC 104 standard profile (what Wireshark assumes).
STANDARD_PROFILE = LinkProfile()

#: Outstation O37's profile (2-octet IOA, paper Fig. 7c).
LEGACY_IOA_PROFILE = LinkProfile(ioa_length=2)

#: Outstations O53/O58/O28's profile (1-octet COT, paper Fig. 7a).
LEGACY_COT_PROFILE = LinkProfile(cot_length=1)

#: The full classic IEC 101 field widths (1-octet COT and common
#: address, 2-octet IOA) — what a passthrough 101->104 gateway emits.
FULL_IEC101_PROFILE = LinkProfile(cot_length=1, ioa_length=2,
                                  common_address_length=1)

#: All profiles the tolerant parser tries, most standard first.
CANDIDATE_PROFILES: tuple[LinkProfile, ...] = (
    STANDARD_PROFILE,
    LEGACY_COT_PROFILE,
    LEGACY_IOA_PROFILE,
    LinkProfile(cot_length=1, ioa_length=2),
    FULL_IEC101_PROFILE,
)
