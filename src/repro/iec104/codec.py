"""Strict and tolerant IEC 104 stream parsers.

This module is the reproduction of the paper's main tooling contribution
(Section 6.1): a parser that, unlike Wireshark or the stock SCAPY
module, can decode IEC 104 frames that carry legacy IEC 101 field widths
(1-octet COT, 2-octet IOA).

:class:`StrictParser` is the standard-compliant baseline: it decodes with
the IEC 104 field widths only, and reports everything else as malformed
(reproducing the "100% invalid packets" Wireshark behaviour for
outstations O37/O53/O58/O28).

:class:`TolerantParser` tries a set of candidate link profiles, scores
the decoded candidates for physical plausibility, and caches the winning
profile per link — so a link that once decoded as "legacy 1-octet COT"
keeps that interpretation, as a real RTU configuration would.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .apci import APDU, IFrame, decode_apdu, scan_apci
from .constants import START_BYTE, Cause
from .errors import IEC104Error, TruncatedError
from .information_elements import (NormalizedValue, ScaledValue, ShortFloat)
from .profiles import (CANDIDATE_PROFILES, STANDARD_PROFILE, LinkProfile)

#: Single-byte form of the APCI start byte (kept out of the hot loops).
_START = bytes((START_BYTE,))

#: Parse-memo capacity. The memo covers APCI-only frames (6 octets:
#: S-format acks and U-format keep-alives), which are the only frames
#: that repeat byte-for-byte in SCADA traffic — I-frames carry an
#: incrementing send sequence number, so two identical I-frames
#: essentially never occur and memoizing them would be pure overhead.
#: Results are immutable (frozen dataclasses all the way down), so
#: sharing one result across repeats is safe. The cache is dropped
#: wholesale when full: eviction bookkeeping would cost more than the
#: occasional re-parse burst it saves.
_MEMO_LIMIT = 8192

#: Total octet count of an APCI-only (S/U-format) frame.
_APCI_ONLY_LENGTH = 6


@dataclass(frozen=True, slots=True)
class ParseResult:
    """Outcome of parsing one APDU frame from a byte stream."""

    raw: bytes
    apdu: APDU | None = None
    profile: LinkProfile | None = None
    error: IEC104Error | None = None

    @property
    def ok(self) -> bool:
        return self.apdu is not None

    @property
    def compliant(self) -> bool:
        """True when the frame decoded under the standard profile."""
        # Identity check first: parsers pass the module-level profile
        # singletons, so the dataclass field comparison rarely runs.
        profile = self.profile
        return self.apdu is not None and (profile is STANDARD_PROFILE
                                          or profile == STANDARD_PROFILE)


def split_frames(payload: bytes | memoryview) -> tuple[list[bytes], bytes]:
    """Split a reassembled TCP byte stream into raw APDU frames.

    Returns ``(frames, remainder)`` where ``remainder`` is a trailing
    partial frame (to be prepended to the next segment) — or garbage when
    it does not start with 0x68, which callers surface as a framing
    problem.
    """
    # Hot path: scan the caller's bytes in place — no whole-payload
    # copy; only the per-frame slices are materialized.
    buf = payload if isinstance(payload, bytes) else bytes(payload)
    frames: list[bytes] = []
    offset = 0
    size = len(buf)
    while offset + 2 <= size:
        if buf[offset] != START_BYTE:
            break
        total = 2 + buf[offset + 1]
        if offset + total > size:
            break
        frames.append(buf[offset:offset + total])
        offset += total
    return frames, buf[offset:]


def _plausibility(frame: IFrame) -> float:
    """Score how physically plausible a decoded I-frame looks.

    The paper identified wrong-profile decodes by two symptoms: invalid
    IOA addresses and "completely random" measurement values. This score
    penalizes exactly those symptoms so the tolerant parser can pick the
    profile under which the data looks like real telemetry.
    """
    score = 0.0
    asdu = frame.asdu
    common_causes = (Cause.PERIODIC, Cause.SPONTANEOUS, Cause.BACKGROUND,
                     Cause.ACTIVATION, Cause.ACTIVATION_CON,
                     Cause.ACTIVATION_TERMINATION, Cause.REQUEST,
                     Cause.INTERROGATED_BY_STATION, Cause.INITIALIZED)
    if asdu.cause in common_causes:
        score += 2.0
    # Originator addresses are almost always 0 and common addresses
    # small; wrong-width decodes shift other fields into them.
    if asdu.originator == 0:
        score += 0.5
    if 0 < asdu.common_address <= 4096:
        score += 0.5
    for obj in asdu.objects:
        # Practical IOA ranges: real RTU points sit well below 2^17.
        if 0 < obj.address < (1 << 17):
            score += 1.0
        element = obj.element
        value = getattr(element, "value", None)
        if isinstance(element, (ShortFloat, NormalizedValue)):
            if value is not None and math.isfinite(value):
                score += 1.0
                # Grid telemetry magnitudes: Hz (~50-60), kV (~0-500),
                # MW (~0-2000). Astronomic magnitudes mean misparse.
                if abs(value) < 1e7:
                    score += 1.0
        elif isinstance(element, ScaledValue):
            score += 1.0
    return score / max(1, len(asdu.objects))


@dataclass
class ParserStats:
    """Per-parser counters used by the compliance analysis (§6.1)."""

    frames: int = 0
    valid: int = 0
    malformed: int = 0
    non_compliant: int = 0
    errors_by_type: dict[str, int] = field(default_factory=dict)

    def record(self, result: ParseResult) -> None:
        self.frames += 1
        if result.apdu is not None:
            self.valid += 1
            if not result.compliant:
                self.non_compliant += 1
        else:
            self.malformed += 1
            name = type(result.error).__name__
            self.errors_by_type[name] = self.errors_by_type.get(name, 0) + 1

    @property
    def malformed_fraction(self) -> float:
        return self.malformed / self.frames if self.frames else 0.0


class StrictParser:
    """Standard-compliant parser (the Wireshark-like baseline)."""

    def __init__(self) -> None:
        self.stats = ParserStats()
        self._memo: dict[bytes, ParseResult] = {}

    def parse_frame(self, raw: bytes) -> ParseResult:
        """Parse one complete APDU frame under the standard profile."""
        if len(raw) == _APCI_ONLY_LENGTH:
            memo = self._memo
            result = memo.get(raw)
            if result is None:
                result = self._parse_raw(raw)
                if len(memo) >= _MEMO_LIMIT:
                    memo.clear()
                memo[raw] = result
        else:
            result = self._parse_raw(raw)
        self.stats.record(result)
        return result

    @staticmethod
    def _parse_raw(raw: bytes) -> ParseResult:
        try:
            apdu, _ = decode_apdu(raw, profile=STANDARD_PROFILE)
            return ParseResult(raw=raw, apdu=apdu,
                               profile=STANDARD_PROFILE)
        except IEC104Error as exc:
            return ParseResult(raw=raw, error=exc)

    def parse_stream(self, payload: bytes) -> list[ParseResult]:
        """Parse every complete frame found in ``payload``."""
        buf = payload if isinstance(payload, bytes) else bytes(payload)
        spans, stop = scan_apci(buf)
        parse = self.parse_frame
        results = [parse(buf[start:start + total])
                   for start, total, _kind in spans]
        if stop < len(buf) and buf[stop] != START_BYTE:
            result = ParseResult(
                raw=buf[stop:],
                error=IEC104Error("stream desynchronized: no start byte"))
            self.stats.record(result)
            results.append(result)
        return results


class TolerantParser:
    """Profile-inferring parser (the paper's contribution).

    ``link_key`` identifies one directional link (e.g. the TCP 4-tuple
    or an outstation name); the profile inferred from the first
    successfully decoded I-frame on a link is cached and reused.
    """

    def __init__(self,
                 candidates: tuple[LinkProfile, ...] = CANDIDATE_PROFILES):
        if not candidates:
            raise ValueError("need at least one candidate profile")
        self._candidates = candidates
        self._link_profiles: dict[object, LinkProfile] = {}
        self.stats = ParserStats()
        #: Memo for APCI-only (S/U) frames, keyed on (raw frame,
        #: cached link profile): the outcome of :meth:`parse_frame` —
        #: including the inference fallback — is a pure function of
        #: those two inputs, so repeats replay only the per-call side
        #: effects (stats, profile learning).
        self._memo: dict[tuple[bytes, LinkProfile | None],
                         ParseResult] = {}

    @property
    def link_profiles(self) -> dict[object, LinkProfile]:
        """Read-only view of the profiles inferred so far."""
        return dict(self._link_profiles)

    def profile_for(self, link_key: object) -> LinkProfile | None:
        return self._link_profiles.get(link_key)

    def parse_frame(self, raw: bytes, link_key: object = None) -> ParseResult:
        """Parse one complete APDU frame, inferring the profile if needed.

        S- and U-format frames are profile-independent; only I-format
        frames trigger profile inference.
        """
        known = self._link_profiles.get(link_key)
        if len(raw) == _APCI_ONLY_LENGTH:
            # S/U keep-alives are the frames that actually repeat
            # byte-for-byte — memoize those, and only those.
            memo = self._memo
            key = (raw, known)
            result = memo.get(key)
            if result is None:
                result = self._parse_raw(raw, known)
                if len(memo) >= _MEMO_LIMIT:
                    memo.clear()
                memo[key] = result
        elif known is not None:
            # Pinned-profile fast path, inlined: once a link has a
            # profile, the overwhelmingly common outcome is that it
            # keeps decoding under it.
            try:
                apdu, _ = decode_apdu(raw, profile=known)
                result = ParseResult(raw=raw, apdu=apdu, profile=known)
            except IEC104Error:
                result = self._parse_uncached(raw, known)
        else:
            result = self._parse_uncached(raw, known)
        # Replay the profile-learning side effect on cache hits: an
        # accepted I-frame pins its profile on the link (a no-op when
        # the cached profile already matched).
        if result.apdu is not None and type(result.apdu) is IFrame:
            self._link_profiles[link_key] = result.profile
        self.stats.record(result)
        return result

    def _parse_raw(self, raw: bytes,
                   known: LinkProfile | None) -> ParseResult:
        if known is not None:
            # Pinned-profile fast path, inlined: once a link has a
            # profile, the overwhelmingly common outcome is that it
            # keeps decoding under it.
            try:
                apdu, _ = decode_apdu(raw, profile=known)
                return ParseResult(raw=raw, apdu=apdu, profile=known)
            except IEC104Error:
                return self._parse_uncached(raw, known)
        return self._parse_uncached(raw, known)

    def _parse_uncached(self, raw: bytes,
                        known: LinkProfile | None) -> ParseResult:
        """The memo-miss path: try the known profile, else infer."""
        if known is not None:
            result = self._try_profile(raw, known)
            if result.ok:
                return result
            # The cached profile failed — fall through and re-infer, a
            # link may legitimately change after an RTU replacement.

        best: ParseResult | None = None
        best_score = -1.0
        last_error: ParseResult | None = None
        for profile in self._candidates:
            result = self._try_profile(raw, profile)
            if not result.ok:
                if last_error is None:
                    last_error = result
                continue
            if not isinstance(result.apdu, IFrame):
                # Format is profile-independent; accept immediately.
                return result
            score = _plausibility(result.apdu)
            # Prefer earlier (more standard) profiles on ties.
            if score > best_score:
                best, best_score = result, score

        if best is not None:
            return best
        return last_error or ParseResult(
            raw=raw, error=IEC104Error("no candidate profile decoded frame"))

    def parse_stream(self, payload: bytes,
                     link_key: object = None) -> list[ParseResult]:
        """Parse every complete frame found in ``payload``."""
        buf = payload if isinstance(payload, bytes) else bytes(payload)
        spans, stop = scan_apci(buf)
        parse = self.parse_frame
        results = [parse(buf[start:start + total], link_key)
                   for start, total, _kind in spans]
        if stop < len(buf) and buf[stop] != START_BYTE:
            result = ParseResult(
                raw=buf[stop:],
                error=IEC104Error("stream desynchronized: no start byte"))
            self.stats.record(result)
            results.append(result)
        return results

    @staticmethod
    def _try_profile(raw: bytes, profile: LinkProfile) -> ParseResult:
        try:
            apdu, _ = decode_apdu(raw, profile=profile)
            return ParseResult(raw=raw, apdu=apdu, profile=profile)
        except TruncatedError as exc:
            return ParseResult(raw=raw, error=exc)
        except IEC104Error as exc:
            return ParseResult(raw=raw, error=exc)


class StreamDecoder:
    """Incremental decoder for one direction of one TCP connection.

    Buffers partial frames across TCP segment boundaries and hands
    complete frames to a :class:`TolerantParser` (or any object with a
    compatible ``parse_frame``).
    """

    def __init__(self, parser: TolerantParser | StrictParser | None = None,
                 link_key: object = None):
        self.parser = parser if parser is not None else TolerantParser()
        self.link_key = link_key
        self._buffer = b""
        self.desync_bytes = 0

    def feed(self, segment: bytes) -> list[ParseResult]:
        """Add a TCP segment's payload; return newly completed frames."""
        if not isinstance(segment, bytes):
            segment = bytes(segment)
        # Hot path: most feeds find an empty carry-over buffer, so the
        # batch scan runs directly over the caller's segment with no
        # concatenation copy.
        buf = self._buffer + segment if self._buffer else segment
        parser = self.parser
        link_key = self.link_key
        tolerant = isinstance(parser, TolerantParser)
        parse = parser.parse_frame
        # Fastest path: the buffer is exactly one complete frame (the
        # common live-tap shape — one APDU per chunk). Skip the span
        # scan and parse in place.
        if (len(buf) > 1 and buf[0] == START_BYTE
                and 2 + buf[1] == len(buf)):
            self._buffer = b""
            return [parse(buf, link_key) if tolerant else parse(buf)]
        results: list[ParseResult] = []
        append = results.append
        size = len(buf)
        offset = 0
        while True:
            spans, stop = scan_apci(buf, offset)
            if tolerant:
                for start, total, _kind in spans:
                    # A span covering the whole buffer (one complete
                    # frame per chunk — the common live-tap shape)
                    # parses in place with no slice copy.
                    frame = (buf if start == 0 and total == size
                             else buf[start:start + total])
                    append(parse(frame, link_key))
            else:
                for start, total, _kind in spans:
                    frame = (buf if start == 0 and total == size
                             else buf[start:start + total])
                    append(parse(frame))
            if stop < size and buf[stop] != START_BYTE:
                # Lost framing: drop bytes until a plausible start byte
                # and rescan — more frames may follow the garbage.
                resync = buf.find(_START, stop)
                if resync == -1:
                    self.desync_bytes += size - stop
                    self._buffer = b""
                    break
                self.desync_bytes += resync - stop
                offset = resync
                continue
            self._buffer = buf[stop:]
            break
        return results

    @property
    def pending(self) -> int:
        """Number of buffered octets awaiting frame completion."""
        return len(self._buffer)
