"""repro.scenarios — labeled attack scenarios + detection scoring.

The subsystem that turns attacks into *measured* artifacts: a
registry of attack scenarios built on the simnet behaviors, each
emitting a deterministic capture plus a versioned ground-truth
sidecar, and a scoring harness that replays the labels through the
streaming pipeline to compute the detector's precision, recall and
detection latency (``repro bench detect``; see ``docs/scenarios.md``).
"""

from ..analysis.labels import (ConnectionOutcome, DetectionScore,
                               LabeledInterval, score_detections)
from .harness import ScenarioHarness, ScenarioRun
from .registry import (RegisteredScenario, ScenarioSpec,
                       all_scenarios, build_scenario, get_scenario,
                       register_scenario)
from .score import (CorpusResult, ScenarioResult, replay_capture,
                    score_capture, score_corpus, score_run)
from .sidecar import (GROUND_TRUTH_SCHEMA_VERSION, GroundTruth,
                      dump_truth, load_truth, truth_path)

__all__ = [
    "GROUND_TRUTH_SCHEMA_VERSION", "ConnectionOutcome",
    "CorpusResult", "DetectionScore", "GroundTruth",
    "LabeledInterval", "RegisteredScenario", "ScenarioHarness",
    "ScenarioResult", "ScenarioRun", "ScenarioSpec", "all_scenarios",
    "build_scenario", "dump_truth", "get_scenario", "load_truth",
    "register_scenario", "replay_capture", "score_capture",
    "score_corpus", "score_detections", "score_run", "truth_path",
]
