"""Shared execution harness for attack scenarios.

Every scenario runs the same deterministic skeleton: one seeded
:class:`~repro.simnet.clock.Simulator`, one
:class:`~repro.simnet.capture.CaptureTap`, benign IEC-104 links that
produce the clean LEARN-phase traffic, then scheduled attack actions
after the labeled onset.  The harness owns the phase timeline::

    start ──(learn_s)──► detect_after ──(attack_delay_s)──► onset
                                                  │
                                         labeled intervals
                                                  ▼
                                    attack end ──(tail)──► run end

``detect_after_us`` lands *between* the clean traffic and the attack
onset with ``attack_delay_s`` of margin, so a scorer flipping the
detector at the boundary — at batch granularity and behind a stream
reorder window — can never train on malicious packets.

All durations scale by the run's ``scale`` (the quick bench mode is
0.5); fixed protocol timers (t1/t2/t3) deliberately do not.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..analysis.labels import LabeledInterval
from ..iec104.constants import ProtocolTimers
from ..netstack.addresses import IPv4Address, MacAddress
from ..simnet.behaviors import OutstationBehavior
from ..simnet.capture import CaptureTap
from ..simnet.clock import Simulator, Ticks, seconds_to_ticks
from ..simnet.tcpsim import SimHost
from .registry import ScenarioSpec
from .sidecar import GroundTruth, dump_truth, truth_path

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..simnet.modbus import ModbusLink

#: Capture time before the first link starts.
START_US: Ticks = 1_000_000

#: Benign tail after the last labeled interval (scaled) — shows the
#: detector staying quiet once the attack stops.
TAIL_S = 20.0

_SERVER_IP_BASE = 0x0A00000A      # 10.0.0.10+ : control centers
_OUTSTATION_IP_BASE = 0x0A010001  # 10.1.0.1+  : outstations
_ATTACKER_IP = 0xC0A80A0A         # 192.168.10.10 (simnet.attacker)


@dataclass
class ScenarioRun:
    """A finished scenario: capture, host names and ground truth."""

    spec: ScenarioSpec
    scale: float
    tap: CaptureTap
    names: dict[IPv4Address, str]
    truth: GroundTruth

    @property
    def packets(self):
        return self.tap.packets

    def to_pcap(self, stream) -> int:
        return self.tap.to_pcap(stream)

    def to_pcapng(self, stream) -> int:
        return self.tap.to_pcapng(stream)

    def write(self, pcap_path: Path) -> tuple[Path, Path, Path]:
        """Write capture + ``.names.json`` + ``.truth.json``.

        The capture format follows the path suffix (``.pcapng`` /
        ``.ntar`` → pcapng, everything else classic pcap), matching
        ``repro generate``.  Returns the three written paths.
        """
        import json
        with open(pcap_path, "wb") as stream:
            if pcap_path.suffix in (".pcapng", ".ntar"):
                self.to_pcapng(stream)
            else:
                self.to_pcap(stream)
        names_path = pcap_path.with_suffix(".names.json")
        names_path.write_text(json.dumps(
            {str(address): name
             for address, name in self.names.items()},
            indent=2, sort_keys=True))
        sidecar = truth_path(pcap_path)
        sidecar.write_text(dump_truth(self.truth))
        return pcap_path, names_path, sidecar


class ScenarioHarness:
    """Deterministic simulator + phase timeline for one scenario."""

    def __init__(self, spec: ScenarioSpec, scale: float = 1.0):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.spec = spec
        self.scale = scale
        self.sim = Simulator()
        self.tap = CaptureTap()
        #: The scenario's only randomness source (determinism rule:
        #: identical seeds must reproduce byte-identical captures).
        self.rng = random.Random(spec.seed)
        self.timers = ProtocolTimers()
        self.names: dict[IPv4Address, str] = {}
        self._hosts: dict[str, SimHost] = {}
        self._server_count = 0
        self._outstation_count = 0
        self.start_us: Ticks = START_US
        self.detect_after_us: Ticks = \
            self.start_us + self.scaled(spec.learn_s)
        self.onset_us: Ticks = \
            self.detect_after_us + self.scaled(spec.attack_delay_s)
        self.attack_end_us: Ticks = \
            self.onset_us + self.scaled(spec.attack_s)

    def scaled(self, seconds: float) -> Ticks:
        """Scaled duration in ticks (phase lengths, not cadences)."""
        return seconds_to_ticks(seconds * self.scale)

    # -- hosts --------------------------------------------------------

    def _add_host(self, name: str, ip: int, mac: int) -> SimHost:
        if name in self._hosts:
            raise ValueError(f"host {name!r} already exists")
        host = SimHost(name=name, ip=IPv4Address(ip),
                       mac=MacAddress(mac))
        self._hosts[name] = host
        self.names[host.ip] = name
        return host

    def add_server(self, name: str) -> SimHost:
        index = self._server_count
        self._server_count += 1
        return self._add_host(name, _SERVER_IP_BASE + index,
                              0x02C000000000 + index)

    def add_outstation(self, name: str) -> SimHost:
        index = self._outstation_count
        self._outstation_count += 1
        return self._add_host(name, _OUTSTATION_IP_BASE + index,
                              0x02A000000000 + index)

    def add_attacker(self, name: str = "ATTACKER") -> SimHost:
        return self._add_host(name, _ATTACKER_IP, 0x02DEADBEEF00)

    # -- links --------------------------------------------------------

    def make_link(self, server: str, behavior: OutstationBehavior):
        """IEC-104 link from a registered host to ``behavior``.

        The outstation host is created on first use; the server (or
        attacker) host must have been added explicitly.
        """
        from ..simnet.agents import IEC104Link
        if server not in self._hosts:
            raise KeyError(f"unknown server host {server!r} — call "
                           "add_server()/add_attacker() first")
        if behavior.name not in self._hosts:
            self.add_outstation(behavior.name)
        link = IEC104Link(
            sim=self.sim, tap=self.tap, rng=self.rng,
            server_host=self._hosts[server],
            outstation_host=self._hosts[behavior.name],
            behavior=behavior, server_name=server,
            timers=self.timers)
        link.run_until(None)
        return link

    def make_modbus_link(self, master: str, outstation: str,
                         registers) -> "ModbusLink":
        """Modbus/TCP link from a registered host to ``outstation``.

        ``registers`` maps holding-register address to a source
        callable (seconds → value).  Host conventions mirror
        :meth:`make_link`: the outstation host is created on first
        use; the master (or attacker) must exist already.
        """
        from ..simnet.modbus import ModbusLink
        if master not in self._hosts:
            raise KeyError(f"unknown master host {master!r} — call "
                           "add_server()/add_attacker() first")
        if outstation not in self._hosts:
            self.add_outstation(outstation)
        link = ModbusLink(
            sim=self.sim, tap=self.tap, rng=self.rng,
            master_host=self._hosts[master],
            outstation_host=self._hosts[outstation],
            master_name=master, outstation_name=outstation,
            registers=registers)
        link.run_until(None)
        return link

    # -- scheduling ---------------------------------------------------

    def at(self, when_us: Ticks, action: Callable[[], None]) -> None:
        """Schedule ``action`` — mid-run link calls must go through
        the event queue so the tap stays (nearly) time-ordered."""
        self.sim.schedule(when_us, action)

    def attack_interval(self, label: str,
                        start_us: Ticks | None = None,
                        end_us: Ticks | None = None) -> LabeledInterval:
        return LabeledInterval(
            start_us=self.onset_us if start_us is None else start_us,
            end_us=self.attack_end_us if end_us is None else end_us,
            label=label)

    # -- completion ---------------------------------------------------

    def finish(self, attacker_endpoints: Sequence[str],
               affected_ioas: Iterable[int],
               intervals: Sequence[LabeledInterval],
               protocol: str = "iec104") -> ScenarioRun:
        """Run the simulation out and assemble the ground truth.

        ``protocol`` names the :class:`~repro.protocols.base.
        ProtocolSpec` the scenario's links speak; the scorer binds
        its replay pipeline to it (see ``GroundTruth.protocol``).
        """
        spans = tuple(intervals)
        end_us = max([self.attack_end_us]
                     + [span.end_us for span in spans]) \
            + self.scaled(TAIL_S)
        self.sim.run_until(end_us)
        truth = GroundTruth(
            scenario=self.spec.name, family=self.spec.family,
            seed=self.spec.seed, scale=self.scale,
            detect_after_us=self.detect_after_us,
            attacker_endpoints=tuple(attacker_endpoints),
            affected_ioas=tuple(sorted(set(affected_ioas))),
            intervals=spans, protocol=protocol)
        return ScenarioRun(spec=self.spec, scale=self.scale,
                           tap=self.tap, names=dict(self.names),
                           truth=truth)
