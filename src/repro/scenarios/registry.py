"""The scenario registry: frozen specs, decorated builders.

A scenario is a *spec* (frozen metadata: name, attack family, seed,
phase durations) plus a *builder* (a function that turns the spec
into a finished :class:`~repro.scenarios.harness.ScenarioRun`).
Builders register themselves::

    @register_scenario(ScenarioSpec(name="rogue-master", ...))
    def build_rogue_master(spec, scale):
        harness = ScenarioHarness(spec, scale)
        ...
        return harness.finish(...)

The registry is populated at import of :mod:`repro.scenarios.attacks`
and is the single source of truth for ``repro scenario list``,
``repro bench detect`` and the scenario tests.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .harness import ScenarioRun

_NAME_RE = re.compile(r"^[a-z][a-z0-9]*(-[a-z0-9]+)*$")


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """Frozen description of one registered attack scenario.

    Durations are in seconds of simulated time and are multiplied by
    the run's ``scale`` (the quick bench mode runs at 0.5); specs
    must stay valid down to scale 0.5.
    """

    #: Registry key (kebab-case, unique).
    name: str
    #: Attack family the scenario belongs to.
    family: str
    #: One-line human description for ``repro scenario list``.
    title: str
    #: Seed for the scenario's single ``random.Random``.
    seed: int = 104
    #: Clean-traffic window the detector trains on.
    learn_s: float = 240.0
    #: Gap between the LEARN→DETECT boundary and the attack onset
    #: (must clear the stream reorder window with margin so scoring
    #: never trains on attack traffic).
    attack_delay_s: float = 40.0
    #: Nominal attack duration (builders may derive the labeled
    #: interval from their actual action schedule instead).
    attack_s: float = 60.0
    #: Free-form labels (``repro scenario list`` shows them).
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"scenario name {self.name!r} must be kebab-case")
        if not self.family:
            raise ValueError(f"{self.name}: family must be non-empty")
        for label, value in (("learn_s", self.learn_s),
                             ("attack_delay_s", self.attack_delay_s),
                             ("attack_s", self.attack_s)):
            if value <= 0:
                raise ValueError(
                    f"{self.name}: {label} must be positive, "
                    f"got {value}")


ScenarioBuilder = Callable[[ScenarioSpec, float], "ScenarioRun"]


@dataclass(frozen=True)
class RegisteredScenario:
    """A spec bound to its builder."""

    spec: ScenarioSpec
    build: ScenarioBuilder = field(compare=False)


#: name -> registered scenario.  Populated by decoration at import of
#: :mod:`repro.scenarios.attacks`; never mutated afterwards.
_REGISTRY: dict[str, RegisteredScenario] = {}


def register_scenario(spec: ScenarioSpec
                      ) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Class the decorated builder under ``spec.name``."""
    def decorate(build: ScenarioBuilder) -> ScenarioBuilder:
        if spec.name in _REGISTRY:
            raise ValueError(
                f"scenario {spec.name!r} is already registered")
        _REGISTRY[spec.name] = RegisteredScenario(spec=spec,
                                                  build=build)
        return build
    return decorate


def all_scenarios() -> tuple[RegisteredScenario, ...]:
    """Every registered scenario, sorted by name."""
    _ensure_loaded()
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def get_scenario(name: str) -> RegisteredScenario:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(
            f"unknown scenario {name!r}; registered: {known}") \
            from None


def build_scenario(name: str, scale: float = 1.0) -> "ScenarioRun":
    """Build the named scenario's capture + ground truth."""
    registered = get_scenario(name)
    return registered.build(registered.spec, scale)


def _ensure_loaded() -> None:
    # The built-in attack builders live in .attacks and register on
    # import; loading lazily here keeps `import repro.scenarios.
    # registry` cheap and cycle-free for tests that only need specs.
    from . import attacks  # noqa: F401
