"""Replay labeled captures through the stream pipeline and score.

The scorer is deliberately the *production* path: packets go through
a real :class:`~repro.stream.pipeline.StreamPipeline` (frame →
decode → bounded reorder → dispatch) into a fresh
:class:`~repro.stream.detector.OnlineCombinedDetector`.  The
LEARN→DETECT flip, however, must be *exact* for scoring: the live
monitor flips at batch granularity against the stream clock, and on
a sparse capture one batch can overshoot the boundary by tens of
seconds — enough to train the whitelists on attack packets and
corrupt every number downstream.  The replay therefore gates the
source at ``detect_after_us``: every packet strictly before the
boundary is ingested *and flushed* in LEARN mode, then the detector
flips, then the rest streams in DETECT mode through the same
pipeline (decoder and reorder state persist across the gate).  The
ground truth's ``attack_delay_s`` margin keeps the live monitor's
batch-granular flip safe too; the sidecar check in
:class:`~repro.scenarios.sidecar.GroundTruth` enforces the ordering.

Matching semantics live in :mod:`repro.analysis.labels`; this module
only wires detector output (scored connections + first-alert times)
to a capture's :class:`~repro.scenarios.sidecar.GroundTruth`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from ..analysis.labels import DetectionScore, score_detections
from ..netstack.addresses import IPv4Address
from ..protocols.base import get_protocol
from ..stream import OnlineCombinedDetector, StreamPipeline
from .harness import ScenarioRun
from .registry import all_scenarios
from .sidecar import GroundTruth

#: Scoring batch size (drives the replay loop, not the flip).
SCORE_BATCH = 64


class _GatedSource:
    """ListSource split at the LEARN→DETECT boundary.

    Serves every packet with ``time_us`` strictly before the
    boundary first (in original order — the capture may be mildly
    out of order, so this is a predicate split, not a prefix), then
    reports empty until :meth:`open_detect` releases the rest.
    """

    def __init__(self, packets: Sequence[Any], boundary_us: int):
        self._learn = [packet for packet in packets
                       if packet.time_us < boundary_us]
        self._detect = [packet for packet in packets
                        if packet.time_us >= boundary_us]
        self._items = self._learn
        self._cursor = 0
        self._opened = False

    def open_detect(self) -> None:
        self._items = self._detect
        self._cursor = 0
        self._opened = True

    def poll(self, max_items: int) -> list[Any]:
        batch = self._items[self._cursor:self._cursor + max_items]
        self._cursor += len(batch)
        return batch

    @property
    def exhausted(self) -> bool:
        return self._opened and self._cursor >= len(self._detect)


def replay_capture(packets: Sequence[Any],
                   names: Mapping[IPv4Address, str],
                   truth: GroundTruth,
                   batch_size: int = SCORE_BATCH,
                   detector: OnlineCombinedDetector | None = None
                   ) -> OnlineCombinedDetector:
    """Stream one labeled capture; return the flipped detector.

    ``detector`` lets callers replay into a custom-configured (or
    instrumented) detector; it must be fresh and in LEARN mode.
    """
    if detector is None:
        detector = OnlineCombinedDetector()
    source = _GatedSource(packets, truth.detect_after_us)
    pipeline = StreamPipeline(source=source, names=dict(names),
                              analyzers=[detector],
                              batch_size=batch_size,
                              protocol=get_protocol(truth.protocol))
    switched = False
    while True:
        moved = pipeline.step(max_items=batch_size)
        if moved:
            continue
        if not switched:
            # Every pre-boundary event — including the reorder tail —
            # is dispatched in LEARN before the flip.
            pipeline.flush()
            pipeline.switch_to_detect()
            source.open_detect()
            switched = True
            continue
        if pipeline.exhausted:
            break
    pipeline.flush()
    return detector


def score_capture(packets: Sequence[Any],
                  names: Mapping[IPv4Address, str],
                  truth: GroundTruth,
                  batch_size: int = SCORE_BATCH) -> DetectionScore:
    """Precision / recall / latency of one labeled capture."""
    detector = replay_capture(packets, names, truth,
                              batch_size=batch_size)
    return score_detections(
        connections=detector.scored_connections(),
        attacker_endpoints=truth.attacker_endpoints,
        intervals=truth.intervals,
        first_alerts=detector.first_alert_times())


@dataclass(frozen=True, slots=True)
class ScenarioResult:
    """One scenario's scored outcome."""

    name: str
    family: str
    scale: float
    events_learned: int
    events_scored: int
    detection: DetectionScore

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "family": self.family,
            "scale": self.scale,
            "events_learned": self.events_learned,
            "events_scored": self.events_scored,
            "detection": self.detection.to_json(),
        }


def score_run(run: ScenarioRun,
              batch_size: int = SCORE_BATCH) -> ScenarioResult:
    """Build-and-score glue for one finished scenario run."""
    detector = replay_capture(run.packets, run.names, run.truth,
                              batch_size=batch_size)
    detection = score_detections(
        connections=detector.scored_connections(),
        attacker_endpoints=run.truth.attacker_endpoints,
        intervals=run.truth.intervals,
        first_alerts=detector.first_alert_times())
    return ScenarioResult(
        name=run.truth.scenario, family=run.truth.family,
        scale=run.scale, events_learned=detector.events_learned,
        events_scored=detector.events_scored, detection=detection)


@dataclass(frozen=True, slots=True)
class CorpusResult:
    """Whole-corpus outcome at one scale."""

    scale: float
    results: tuple[ScenarioResult, ...]

    @property
    def true_positives(self) -> int:
        return sum(r.detection.true_positives for r in self.results)

    @property
    def false_positives(self) -> int:
        return sum(r.detection.false_positives for r in self.results)

    @property
    def false_negatives(self) -> int:
        return sum(r.detection.false_negatives for r in self.results)

    @property
    def precision(self) -> float:
        alerted = self.true_positives + self.false_positives
        return self.true_positives / alerted if alerted else 1.0

    @property
    def recall(self) -> float:
        malicious = self.true_positives + self.false_negatives
        return self.true_positives / malicious if malicious else 1.0

    @property
    def mean_detection_latency_us(self) -> int | None:
        latencies = [r.detection.detection_latency_us
                     for r in self.results
                     if r.detection.detection_latency_us is not None]
        if not latencies:
            return None
        return sum(latencies) // len(latencies)

    def to_json(self) -> dict[str, Any]:
        return {
            "scale": self.scale,
            "results": [r.to_json() for r in self.results],
            "corpus": {
                "scenarios": len(self.results),
                "true_positives": self.true_positives,
                "false_positives": self.false_positives,
                "false_negatives": self.false_negatives,
                "precision": self.precision,
                "recall": self.recall,
                "mean_detection_latency_us":
                    self.mean_detection_latency_us,
            },
        }


def score_corpus(scale: float = 1.0,
                 names: Iterable[str] | None = None,
                 batch_size: int = SCORE_BATCH) -> CorpusResult:
    """Build + score every registered scenario (or ``names``)."""
    wanted = set(names) if names is not None else None
    results = []
    for registered in all_scenarios():
        if wanted is not None and registered.spec.name not in wanted:
            continue
        run = registered.build(registered.spec, scale)
        results.append(score_run(run, batch_size=batch_size))
    return CorpusResult(scale=scale, results=tuple(results))
