"""Ground-truth sidecars: versioned labels riding next to captures.

A capture alone cannot say *which* packets were the attack — once it
leaves the simulator (cache, disk, another process) the labels must
travel with it.  Every scenario therefore emits a ``.truth.json``
sidecar next to the pcap: a versioned JSON document recording the
attack family, the seed, the LEARN→DETECT boundary, the attacker
endpoint names, the affected IOAs and the labeled attack intervals on
the capture's ``time_us`` axis.  The scoring harness
(:mod:`repro.scenarios.score`) consumes exactly this document, so a
capture scored today and one re-scored from disk next year go through
the same contract.

The wire schema is machine-checked: :class:`GroundTruth` participates
in the staticcheck schema-drift rule (``Truth`` column of the schema
table in ``docs/streaming.md``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from ..analysis.labels import LabeledInterval
from ..simnet.clock import Ticks

#: Version of the sidecar document layout.
GROUND_TRUTH_SCHEMA_VERSION = 1


@dataclass(frozen=True, slots=True)
class GroundTruth:
    """Everything a scorer needs to know about one labeled capture."""

    #: Registry name of the scenario that produced the capture.
    scenario: str
    #: Attack family (one of the registry's families).
    family: str
    #: Seed the scenario ran with — replays must reproduce byte-
    #: identical captures from it.
    seed: int
    #: Duration scale the scenario ran at (1.0 = full length).
    scale: float
    #: Stream time at which a detector should flip LEARN → DETECT:
    #: everything before it is clean training traffic.
    detect_after_us: Ticks
    #: Host names that act maliciously; a connection touching any of
    #: them is malicious ground truth.
    attacker_endpoints: tuple[str, ...]
    #: IOAs the attack reads, writes or masks.
    affected_ioas: tuple[int, ...]
    #: Labeled attack intervals on the capture's ``time_us`` axis.
    intervals: tuple[LabeledInterval, ...]
    #: Protocol spec name the capture's links speak — the scorer
    #: binds its replay pipeline to this spec (older sidecars omit
    #: the key; every one of them was IEC 104).
    protocol: str = "iec104"

    def __post_init__(self) -> None:
        if not self.scenario:
            raise ValueError("scenario name must be non-empty")
        if not self.attacker_endpoints:
            raise ValueError(
                f"{self.scenario}: ground truth needs at least one "
                "attacker endpoint")
        if not self.intervals:
            raise ValueError(
                f"{self.scenario}: ground truth needs at least one "
                "labeled interval")
        if self.detect_after_us <= 0:
            raise ValueError(
                f"{self.scenario}: detect_after_us must be positive")
        onset = min(span.start_us for span in self.intervals)
        if onset < self.detect_after_us:
            raise ValueError(
                f"{self.scenario}: attack onset {onset} precedes the "
                f"LEARN→DETECT boundary {self.detect_after_us} — the "
                "whitelists would train on malicious traffic")

    @property
    def onset_us(self) -> Ticks:
        """Earliest labeled attack start."""
        return min(span.start_us for span in self.intervals)

    # -- wire form ----------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": GROUND_TRUTH_SCHEMA_VERSION,
            "scenario": self.scenario,
            "family": self.family,
            "seed": self.seed,
            "scale": self.scale,
            "detect_after_us": self.detect_after_us,
            "attacker_endpoints": list(self.attacker_endpoints),
            "affected_ioas": list(self.affected_ioas),
            "intervals": [span.to_json() for span in self.intervals],
            "protocol": self.protocol,
        }

    @classmethod
    def from_json(cls, document: Mapping[str, Any]) -> "GroundTruth":
        schema = document.get("schema")
        if schema != GROUND_TRUTH_SCHEMA_VERSION:
            raise ValueError(
                f"ground-truth sidecar schema {schema!r} is not the "
                f"supported version {GROUND_TRUTH_SCHEMA_VERSION}")
        return cls(
            scenario=str(document["scenario"]),
            family=str(document["family"]),
            seed=int(document["seed"]),
            scale=float(document["scale"]),
            detect_after_us=int(document["detect_after_us"]),
            attacker_endpoints=tuple(
                str(name) for name in document["attacker_endpoints"]),
            affected_ioas=tuple(
                int(ioa) for ioa in document["affected_ioas"]),
            intervals=tuple(
                LabeledInterval.from_json(span)
                for span in document["intervals"]),
            protocol=str(document.get("protocol", "iec104")))


def dump_truth(truth: GroundTruth) -> str:
    """Canonical sidecar text: sorted keys, trailing newline.

    Byte-stable for identical ground truth — the determinism tests
    compare this text directly.
    """
    return json.dumps(truth.to_json(), indent=2, sort_keys=True) + "\n"


def load_truth(path: Path) -> GroundTruth:
    return GroundTruth.from_json(json.loads(path.read_text()))


def truth_path(pcap_path: Path) -> Path:
    """Sidecar path convention: ``y1.pcap`` → ``y1.truth.json``
    (mirrors the ``.names.json`` convention of ``repro generate``)."""
    return pcap_path.with_suffix(".truth.json")
