"""The built-in attack corpus: seven registered scenarios.

Each IEC 104 builder stages the same benign backbone — a
balancing-authority control center polling two outstations whose
measurement points move on deterministic sinusoids — and then mounts
one attack family on top of it after the labeled onset:

================== ==================================================
spoofed            an unknown host connects as a master and fires a
interrogation      general interrogation (paper §6.3.1's shortcut —
                   one I100 reveals every point)
rogue master       Industroyer-style iterative IOA scan + single
                   commands (ports ``simnet.attacker`` into the
                   registry)
value injection    a compromised outstation reports offset values on
                   its learned connection — only the physical
                   envelope can see it
command flooding   a burst of C_SC_NA_1 commands from the *learned*
                   control-center connection against known IOAs
switchover abuse   a standby server promotes its keep-alive-only
                   backup connection while the primary is healthy
                   (Fig. 16's pattern, maliciously)
stale-data         a compromised outstation freezes its sources; no
masking            threshold crossings → the link idles into in-band
                   TESTFR (paper §6.3's Type 5 pathology, weaponized)
================== ==================================================

The seventh scenario, ``modbus-value-injection``, swaps the backbone
itself: a Modbus/TCP master polls holding registers and an unknown
master injects forged words — the value-injection family on the
second protocol behind :mod:`repro.protocols`.

The detection path each family exercises is documented per builder
and in ``docs/scenarios.md``.
"""

from __future__ import annotations

import math
from typing import Callable

from ..analysis.labels import LabeledInterval
from ..iec104.constants import TypeID
from ..simnet.behaviors import (SYMBOL_ACTIVE_POWER, SYMBOL_CURRENT,
                                SYMBOL_REACTIVE_POWER, SYMBOL_STATUS,
                                SYMBOL_VOLTAGE, OutstationBehavior,
                                OutstationType, PointConfig,
                                ReportMode)
from ..simnet.clock import seconds_to_ticks, ticks_to_seconds
from .harness import ScenarioHarness, ScenarioRun
from .registry import ScenarioSpec, register_scenario

_TAU = 2.0 * math.pi

#: (symbol, base, amplitude, period_s) of the four measurement
#: points every outstation carries.  Amplitude/period are chosen so
#: spontaneous reporting (threshold 0.5) stays active every few
#: seconds — a benign link must never idle past t3, or in-band
#: TESTFR tokens would leak into the learned vocabulary.
_MEASUREMENTS = (
    (SYMBOL_ACTIVE_POWER, 310.0, 12.0, 60.0),
    (SYMBOL_REACTIVE_POWER, 45.0, 9.0, 75.0),
    (SYMBOL_VOLTAGE, 118.0, 3.0, 30.0),
    (SYMBOL_CURRENT, 260.0, 15.0, 90.0),
)


def _sine(base: float, amplitude: float, period_s: float,
          phase: float):
    def value(t: float) -> float:
        return base + amplitude * math.sin(_TAU * t / period_s + phase)
    return value


def _outstation(name: str, substation: str, base_ioa: int,
                phase: float, wrap=None) -> OutstationBehavior:
    """Four spontaneous measurements + one status point.

    ``wrap(index, source)`` lets a scenario interpose on a
    measurement source (value injection, stale masking).
    """
    points = []
    for index, (symbol, base, amplitude,
                period_s) in enumerate(_MEASUREMENTS):
        source = _sine(base, amplitude, period_s,
                       phase + index * 1.3)
        if wrap is not None:
            source = wrap(index, source)
        points.append(PointConfig(
            ioa=base_ioa + index, type_id=TypeID.M_ME_NC_1,
            symbol=symbol, source=source,
            mode=ReportMode.SPONTANEOUS, threshold=0.5, period=2.0))
    points.append(PointConfig(
        ioa=base_ioa + 9, type_id=TypeID.M_SP_NA_1,
        symbol=SYMBOL_STATUS, source=lambda _t: 1.0,
        mode=ReportMode.SPONTANEOUS, threshold=0.5, period=2.0))
    return OutstationBehavior(
        name=name, substation=substation,
        outstation_type=OutstationType.PRIMARY_ONLY, points=points)


def _plant(wrap=None) -> OutstationBehavior:
    return _outstation("O-PLANT", "PLANT", base_ioa=101, phase=0.0,
                       wrap=wrap)


def _farm() -> OutstationBehavior:
    return _outstation("O-FARM", "FARM", base_ioa=201, phase=0.7)


def _benign_backbone(h: ScenarioHarness, plant: OutstationBehavior,
                     plant_server: str = "C-BA1",
                     farm_server: str = "C-BA1"):
    """Start the clean traffic both whitelists train on.

    Returns the plant's primary link (scenarios that attack *through*
    the learned connection need it).  The farm outstation exists so
    every scored capture has a connection that must stay quiet — a
    false-positive opportunity in every scenario.
    """
    h.add_server(plant_server)
    if farm_server != plant_server:
        h.add_server(farm_server)
    plant_link = h.make_link(plant_server, plant)
    plant_link.start_primary(h.start_us)
    farm_link = h.make_link(farm_server, _farm())
    farm_link.start_primary(h.start_us + 700_000)
    return plant_link


def _ioas(behavior: OutstationBehavior) -> list[int]:
    return [point.ioa for point in behavior.points]


# -- family 1: spoofed interrogation ----------------------------------

@register_scenario(ScenarioSpec(
    name="spoofed-interrogation",
    family="spoofed-interrogation",
    title="unknown host connects as master, fires I100 to map every "
          "point",
    seed=211, attack_s=30.0,
    tags=("recon", "unknown-connection")))
def build_spoofed_interrogation(spec: ScenarioSpec,
                                scale: float) -> ScenarioRun:
    # Detection path: the (ATTACKER, O-PLANT) connection was never
    # learned — batch semantics mark every token unknown, so the
    # cyber whitelist alerts on the first frame.
    h = ScenarioHarness(spec, scale)
    plant = _plant()
    _benign_backbone(h, plant)
    h.add_attacker()
    spoof = h.make_link("ATTACKER", plant)
    h.at(h.onset_us, lambda: spoof.start_primary(h.sim.now_us))
    h.at(h.attack_end_us, lambda: spoof.close(h.sim.now_us))
    return h.finish(
        attacker_endpoints=("ATTACKER",),
        affected_ioas=_ioas(plant),
        intervals=[h.attack_interval(
            "spoofed general interrogation from unknown master")])


# -- family 2: rogue master (Industroyer) -----------------------------

@register_scenario(ScenarioSpec(
    name="rogue-master",
    family="rogue-master",
    title="Industroyer-style iterative IOA scan, then single "
          "commands against discovered points",
    seed=223, attack_s=30.0,
    tags=("recon", "commands", "industroyer")))
def build_rogue_master(spec: ScenarioSpec,
                       scale: float) -> ScenarioRun:
    # Detection path: unknown connection, plus C_RD_NA_1 / C_SC_NA_1
    # tokens that no benign link ever produced.  This is the
    # registered form of ``simnet.attacker``'s hand-rolled run — the
    # extension benchmark trains on a benign capture year and must
    # score this connection's token stream > 50% unseen.
    h = ScenarioHarness(spec, scale)
    plant = _plant()
    _benign_backbone(h, plant)
    h.add_attacker()
    spoof = h.make_link("ATTACKER", plant)
    discovered: list[int] = []

    h.at(h.onset_us, lambda: spoof.start_primary(h.sim.now_us))
    # Industroyer probed address ranges blindly; 95..134 brackets the
    # plant's real IOAs so a few probes land.
    probe_start = h.onset_us + seconds_to_ticks(2.0)
    probe_gap = seconds_to_ticks(0.25)
    scan = range(95, 135)
    for index, ioa in enumerate(scan):
        def probe(ioa: int = ioa) -> None:
            if spoof.send_read(h.sim.now_us, ioa):
                discovered.append(ioa)
        h.at(probe_start + index * probe_gap, probe)
    strike_start = probe_start + len(scan) * probe_gap \
        + seconds_to_ticks(1.0)
    strike_gap = seconds_to_ticks(0.5)
    command_count = 6
    for index in range(command_count):
        def strike(index: int = index) -> None:
            if index < len(discovered):
                spoof.send_single_command(
                    h.sim.now_us, discovered[index],
                    state=index % 2 == 0)
        h.at(strike_start + index * strike_gap, strike)
    last_us = strike_start + command_count * strike_gap \
        + seconds_to_ticks(1.0)
    h.at(last_us, lambda: spoof.close(h.sim.now_us))
    return h.finish(
        attacker_endpoints=("ATTACKER",),
        affected_ioas=_ioas(plant),
        intervals=[h.attack_interval(
            "iterative IOA scan + single commands",
            end_us=last_us)])


# -- family 3: value injection ----------------------------------------

@register_scenario(ScenarioSpec(
    name="value-injection",
    family="value-injection",
    title="compromised outstation reports offset measurements on its "
          "learned connection",
    seed=227, attack_s=60.0,
    tags=("physical", "integrity")))
def build_value_injection(spec: ScenarioSpec,
                          scale: float) -> ScenarioRun:
    # Detection path: the token stream stays perfectly whitelisted —
    # only the physical envelopes (min/max learned per point) can
    # flag the offset values.  Exercises the PhysicalWhitelist arm
    # of the combined detector in isolation.
    h = ScenarioHarness(spec, scale)
    offset = {"value": 0.0}

    def wrap(index: int, source):
        if index >= 2:  # inject P and Q, leave U and I honest
            return source

        def injected(t: float, source=source) -> float:
            return source(t) + offset["value"]
        return injected

    plant = _plant(wrap=wrap)
    _benign_backbone(h, plant)

    def inject() -> None:
        offset["value"] = 90.0

    def restore() -> None:
        offset["value"] = 0.0

    h.at(h.onset_us, inject)
    h.at(h.attack_end_us, restore)
    return h.finish(
        attacker_endpoints=("O-PLANT",),
        affected_ioas=[101, 102],
        intervals=[h.attack_interval(
            "measurement offset injection (+90 on P and Q)")])


# -- family 4: command flooding ---------------------------------------

@register_scenario(ScenarioSpec(
    name="command-flooding",
    family="command-flooding",
    title="C_SC_NA_1 burst from the learned control-center "
          "connection against known IOAs",
    seed=229, attack_s=30.0,
    tags=("commands", "availability")))
def build_command_flooding(spec: ScenarioSpec,
                           scale: float) -> ScenarioRun:
    # Detection path: the connection and its endpoints are fully
    # learned — what alerts is the C_SC_NA_1 token itself, which no
    # clean capture contains.  (The cyber whitelist has no rate
    # model: a flood of *whitelisted* tokens would be invisible, so
    # this family deliberately floods a command type instead.)
    # The farm rides a second server so only the flooding center's
    # connection is malicious ground truth.
    h = ScenarioHarness(spec, scale)
    plant = _plant()
    plant_link = _benign_backbone(h, plant, plant_server="C-BA1",
                                  farm_server="C-BA2")
    command_count = 30
    flood_gap = seconds_to_ticks(0.5)
    targets = [point.ioa for point in plant.points[:4]]
    for index in range(command_count):
        def flood(index: int = index) -> None:
            plant_link.send_single_command(
                h.sim.now_us, targets[index % len(targets)],
                state=index % 2 == 0)
        h.at(h.onset_us + index * flood_gap, flood)
    end_us = h.onset_us + command_count * flood_gap
    return h.finish(
        attacker_endpoints=("C-BA1",),
        affected_ioas=targets,
        intervals=[h.attack_interval(
            "single-command flood from compromised control center",
            end_us=end_us)])


# -- family 5: switchover abuse ---------------------------------------

@register_scenario(ScenarioSpec(
    name="switchover-abuse",
    family="switchover-abuse",
    title="standby server promotes its keep-alive-only backup "
          "connection while the primary is healthy",
    seed=233, attack_s=60.0,
    tags=("session", "switchover")))
def build_switchover_abuse(spec: ScenarioSpec,
                           scale: float) -> ScenarioRun:
    # Detection path: (C-SHADOW, O-PLANT) is a *learned* connection
    # whose whitelist holds only U16/U32 keep-alive transitions; the
    # promotion's STARTDT + interrogation + reports are all unseen
    # transitions on it, crossing the 0.2 fraction within a few
    # frames (the paper's Fig. 16 switchover pattern, uninvited).
    h = ScenarioHarness(spec, scale)
    plant = _plant()
    _benign_backbone(h, plant)
    h.add_server("C-SHADOW")
    backup = h.make_link("C-SHADOW", plant)
    backup.start_secondary(h.start_us + 300_000)
    h.at(h.onset_us, lambda: backup.promote(h.sim.now_us))
    h.at(h.attack_end_us, lambda: backup.close(h.sim.now_us))
    return h.finish(
        attacker_endpoints=("C-SHADOW",),
        affected_ioas=_ioas(plant),
        intervals=[h.attack_interval(
            "unsanctioned promotion of the standby connection")])


# -- family 6: stale-data masking -------------------------------------

@register_scenario(ScenarioSpec(
    name="stale-data-masking",
    family="stale-data-masking",
    title="compromised outstation freezes its sources; the silent "
          "link idles into in-band TESTFR",
    seed=239, attack_s=120.0,
    tags=("physical", "masking", "type-5")))
def build_stale_data_masking(spec: ScenarioSpec,
                             scale: float) -> ScenarioRun:
    # Detection path: frozen values cross no spontaneous threshold,
    # so the plant link goes quiet and the server's idle watch sends
    # in-band TESTFR after t3 — a U16 token no benign phase of this
    # capture ever produced.  Detection latency is therefore ≈ t3
    # (20 s), the corpus's distinctly slowest catch.  attack_s must
    # stay > 2×t3 at quick scale for the idle watch to fire.
    h = ScenarioHarness(spec, scale)
    frozen: dict[str, float | None] = {"at": None}

    def wrap(index: int, source):
        def masked(t: float, source=source) -> float:
            at = frozen["at"]
            return source(t if at is None else at)
        return masked

    plant = _plant(wrap=wrap)
    _benign_backbone(h, plant)

    def freeze() -> None:
        frozen["at"] = ticks_to_seconds(h.onset_us)

    def thaw() -> None:
        frozen["at"] = None

    h.at(h.onset_us, freeze)
    h.at(h.attack_end_us, thaw)
    return h.finish(
        attacker_endpoints=("O-PLANT",),
        affected_ioas=[101, 102, 103, 104],
        intervals=[h.attack_interval(
            "frozen measurement sources masking the true state")])


# -- family 7: Modbus value injection ---------------------------------

def _register_bank(
        base_address: int, phase: float
) -> dict[int, Callable[[float], float]]:
    """Holding registers backed by the same sinusoid generators the
    IEC 104 outstations report (scaled into the u16 word range)."""
    registers: dict[int, Callable[[float], float]] = {}
    for index, (_symbol, base, amplitude,
                period_s) in enumerate(_MEASUREMENTS):
        registers[base_address + index] = _sine(
            base * 10.0, amplitude * 10.0, period_s,
            phase + index * 1.3)
    registers[base_address + 9] = lambda _t: 1.0  # status word
    return registers


@register_scenario(ScenarioSpec(
    name="modbus-value-injection",
    family="value-injection",
    title="unknown Modbus master writes forged words into the "
          "plant's holding registers",
    seed=241, attack_s=60.0,
    tags=("modbus", "integrity", "unknown-connection")))
def build_modbus_value_injection(spec: ScenarioSpec,
                                 scale: float) -> ScenarioRun:
    # Detection path: the whole capture speaks Modbus/TCP (the
    # sidecar's ``protocol`` binds the scoring replay to the modbus
    # spec), and the (ATTACKER, M-PLANT) connection was never
    # learned — batch semantics mark every F6/F16 write token
    # unknown, so the cyber whitelist alerts on the first forged
    # word.  The benign F3 poll cycles stay whitelisted throughout.
    h = ScenarioHarness(spec, scale)
    plant_registers = _register_bank(100, phase=0.0)
    h.add_server("C-BA1")
    plant = h.make_modbus_link("C-BA1", "M-PLANT", plant_registers)
    plant.start_polling(h.start_us, start_address=100, count=4)
    farm = h.make_modbus_link("C-BA1", "M-FARM",
                              _register_bank(200, phase=0.7))
    farm.start_polling(h.start_us + 700_000, start_address=200,
                       count=4)
    h.add_attacker()
    rogue = h.make_modbus_link("ATTACKER", "M-PLANT",
                               plant_registers)
    h.at(h.onset_us, lambda: rogue.connect(h.sim.now_us))
    forge_start = h.onset_us + seconds_to_ticks(1.0)
    forge_gap = seconds_to_ticks(2.0)
    targets = (100, 101, 102, 103)
    forge_count = 16
    for index in range(forge_count):
        def forge(index: int = index) -> None:
            rogue.send_write_single(
                h.sim.now_us, targets[index % len(targets)],
                0xFF00 + index)
        h.at(forge_start + index * forge_gap, forge)
    burst_us = forge_start + forge_count * forge_gap
    h.at(burst_us, lambda: rogue.send_write_multiple(
        h.sim.now_us, 100, [0xFFF0, 0xFFF1, 0xFFF2, 0xFFF3]))
    end_us = burst_us + seconds_to_ticks(1.0)
    h.at(end_us, lambda: rogue.close(h.sim.now_us))
    return h.finish(
        attacker_endpoints=("ATTACKER",),
        affected_ioas=targets,
        intervals=[h.attack_interval(
            "forged register writes from unknown Modbus master",
            end_us=end_us)],
        protocol="modbus")


#: Imported for the registry side effect; referenced so linters see a
#: use for every builder symbol.
BUILTIN_SCENARIOS = (
    build_spoofed_interrogation,
    build_rogue_master,
    build_value_injection,
    build_command_flooding,
    build_switchover_abuse,
    build_stale_data_masking,
    build_modbus_value_injection,
)

#: Re-exported for scorers that want the interval type near specs.
__all__ = ["BUILTIN_SCENARIOS", "LabeledInterval"]
