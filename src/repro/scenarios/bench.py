"""``repro bench detect`` — the corpus-level detection benchmark.

Runs every registered scenario, scores the streaming detector against
the ground-truth sidecars and writes ``BENCH_detect.json``; with
``--check`` it re-measures and gates recall/precision against the
committed document exactly like the perf gate
(``benchmarks/record_pipeline.py``) gates throughput:

* per-scenario **recall** and **precision** must not drop below the
  committed value minus ``--headroom``;
* the corpus-level aggregates are gated the same way;
* a scenario present in the baseline but missing from the measured
  corpus fails (a silently dropped scenario is a regression);
* a missing baseline file downgrades to a warning so fresh clones
  aren't broken.

Everything in the pipeline is seeded and simulated, so identical
trees measure identical numbers — the default headroom is 0.0 and
any drift is a real behavior change.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, TextIO

from .score import CorpusResult, score_corpus

#: Version stamp of the benchmark document layout.
BENCH_SCHEMA = 1

#: Scale the CI quick mode runs the corpus at.
QUICK_SCALE = 0.5

#: Default benchmark document path (repo root by convention — the
#: CLI runs from the checkout like the perf gate does).
DEFAULT_DOCUMENT = "BENCH_detect.json"

#: Metrics gated per scenario and per corpus.
GATE_METRICS = ("recall", "precision")


def measure_mode(scale: float) -> dict[str, Any]:
    """One mode section of the benchmark document."""
    return score_corpus(scale=scale).to_json()


def check_mode(committed: dict[str, Any], measured: dict[str, Any],
               mode: str, headroom: float) -> list[str]:
    """Gate ``measured`` against a committed mode section.

    Pure over its inputs so the regression tests can feed doctored
    documents through the exact production gate.
    """
    failures: list[str] = []
    committed_results = {record["name"]: record
                         for record in committed.get("results", [])}
    measured_results = {record["name"]: record
                        for record in measured.get("results", [])}
    for name in sorted(committed_results):
        record = committed_results[name]
        got = measured_results.get(name)
        if got is None:
            failures.append(
                f"{mode}:{name}: scenario missing from the measured "
                "corpus (baseline still lists it)")
            continue
        for metric in GATE_METRICS:
            want = float(record["detection"][metric])
            have = float(got["detection"][metric])
            if have < want - headroom:
                failures.append(
                    f"{mode}:{name}: {metric} regressed "
                    f"{want:.3f} -> {have:.3f} "
                    f"(headroom {headroom:.3f})")
    committed_corpus = committed.get("corpus", {})
    measured_corpus = measured.get("corpus", {})
    for metric in GATE_METRICS:
        if metric not in committed_corpus:
            continue
        want = float(committed_corpus[metric])
        have = float(measured_corpus.get(metric, 0.0))
        if have < want - headroom:
            failures.append(
                f"{mode}:corpus: {metric} regressed "
                f"{want:.3f} -> {have:.3f} "
                f"(headroom {headroom:.3f})")
    return failures


def _format_latency(latency_us: Any) -> str:
    if latency_us is None:
        return "-"
    return f"{int(latency_us) / 1000:.0f}ms"


def render_mode(mode: str, section: dict[str, Any],
                out: TextIO) -> None:
    print(f"[{mode}] scale={section['scale']}", file=out)
    header = (f"  {'scenario':<24} {'precision':>9} {'recall':>7} "
              f"{'latency':>8} {'tp':>3} {'fp':>3} {'fn':>3}")
    print(header, file=out)
    for record in section["results"]:
        detection = record["detection"]
        print(f"  {record['name']:<24} "
              f"{detection['precision']:>9.3f} "
              f"{detection['recall']:>7.3f} "
              f"{_format_latency(detection['detection_latency_us']):>8} "
              f"{detection['true_positives']:>3} "
              f"{detection['false_positives']:>3} "
              f"{detection['false_negatives']:>3}", file=out)
    corpus = section["corpus"]
    print(f"  {'corpus':<24} {corpus['precision']:>9.3f} "
          f"{corpus['recall']:>7.3f} "
          f"{_format_latency(corpus['mean_detection_latency_us']):>8} "
          f"{corpus['true_positives']:>3} "
          f"{corpus['false_positives']:>3} "
          f"{corpus['false_negatives']:>3}", file=out)


def _corpus_to_section(corpus: CorpusResult) -> dict[str, Any]:
    return corpus.to_json()


def run_detect_bench(args: argparse.Namespace,
                     out: TextIO = sys.stdout) -> int:
    path = Path(args.out)
    if args.check:
        mode = "quick" if args.quick else "full"
        if not path.exists():
            print(f"warning: no committed {path} — record one with "
                  f"`repro bench detect` (skipping gate)", file=out)
            return 0
        document = json.loads(path.read_text())
        committed = document.get("modes", {}).get(mode)
        if committed is None:
            print(f"warning: committed {path} has no {mode!r} mode "
                  f"section (skipping gate)", file=out)
            return 0
        scale = float(committed.get("scale",
                                    QUICK_SCALE if args.quick
                                    else 1.0))
        measured = measure_mode(scale)
        render_mode(mode, measured, out)
        failures = check_mode(committed, measured, mode,
                              args.headroom)
        if failures:
            for failure in failures:
                print(f"FAIL {failure}", file=out)
            return 1
        print(f"detection gate ok ({mode}, "
              f"headroom {args.headroom:.3f})", file=out)
        return 0

    modes = {"quick": QUICK_SCALE} if args.quick \
        else {"full": 1.0, "quick": QUICK_SCALE}
    if path.exists():
        document = json.loads(path.read_text())
        if document.get("schema") != BENCH_SCHEMA:
            document = {"schema": BENCH_SCHEMA, "modes": {}}
    else:
        document = {"schema": BENCH_SCHEMA, "modes": {}}
    document.setdefault("modes", {})
    for mode, scale in modes.items():
        section = measure_mode(scale)
        document["modes"][mode] = section
        render_mode(mode, section, out)
    path.write_text(json.dumps(document, indent=2, sort_keys=True)
                    + "\n")
    print(f"wrote {path}", file=out)
    return 0
