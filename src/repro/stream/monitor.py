"""The ``repro monitor`` loop: periodic snapshots of a live pipeline.

Drives a :class:`~repro.stream.pipeline.StreamPipeline` against a
(possibly still-growing) capture and renders snapshots either as human
text or as JSON lines (one document per snapshot, for piping into
``jq`` or a dashboard).

Two timing domains meet here, deliberately kept apart: *analysis* is
driven purely by stream time (capture timestamps — deterministic on
replay), while snapshot *pacing* uses the wall clock, injected so tests
can run the loop without sleeping.
"""

from __future__ import annotations

import json
import time
from typing import Callable, TextIO

from ..simnet.clock import Ticks
from .detector import OnlineCombinedDetector
from .pipeline import StreamPipeline


def render_json(snapshot: dict) -> str:
    """One snapshot as a single JSON line."""
    return json.dumps(snapshot, sort_keys=True)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_text(snapshot: dict) -> str:
    """One snapshot as an indented human-readable block."""
    seconds = snapshot["time_us"] / 1_000_000
    lines = [f"t={seconds:.3f}s packets={snapshot['packets']} "
             f"events={snapshot['events']} "
             f"failures={snapshot['failures']}"]
    for name, data in snapshot.get("analyzers", {}).items():
        parts = " ".join(
            f"{key}={_fmt(value)}" for key, value in data.items()
            if not isinstance(value, (list, dict)))
        lines.append(f"  {name}: {parts}")
    eviction = snapshot.get("eviction", {})
    if eviction.get("sweeps"):
        parts = " ".join(f"{key}={value}"
                         for key, value in eviction.items() if value)
        lines.append(f"  eviction: {parts}")
    return "\n".join(lines)


def run_monitor(pipeline: StreamPipeline, out: TextIO,
                json_lines: bool = False,
                follow: bool = False,
                once: bool = False,
                interval_s: float = 2.0,
                detect_after_us: Ticks | None = None,
                idle_grace: int = 3,
                poll_sleep_s: float = 0.2,
                max_snapshots: int | None = None,
                sleep: Callable[[float], None] = time.sleep,
                clock: Callable[[], float] = time.monotonic) -> int:
    """Drive the pipeline and emit snapshots; return snapshots emitted.

    ``once`` suppresses periodic snapshots: the source is drained (or,
    with ``follow``, polled until it stays idle for ``idle_grace``
    rounds) and exactly one final snapshot is written. Without
    ``once``, a snapshot is written every ``interval_s`` wall seconds
    plus one final snapshot when the source is exhausted.

    ``detect_after_us`` flips every :class:`OnlineCombinedDetector`
    analyzer from LEARN to DETECT once the stream clock passes that
    tick (learn-then-detect on a single capture).
    """
    detectors = [analyzer for analyzer in pipeline.analyzers
                 if isinstance(analyzer, OnlineCombinedDetector)]
    switched = detect_after_us is None
    emitted = 0
    idle_rounds = 0
    next_emit = clock() + interval_s

    def emit() -> None:
        nonlocal emitted
        snapshot = pipeline.snapshot()
        line = (render_json(snapshot) if json_lines
                else render_text(snapshot))
        print(line, file=out, flush=True)
        emitted += 1

    while True:
        moved = pipeline.step()
        if not switched and detect_after_us is not None \
                and pipeline.now_us >= detect_after_us:
            for detector in detectors:
                detector.switch_to_detect()
            switched = True
        if moved:
            idle_rounds = 0
        else:
            if pipeline.source.exhausted and not follow:
                break
            idle_rounds += 1
            if once and idle_rounds >= idle_grace:
                break
            if not follow and pipeline.source.exhausted:
                break
            sleep(poll_sleep_s)
        if not once and clock() >= next_emit:
            emit()
            next_emit = clock() + interval_s
            if max_snapshots is not None and emitted >= max_snapshots:
                return emitted
    # Final snapshot covers everything, including events still held
    # in the reordering buffer.
    pipeline.flush()
    emit()
    return emitted
