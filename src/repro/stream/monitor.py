"""The ``repro monitor`` loop: periodic snapshots of live pipelines.

Drives a :class:`~repro.stream.pipeline.StreamPipeline` (one link) or
a :class:`~repro.stream.fleet.FleetSupervisor` (many) against
(possibly still-growing) captures and renders snapshots either as
human text or as JSON lines (one document per snapshot, for piping
into ``jq`` or a dashboard).

The renderers take the typed snapshot contract
(:class:`~repro.stream.snapshots.LinkSnapshot` /
:class:`~repro.stream.snapshots.FleetSnapshot`); the legacy plain-dict
shape was removed in 1.1.0 — build typed snapshots (e.g. via
:meth:`~repro.stream.pipeline.StreamPipeline.link_snapshot`).

Two timing domains meet here, deliberately kept apart: *analysis* is
driven purely by stream time (capture timestamps — deterministic on
replay), while snapshot *pacing* uses the wall clock, injected so tests
can run the loop without sleeping.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Mapping, TextIO, Union

from ..simnet.clock import Ticks
from .fleet import FleetSupervisor
from .pipeline import StreamPipeline
from .shard import ShardedFleetSupervisor
from .snapshots import FleetSnapshot, LinkSnapshot

#: What the renderers accept.
Snapshot = Union[LinkSnapshot, FleetSnapshot]

#: What the monitor loop drives.
MonitorTarget = Union[StreamPipeline, FleetSupervisor,
                      ShardedFleetSupervisor]


def _document(snapshot: Snapshot, caller: str) -> Mapping[str, Any]:
    """The wire-form dict of a snapshot."""
    if isinstance(snapshot, (LinkSnapshot, FleetSnapshot)):
        return snapshot.to_json()
    raise TypeError(
        f"{caller}() takes a LinkSnapshot or FleetSnapshot, "
        f"not {type(snapshot).__name__}")


def render_json(snapshot: Snapshot) -> str:
    """One snapshot as a single JSON line."""
    return json.dumps(_document(snapshot, "render_json"),
                      sort_keys=True)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _render_link_text(document: Mapping[str, Any]) -> str:
    seconds = document["time_us"] / 1_000_000
    lines = [f"t={seconds:.3f}s packets={document['packets']} "
             f"events={document['events']} "
             f"failures={document['failures']}"]
    for name, data in document.get("analyzers", {}).items():
        parts = " ".join(
            f"{key}={_fmt(value)}" for key, value in data.items()
            if not isinstance(value, (list, dict)))
        lines.append(f"  {name}: {parts}")
    eviction = document.get("eviction", {})
    if eviction.get("sweeps"):
        parts = " ".join(f"{key}={value}"
                         for key, value in eviction.items() if value)
        lines.append(f"  eviction: {parts}")
    return "\n".join(lines)


def _render_fleet_text(snapshot: FleetSnapshot) -> str:
    seconds = snapshot.time_us / 1_000_000
    counts = snapshot.health_counts
    lines = [f"fleet t={seconds:.3f}s links={len(snapshot.links)} "
             f"live={counts['live']} idle={counts['idle']} "
             f"dead={counts['dead']} packets={snapshot.packets} "
             f"events={snapshot.events} "
             f"failures={snapshot.failures}"]
    for link in snapshot.links:
        seconds = link.time_us / 1_000_000
        status = snapshot.health.get(link.link, "?")
        line = (f"  [{status:>4}] {link.link}: t={seconds:.3f}s "
                f"packets={link.packets} events={link.events} "
                f"failures={link.failures}")
        if link.alerts:
            line += f" alerts={link.alerts}"
        lines.append(line)
    if snapshot.unrouted:
        lines.append(f"  unrouted frames: {snapshot.unrouted}")
    if snapshot.top_anomalies:
        parts = " ".join(
            f"{entry.link}={entry.alerts}"
            for entry in snapshot.top_anomalies)
        lines.append(f"  top anomalies: {parts}")
    return "\n".join(lines)


def render_text(snapshot: Snapshot) -> str:
    """One snapshot as an indented human-readable block.

    A :class:`FleetSnapshot` renders as the multi-link dashboard (one
    status line per link); a :class:`LinkSnapshot` (or the deprecated
    dict form) renders as the single-link block.
    """
    if isinstance(snapshot, FleetSnapshot):
        return _render_fleet_text(snapshot)
    return _render_link_text(_document(snapshot, "render_text"))


def _snapshot_of(target: MonitorTarget) -> Snapshot:
    if isinstance(target, StreamPipeline):
        return target.link_snapshot()
    return target.snapshot()


def run_monitor(target: MonitorTarget, out: TextIO | None,
                json_lines: bool = False,
                follow: bool = False,
                once: bool = False,
                interval_s: float = 2.0,
                detect_after_us: Ticks | None = None,
                idle_grace: int = 3,
                poll_sleep_s: float = 0.2,
                max_snapshots: int | None = None,
                sleep: Callable[[float], None] = time.sleep,
                clock: Callable[[], float] = time.monotonic,
                on_snapshot: Callable[[Snapshot], None] | None = None,
                should_stop: Callable[[], bool] | None = None) -> int:
    """Drive a pipeline or fleet and emit snapshots; return the count.

    ``once`` suppresses periodic snapshots: the sources are drained
    (or, with ``follow``, polled until they stay idle for
    ``idle_grace`` rounds) and exactly one final snapshot is written.
    Without ``once``, a snapshot is written every ``interval_s`` wall
    seconds plus one final snapshot when every source is exhausted.

    ``detect_after_us`` calls ``target.switch_to_detect()`` once the
    stream clock passes that tick — every
    :class:`OnlineCombinedDetector` flips from LEARN to DETECT, and a
    fleet also flips detectors on links discovered later.

    Each emitted snapshot is also handed to ``on_snapshot`` (the
    subscriber hook the serving stack attaches); ``out=None`` skips
    rendering entirely for programmatic consumers.  ``should_stop``
    is polled each round — when it returns true the loop winds down
    early with the usual final flushed snapshot, which is how
    ``repro serve`` stops a ``--follow`` monitor cleanly.
    """
    switched = detect_after_us is None
    emitted = 0
    idle_rounds = 0
    next_emit = clock() + interval_s

    def emit() -> None:
        nonlocal emitted
        snapshot = _snapshot_of(target)
        if out is not None:
            line = (render_json(snapshot) if json_lines
                    else render_text(snapshot))
            print(line, file=out, flush=True)
        if on_snapshot is not None:
            on_snapshot(snapshot)
        emitted += 1

    while True:
        if should_stop is not None and should_stop():
            break
        moved = target.step()
        if not switched and detect_after_us is not None \
                and target.now_us >= detect_after_us:
            target.switch_to_detect()
            switched = True
        if moved:
            idle_rounds = 0
        else:
            if target.exhausted and not follow:
                break
            idle_rounds += 1
            if once and idle_rounds >= idle_grace:
                break
            sleep(poll_sleep_s)
        if not once and clock() >= next_emit:
            emit()
            next_emit = clock() + interval_s
            if max_snapshots is not None and emitted >= max_snapshots:
                return emitted
    # Final snapshot covers everything, including events still held
    # in the reordering buffers.
    target.flush()
    emit()
    return emitted
