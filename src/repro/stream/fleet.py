"""Fleet monitoring: N per-link pipelines under one supervisor.

The paper's vantage is a control center watching ~27 substations at
once; one :class:`~repro.stream.pipeline.StreamPipeline` models one
link. :class:`FleetSupervisor` runs many of them — polled round-robin,
each on its own capture clock — and aggregates the per-link state into
a :class:`~repro.stream.snapshots.FleetSnapshot`: summed totals,
per-analyzer rollups, per-link health and the top-K anomaly links.

Two feeding shapes:

* **one file per link** — ``supervisor.add_link(pipeline)`` with each
  pipeline owning its own tail source (``repro monitor --link
  NAME=PATH ...``);
* **one merged file for the whole fleet** — :class:`LinkDemux` splits
  a single capture into per-link substreams by (src, dst) endpoint
  pair, discovering links as their first packet arrives
  (``repro monitor capture.pcapng --demux``). The demux routes the
  *original* records, so a demuxed link's pipeline sees byte-for-byte
  what a standalone run over a pre-split file would see — the parity
  the ``tests/stream/test_fleet.py`` suite pins.

Health is judged by the T3-scaled eviction signal against the *fleet*
clock (the max of the member clocks): a healthy IEC 104 link is never
silent longer than t3 (a TESTFR keep-alive is due then), so a link
lagging more than t3 behind the fleet is ``idle`` and one lagging more
than the eviction timeout (3 x t3) is ``dead``. Health lives only in
the fleet view — a :class:`~repro.stream.snapshots.LinkSnapshot` is
fleet-relative-free by design.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator

from ..iec104.constants import ProtocolTimers
from ..netstack.addresses import IPv4Address
from ..netstack.packet import CapturedPacket
from ..netstack.pcap import PcapRecord
from ..protocols.base import detect_protocol
from ..simnet.clock import Ticks, seconds_to_ticks
from .eviction import default_idle_timeout_us
from .ingest import Source, SourceItem
from .pipeline import StreamPipeline
from .snapshots import FleetSnapshot, LinkHealth, LinkSnapshot

#: Builds the pipeline for a newly discovered demuxed link:
#: ``factory(link_name, source) -> StreamPipeline``.
PipelineFactory = Callable[[str, "DemuxLinkSource"], StreamPipeline]


@dataclass(frozen=True)
class LinkHealthPolicy:
    """Thresholds for live/idle/dead, in fleet-clock lag ticks.

    Defaults are T3-scaled: ``idle_after_us`` is one t3 period (20 s —
    a keep-alive was due and has not been seen) and ``dead_after_us``
    is the eviction timeout (3 x t3 — the point at which the pipeline
    reclaims the link's state as dead).
    """

    idle_after_us: Ticks = 0
    dead_after_us: Ticks = 0

    def __post_init__(self) -> None:
        if not self.idle_after_us:
            object.__setattr__(
                self, "idle_after_us",
                seconds_to_ticks(ProtocolTimers().t3))
        if not self.dead_after_us:
            object.__setattr__(self, "dead_after_us",
                               default_idle_timeout_us())

    def classify(self, lag_us: Ticks) -> LinkHealth:
        if lag_us >= self.dead_after_us:
            return LinkHealth.DEAD
        if lag_us >= self.idle_after_us:
            return LinkHealth.IDLE
        return LinkHealth.LIVE


class DemuxLinkSource:
    """One link's substream of a demuxed capture (a Source).

    Items are queued by the owning :class:`LinkDemux` as it pumps the
    merged parent source; the per-link pipeline drains them here. The
    substream is exhausted once the parent is exhausted and the queue
    has drained.

    ``protocol_hint`` is the port-based auto-detect result from the
    link's first routed packet (a registered spec name, or ``None``
    when no spec claims the ports). Pipeline factories consult it
    when no explicit per-link protocol was configured; it is a plain
    string so the hint survives pickling and every sharded worker —
    each demuxing the whole capture — derives the identical hint.
    """

    def __init__(self, demux: "LinkDemux", name: str):
        self._demux = demux
        self.name = name
        self.protocol_hint: str | None = None
        self._queue: deque = deque()

    def _push(self, item: SourceItem) -> None:
        self._queue.append(item)

    def host_names(self) -> dict[IPv4Address, str]:
        return dict(self._demux.names)

    def poll(self, max_items: int) -> list[SourceItem]:
        queue = self._queue
        batch = [queue.popleft()
                 for _ in range(min(max_items, len(queue)))]
        return batch

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def exhausted(self) -> bool:
        return self._demux.source_exhausted and not self._queue


class LinkDemux:
    """Split one merged capture into per-link substreams.

    A *link* is the unordered (src, dst) endpoint pair of a packet's
    IPv4 addresses, named through the host-name map when available
    (``"C1-O12"``) and by dotted quads otherwise. :meth:`pump` pulls a
    batch from the parent source, decodes each record just far enough
    to route it, and queues the **original item** on the link's
    substream — the per-link pipeline re-frames it itself, so its
    stage counters match a standalone run over a pre-split file
    exactly. Frames that do not decode to TCP/IPv4 match no link and
    count as ``unrouted``.

    ``accept`` restricts the demux to a subset of links: a predicate
    over the link *name*, consulted before any substream is created.
    Rejected frames count as ``foreign`` — they belong to a link some
    other demux owns (the sharded fleet runs one whole-file demux per
    worker, each accepting only its own shard), which is a different
    condition from ``unrouted`` (no link at all). The name is derived
    before the predicate runs, so every demux over the same capture
    agrees frame-for-frame on the routed/foreign/unrouted partition.
    """

    def __init__(self, source: Source,
                 names: dict[IPv4Address, str] | None = None,
                 accept: Callable[[str], bool] | None = None):
        self.source = source
        if names is None:
            host_names = getattr(source, "host_names", None)
            names = dict(host_names()) if callable(host_names) else {}
        self.names = names
        self.accept = accept
        self._links: dict[str, DemuxLinkSource] = {}
        self._new: list[str] = []
        self.routed = 0
        self.unrouted = 0
        self.foreign = 0

    def link_name(self, packet: CapturedPacket) -> str:
        src = self.names.get(packet.ip.src, str(packet.ip.src))
        dst = self.names.get(packet.ip.dst, str(packet.ip.dst))
        return "-".join(sorted((src, dst)))

    def _route(self, item: SourceItem) -> None:
        if isinstance(item, CapturedPacket):
            packet: CapturedPacket | None = item
        elif isinstance(item, PcapRecord):
            packet = CapturedPacket.decode(item.time_us, item.data)
        else:
            packet = None
        if packet is None:
            self.unrouted += 1
            return
        name = self.link_name(packet)
        if self.accept is not None and not self.accept(name):
            self.foreign += 1
            return
        link = self._links.get(name)
        if link is None:
            link = DemuxLinkSource(self, name)
            # Port-based protocol auto-detect, decided once by the
            # link's first routed packet (deterministic: every demux
            # over the same capture sees the same first packet).
            spec = detect_protocol(packet.tcp.src_port,
                                   packet.tcp.dst_port)
            link.protocol_hint = spec.name if spec is not None \
                else None
            self._links[name] = link
            self._new.append(name)
        link._push(item)
        self.routed += 1

    def pump(self, max_items: int = 512) -> int:
        """Pull one batch from the parent and route it; return its
        size (0 when the parent had nothing new)."""
        batch = self.source.poll(max_items)
        for item in batch:
            self._route(item)
        return len(batch)

    def new_links(self) -> list[str]:
        """Names discovered since the last call (discovery order)."""
        new = self._new
        self._new = []
        return new

    def link_source(self, name: str) -> DemuxLinkSource:
        return self._links[name]

    @property
    def link_names(self) -> list[str]:
        return sorted(self._links)

    @property
    def source_exhausted(self) -> bool:
        return self.source.exhausted

    @property
    def exhausted(self) -> bool:
        """Parent drained and every substream fully consumed."""
        return (self.source.exhausted
                and not any(link.pending
                            for link in self._links.values()))


class FleetSupervisor:
    """Run N per-link pipelines round-robin and aggregate their state.

    Links are either registered up front (:meth:`add_link`, one
    pipeline per capture file) or discovered by a :class:`LinkDemux`
    (``demux=`` plus a ``pipeline_factory`` that builds the pipeline
    for each newly seen endpoint pair). :meth:`step` performs one
    supervision round: pump the demux (if any), instantiate pipelines
    for newly discovered links, then give every pipeline one bounded
    batch. All analysis stays on stream time; the supervisor adds no
    clock of its own — ``now_us`` is the max of the member clocks.

    ``switch_to_detect`` is sticky: links discovered after the switch
    are flipped on arrival, so a fleet behaves like one detector with
    N inputs.
    """

    def __init__(self, demux: LinkDemux | None = None,
                 pipeline_factory: PipelineFactory | None = None,
                 demux_batch: int = 512,
                 health: LinkHealthPolicy | None = None):
        if demux is not None and pipeline_factory is None:
            raise ValueError(
                "a demux-fed fleet needs a pipeline_factory")
        self._pipelines: dict[str, StreamPipeline] = {}
        self._order: list[str] = []
        self._demux = demux
        self._factory = pipeline_factory
        self.demux_batch = demux_batch
        self.health_policy = health or LinkHealthPolicy()
        self._detecting = False

    # -- membership ---------------------------------------------------

    def add_link(self, pipeline: StreamPipeline,
                 name: str | None = None) -> StreamPipeline:
        """Register a pipeline as one fleet link (returns it).

        ``name`` overrides the pipeline's own ``link`` label; one of
        the two must be non-empty and fleet-unique.
        """
        if name is not None:
            pipeline.link = name
        if not pipeline.link:
            raise ValueError("a fleet link needs a name")
        if pipeline.link in self._pipelines:
            raise ValueError(f"duplicate link {pipeline.link!r}")
        self._pipelines[pipeline.link] = pipeline
        self._order.append(pipeline.link)
        if self._detecting:
            pipeline.switch_to_detect()
        return pipeline

    @property
    def links(self) -> list[str]:
        """Link names, sorted (the snapshot order)."""
        return sorted(self._pipelines)

    @property
    def link_count(self) -> int:
        return len(self._pipelines)

    def pipeline(self, name: str) -> StreamPipeline:
        return self._pipelines[name]

    def pipelines(self) -> Iterator[StreamPipeline]:
        for name in self._order:
            yield self._pipelines[name]

    # -- driving ------------------------------------------------------

    def _absorb_new_links(self) -> None:
        assert self._demux is not None and self._factory is not None
        for name in self._demux.new_links():
            source = self._demux.link_source(name)
            self.add_link(self._factory(name, source), name=name)

    def step(self) -> int:
        """One supervision round; returns items moved anywhere."""
        moved = 0
        if self._demux is not None:
            moved += self._demux.pump(self.demux_batch)
            self._absorb_new_links()
        for name in self._order:
            moved += self._pipelines[name].step()
        return moved

    def run_until_exhausted(self) -> int:
        """Drain finite sources completely; return items moved."""
        total = 0
        while True:
            moved = self.step()
            total += moved
            if not moved:
                break
        self.flush()
        return total

    def flush(self) -> None:
        for pipeline in self._pipelines.values():
            pipeline.flush()

    def switch_to_detect(self) -> None:
        """Flip every member (and all future members) to DETECT."""
        self._detecting = True
        for pipeline in self._pipelines.values():
            pipeline.switch_to_detect()

    @property
    def now_us(self) -> Ticks:
        """The fleet clock: the furthest member stream clock."""
        return max((pipeline.now_us
                    for pipeline in self._pipelines.values()),
                   default=0)

    @property
    def exhausted(self) -> bool:
        """True once no member source can yield another item."""
        if self._demux is not None and not self._demux.exhausted:
            return False
        return all(pipeline.exhausted
                   for pipeline in self._pipelines.values())

    # -- reporting ----------------------------------------------------

    def health(self) -> dict[str, str]:
        """Per-link health against the current fleet clock."""
        now = self.now_us
        return {name: self.health_policy.classify(
                    now - self._pipelines[name].now_us).value
                for name in self.links}

    def link_snapshots(self) -> tuple[LinkSnapshot, ...]:
        return tuple(self._pipelines[name].link_snapshot()
                     for name in self.links)

    def snapshot(self) -> FleetSnapshot:
        """The aggregate fleet view at this instant."""
        return FleetSnapshot.from_links(
            self.link_snapshots(), now_us=self.now_us,
            health=self.health(),
            unrouted=(self._demux.unrouted
                      if self._demux is not None else 0))
