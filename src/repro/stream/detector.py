"""Online cyber-physical whitelist IDS — the paper's §7 proposal, live.

The batch :class:`~repro.analysis.whitelist.CombinedDetector` fits on
one finished capture and scores another. A SOC needs the same verdicts
*while the traffic flows*: :class:`OnlineCombinedDetector` wraps the
same two whitelists behind a learn-then-detect mode switch and updates
per-connection verdicts one APDU event at a time.

Verdicts are provably consistent with batch: learning token-by-token
produces exactly the transition sets ``CyberWhitelist.fit`` builds,
running min/max produces exactly the envelopes ``PhysicalWhitelist
.fit`` builds, and the incremental verdict accumulators reproduce
``score``'s unseen/unknown tuples occurrence-for-occurrence (the
parity test in ``tests/stream`` asserts this end to end).
"""

from __future__ import annotations

import enum

from ..analysis.apdu_stream import ApduEvent
from ..analysis.physical import iter_point_samples
from ..analysis.whitelist import (CombinedAlert, CyberVerdict,
                                  CyberWhitelist, PhysicalViolation,
                                  PhysicalWhitelist)
from ..simnet.clock import Ticks
from .analyzers import StreamAnalyzer
from .eviction import EvictionStats


class DetectorMode(enum.Enum):
    """Learn-then-detect lifecycle of the online detector."""

    LEARN = "learn"
    DETECT = "detect"


class _VerdictState:
    """Incremental accumulator for one connection's cyber verdict.

    Mirrors :meth:`CyberWhitelist.score` over the sequence seen so
    far: ``unseen`` collects every not-whitelisted transition
    occurrence (duplicates included, like the batch ``zip`` scan) and
    ``unknown`` is an ordered dedup of never-learned tokens.
    """

    __slots__ = ("known", "tokens", "prev", "unseen", "unknown",
                 "last_time_us")

    def __init__(self, known: bool):
        self.known = known
        self.tokens = 0
        self.prev: str | None = None
        self.unseen: list[tuple[str, str]] = []
        self.unknown: dict[str, None] = {}
        self.last_time_us: Ticks = 0

    def observe(self, whitelist: CyberWhitelist, connection,
                token: str, time_us: Ticks) -> None:
        self.tokens += 1
        self.last_time_us = time_us
        if not self.known:
            # Batch semantics for an unknown connection: every token
            # unknown, every transition unseen.
            self.unknown.setdefault(token, None)
            if self.prev is not None:
                self.unseen.append((self.prev, token))
        else:
            if not whitelist.knows_token(token):
                self.unknown.setdefault(token, None)
            if self.prev is not None and not whitelist.knows_transition(
                    self.prev, token, connection):
                self.unseen.append((self.prev, token))
        self.prev = token

    def verdict(self, connection) -> CyberVerdict:
        return CyberVerdict(connection=connection, tokens=self.tokens,
                            unseen_transitions=tuple(self.unseen),
                            unknown_tokens=tuple(self.unknown))

    def is_alert(self, threshold: float) -> bool:
        """O(1) mirror of :meth:`CyberVerdict.is_alert` — the scoring
        hot path checks it per event, so no tuple materialization."""
        if self.unknown:
            return True
        if self.tokens < 2:
            return False
        return len(self.unseen) / (self.tokens - 1) > threshold


class OnlineCombinedDetector(StreamAnalyzer):
    """Streaming wrapper over the cyber + physical whitelists.

    Starts in LEARN mode: every event grows the whitelists (clean
    traffic assumed, as in the batch ``fit``). :meth:`switch_to_detect`
    freezes them — finalizing the physical envelopes — and subsequent
    events update per-connection verdicts instead.
    """

    name = "detector"

    def __init__(self, cyber: CyberWhitelist | None = None,
                 physical: PhysicalWhitelist | None = None,
                 cyber_threshold: float = 0.2):
        self.cyber = cyber if cyber is not None else CyberWhitelist()
        self.physical = (physical if physical is not None
                         else PhysicalWhitelist())
        self.cyber_threshold = cyber_threshold
        self.mode = DetectorMode.LEARN
        self.events_learned = 0
        self.events_scored = 0
        #: LEARN-mode state: last token per connection.
        self._learn_prev: dict[object, str] = {}
        #: DETECT-mode state: per-connection verdict accumulators.
        self._verdicts: dict[object, _VerdictState] = {}
        self._violations: list[PhysicalViolation] = []
        self._violations_by_station: dict[str,
                                          list[PhysicalViolation]] = {}
        #: Stream time a connection's verdict first became alerting
        #: (cyber) or first carried a physical violation.  Never
        #: evicted: detection-latency scoring needs the first hit
        #: even for connections long gone quiet.
        self._first_alert_us: dict[object, Ticks] = {}

    # -- mode lifecycle ----------------------------------------------

    def switch_to_detect(self) -> "OnlineCombinedDetector":
        """Freeze the whitelists and start scoring."""
        if self.mode is DetectorMode.DETECT:
            return self
        self.physical.finalize()
        self._learn_prev.clear()
        self.mode = DetectorMode.DETECT
        return self

    # -- event path ---------------------------------------------------

    def on_event(self, event: ApduEvent) -> None:
        if self.mode is DetectorMode.LEARN:
            self._learn(event)
        else:
            self._score(event)

    def _learn(self, event: ApduEvent) -> None:
        self.events_learned += 1
        connection = event.connection
        token = event.token
        prev = self._learn_prev.get(connection)
        if prev is None:
            self.cyber.learn_token(token, connection)
        else:
            self.cyber.learn_transition(prev, token, connection)
        self._learn_prev[connection] = token
        for key, _time_s, value in iter_point_samples(event):
            self.physical.learn_sample(key, value)

    def _score(self, event: ApduEvent) -> None:
        self.events_scored += 1
        connection = event.connection
        state = self._verdicts.get(connection)
        if state is None:
            state = _VerdictState(
                known=self.cyber.knows_connection(connection))
            self._verdicts[connection] = state
        state.observe(self.cyber, connection, event.token,
                      event.time_us)
        if connection not in self._first_alert_us \
                and state.is_alert(self.cyber_threshold):
            self._first_alert_us[connection] = event.time_us
        for key, time_s, value in iter_point_samples(event):
            violation = self.physical.check_sample(key, time_s, value)
            if violation is not None:
                self._violations.append(violation)
                self._violations_by_station.setdefault(
                    violation.key.station, []).append(violation)
                self._first_alert_us.setdefault(connection,
                                                event.time_us)

    # -- results ------------------------------------------------------

    def verdicts(self) -> list[CyberVerdict]:
        """Per-connection cyber verdicts (batch ``score_extraction``
        order: sorted by connection)."""
        return [state.verdict(connection)
                for connection, state in sorted(
                    self._verdicts.items(),
                    key=lambda item: str(item[0]))]

    def violations(self) -> list[PhysicalViolation]:
        return list(self._violations)

    def scored_connections(self) -> list[object]:
        """Every connection scored so far (sorted; includes evicted
        ones that alerted) — the universe a label-aware scorer counts
        false negatives against."""
        keys = set(self._verdicts) | set(self._first_alert_us)
        return sorted(keys, key=str)

    def first_alert_times(self) -> dict[object, Ticks]:
        """Connection -> stream time of its first alerting event.

        The hook the scenario scoring harness replays against: paired
        with a ground-truth sidecar it yields detection latency (µs
        from labeled attack onset to the first true-positive event).
        """
        return dict(self._first_alert_us)

    def alerts(self) -> list[CombinedAlert]:
        """Correlated alerts, mirroring batch
        :meth:`CombinedDetector.detect` inclusion and order."""
        alerts = []
        for verdict in self.verdicts():
            connection = verdict.connection
            station = connection[1] if isinstance(connection, tuple) \
                else connection
            physical = tuple(
                self._violations_by_station.get(station, ()))
            if verdict.is_alert(self.cyber_threshold) or physical:
                alerts.append(CombinedAlert(connection=connection,
                                            cyber=verdict,
                                            physical=physical))
        return alerts

    # -- bookkeeping --------------------------------------------------

    def evict(self, horizon_us: Ticks, stats: EvictionStats) -> None:
        # Verdict accumulators for long-dead connections have already
        # alerted (or not); only the LEARN-mode predecessor map and
        # idle verdict states are reclaimable. Learned whitelists are
        # the product — never evicted.
        dead = [connection
                for connection, state in self._verdicts.items()
                if state.last_time_us < horizon_us
                and not state.verdict(connection).is_alert(
                    self.cyber_threshold)]
        for connection in dead:
            del self._verdicts[connection]

    def snapshot(self) -> dict:
        alerts = (self.alerts()
                  if self.mode is DetectorMode.DETECT else [])
        return {
            "mode": self.mode.value,
            "learned_connections": len(self.cyber.learned_connections),
            "learned_points": (self.physical.point_count
                               or self.physical.pending_point_count),
            "events_learned": self.events_learned,
            "events_scored": self.events_scored,
            "alerts": len(alerts),
            "alerted_connections": [
                str(alert.connection) for alert in alerts[:10]],
            "physical_violations": len(self._violations),
        }
