"""Incremental analyzers: online state equivalent to the batch passes.

Each analyzer consumes the pipeline's dispatch stream one item at a
time and maintains exactly the state its batch counterpart computes
over a finished capture:

* :class:`LiveFlowTable` — §6.2 flow tracking with short/long-lived
  classification as flows close (batch: ``FlowAnalysis``);
* :class:`OnlineChains` — per-connection Markov chains grown one token
  at a time, tracking the Fig. 13 (nodes, edges) plane (batch:
  ``ConnectionChains``);
* :class:`RollingSessionWindows` — the §6.3 session features over a
  sliding time window (batch: ``extract_sessions`` over everything).

Evicted state folds into cumulative tallies, so totals remain exact
even after the per-key state is reclaimed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..analysis.apdu_stream import ApduEvent
from ..analysis.flows import FlowSummary
from ..analysis.markov import MarkovChain, Transition
from ..iec104.apci import IFrame, SFrame
from ..netstack.flows import FlowKind, FlowRecord, FlowTable
from ..netstack.packet import CapturedPacket
from ..simnet.clock import Ticks
from .eviction import EvictionStats


class StreamAnalyzer:
    """Base class: analyzers override the hooks they care about."""

    name = "analyzer"

    def on_packet(self, packet: CapturedPacket) -> None:
        """One IEC 104 packet (pre-decode; flow-level analyzers)."""

    def on_event(self, event: ApduEvent) -> None:
        """One decoded APDU event (post-decode analyzers)."""

    def evict(self, horizon_us: Ticks, stats: EvictionStats) -> None:
        """Reclaim state last touched before ``horizon_us``."""

    def snapshot(self) -> dict:
        """Monitor-friendly summary of the current state."""
        return {}


@dataclass
class FlowTally:
    """Cumulative Table 3 counts of flows already closed/evicted."""

    sub_second_short: int = 0
    longer_short: int = 0
    long_lived: int = 0

    def add(self, record: FlowRecord) -> None:
        if record.kind is FlowKind.LONG_LIVED:
            self.long_lived += 1
        elif record.duration < 1.0:
            self.sub_second_short += 1
        else:
            self.longer_short += 1


class LiveFlowTable(StreamAnalyzer):
    """Online §6.2 flow table.

    Packets accumulate into live :class:`FlowRecord` state; the
    eviction sweep closes idle flows, folds their classification into
    a cumulative tally and remembers the most recent closures. The
    :meth:`summary` therefore always covers every flow ever seen —
    closed and live — matching the batch ``FlowAnalysis.summary`` when
    no 4-tuple is reused across an eviction boundary.
    """

    name = "flows"

    def __init__(self, recent_closures: int = 64):
        self._table = FlowTable()
        self._tally = FlowTally()
        self.closed_count = 0
        self.closed_recent: deque[FlowRecord] = deque(
            maxlen=recent_closures)

    def on_packet(self, packet: CapturedPacket) -> None:
        self._table.add(packet)

    @property
    def live_flows(self) -> int:
        return len(self._table)

    def records(self) -> list[FlowRecord]:
        """The live (not yet evicted) flow records."""
        return self._table.flows

    def evict(self, horizon_us: Ticks, stats: EvictionStats) -> None:
        for record in self._table.pop_idle(horizon_us):
            self._tally.add(record)
            self.closed_count += 1
            self.closed_recent.append(record)
            stats.flows_evicted += 1

    def summary(self, label: str = "stream") -> FlowSummary:
        """Table 3 over everything seen so far (closed + live)."""
        tally = FlowTally(
            sub_second_short=self._tally.sub_second_short,
            longer_short=self._tally.longer_short,
            long_lived=self._tally.long_lived)
        for record in self._table.flows:
            tally.add(record)
        return FlowSummary(label=label,
                           sub_second_short=tally.sub_second_short,
                           longer_short=tally.longer_short,
                           long_lived=tally.long_lived)

    def snapshot(self) -> dict:
        summary = self.summary()
        return {
            "live": self.live_flows,
            "closed": self.closed_count,
            "sub_second_short": summary.sub_second_short,
            "longer_short": summary.longer_short,
            "long_lived": summary.long_lived,
        }


class _ChainState:
    """Incremental per-connection Markov chain."""

    __slots__ = ("nodes", "counts", "outgoing", "last_token",
                 "last_time_us")

    def __init__(self) -> None:
        self.nodes: dict[str, None] = {}
        self.counts: dict[tuple[str, str], int] = {}
        self.outgoing: dict[str, int] = {}
        self.last_token: str | None = None
        self.last_time_us: Ticks = 0

    def observe(self, token: str, time_us: Ticks) -> None:
        nodes = self.nodes
        if token not in nodes:
            nodes[token] = None
        prev = self.last_token
        if prev is not None:
            counts = self.counts
            outgoing = self.outgoing
            pair = (prev, token)
            counts[pair] = counts.get(pair, 0) + 1
            outgoing[prev] = outgoing.get(prev, 0) + 1
        self.last_token = token
        self.last_time_us = time_us

    @property
    def size(self) -> tuple[int, int]:
        return (len(self.nodes), len(self.counts))

    def materialize(self) -> MarkovChain:
        """The equivalent batch :class:`MarkovChain` (same node order,
        same sorted transitions, same MLE probabilities)."""
        transitions = tuple(sorted(
            (Transition(source=source, target=target, count=count,
                        probability=count / self.outgoing[source])
             for (source, target), count in self.counts.items()),
            key=lambda t: (t.source, t.target)))
        return MarkovChain(nodes=tuple(self.nodes),
                           transitions=transitions)


class OnlineChains(StreamAnalyzer):
    """Per-connection Markov-chain growth (§6.3.1, Fig. 13)."""

    name = "chains"

    def __init__(self) -> None:
        self._states: dict[tuple[str, str], _ChainState] = {}
        #: Directional (src, dst) → undirected connection, so the
        #: sort/startswith normalization runs once per host pair
        #: instead of once per event.
        self._connections: dict[tuple[str, str], tuple[str, str]] = {}
        self.evicted_count = 0

    def on_event(self, event: ApduEvent) -> None:
        pair = (event.src, event.dst)
        connection = self._connections.get(pair)
        if connection is None:
            connection = event.connection
            self._connections[pair] = connection
        state = self._states.get(connection)
        if state is None:
            state = _ChainState()
            self._states[connection] = state
        state.observe(event.token, event.time_us)

    @property
    def connection_count(self) -> int:
        return len(self._states)

    def sizes(self) -> dict[tuple[str, str], tuple[int, int]]:
        """Fig. 13 plane: connection -> (nodes, edges)."""
        return {connection: state.size
                for connection, state in sorted(self._states.items())}

    def chain(self, connection: tuple[str, str]) -> MarkovChain | None:
        state = self._states.get(connection)
        return state.materialize() if state is not None else None

    def evict(self, horizon_us: Ticks, stats: EvictionStats) -> None:
        dead = [connection for connection, state in self._states.items()
                if state.last_time_us < horizon_us]
        for connection in dead:
            del self._states[connection]
            self.evicted_count += 1
            stats.chains_evicted += 1

    def snapshot(self) -> dict:
        sizes = sorted(
            ((nodes, edges, f"{a}-{b}") for (a, b), (nodes, edges)
             in self.sizes().items()), reverse=True)
        return {
            "connections": self.connection_count,
            "evicted": self.evicted_count,
            "largest": [
                {"connection": name, "nodes": nodes, "edges": edges}
                for nodes, edges, name in sizes[:5]],
        }


@dataclass
class RollingFeatures:
    """The paper's five selected features over one rolling window."""

    session: tuple[str, str]
    dt: float
    num: int
    pct_i: float
    pct_s: float
    pct_u: float


@dataclass
class _SessionWindow:
    #: (time_us, kind, wire_bytes); kind is "I", "S" or "U".
    entries: deque = field(default_factory=deque)
    last_time_us: Ticks = 0

    def trim(self, horizon_us: Ticks) -> None:
        entries = self.entries
        while entries and entries[0][0] < horizon_us:
            entries.popleft()


class RollingSessionWindows(StreamAnalyzer):
    """§6.3 session features over a sliding stream-time window."""

    name = "sessions"

    def __init__(self, window_us: Ticks = 300 * 1_000_000,
                 max_entries_per_session: int = 10_000):
        self.window_us = window_us
        self.max_entries = max_entries_per_session
        self._windows: dict[tuple[str, str], _SessionWindow] = {}
        self.evicted_count = 0
        #: Entries discarded because a session exceeded ``max_entries``
        #: inside one window (bounded-memory guard).
        self.overflow_drops = 0

    def on_event(self, event: ApduEvent) -> None:
        window = self._windows.get(event.session)
        if window is None:
            window = _SessionWindow()
            self._windows[event.session] = window
        if isinstance(event.apdu, IFrame):
            kind = "I"
        elif isinstance(event.apdu, SFrame):
            kind = "S"
        else:
            kind = "U"
        window.entries.append((event.time_us, kind, event.wire_bytes))
        window.last_time_us = event.time_us
        window.trim(event.time_us - self.window_us)
        while len(window.entries) > self.max_entries:
            window.entries.popleft()
            self.overflow_drops += 1

    @property
    def session_count(self) -> int:
        return len(self._windows)

    def features(self, session: tuple[str, str]
                 ) -> RollingFeatures | None:
        window = self._windows.get(session)
        if window is None or not window.entries:
            return None
        entries = list(window.entries)
        times = [entry[0] for entry in entries]
        gaps = [b - a for a, b in zip(times, times[1:])]
        dt = (sum(gaps) / len(gaps)) / 1_000_000 if gaps else 0.0
        total = len(entries)
        i_count = sum(1 for entry in entries if entry[1] == "I")
        s_count = sum(1 for entry in entries if entry[1] == "S")
        return RollingFeatures(
            session=session, dt=dt, num=total,
            pct_i=i_count / total, pct_s=s_count / total,
            pct_u=(total - i_count - s_count) / total)

    def all_features(self) -> list[RollingFeatures]:
        features = (self.features(session)
                    for session in sorted(self._windows))
        return [item for item in features if item is not None]

    def evict(self, horizon_us: Ticks, stats: EvictionStats) -> None:
        dead = []
        for session, window in self._windows.items():
            window.trim(horizon_us)
            if not window.entries and window.last_time_us < horizon_us:
                dead.append(session)
        for session in dead:
            del self._windows[session]
            self.evicted_count += 1
            stats.sessions_evicted += 1

    def snapshot(self) -> dict:
        return {
            "sessions": self.session_count,
            "evicted": self.evicted_count,
            "overflow_drops": self.overflow_drops,
        }
