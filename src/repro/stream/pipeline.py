"""The streaming event bus: frame -> reassemble -> decode -> dispatch.

:class:`StreamPipeline` pulls bounded batches from a
:class:`~repro.stream.ingest.Source` and pushes every item through
four explicit stages:

* **frame** — raw :class:`~repro.netstack.pcap.PcapRecord` bytes are
  decoded to :class:`~repro.netstack.packet.CapturedPacket` (already
  decoded packets from a simnet tap pass through);
* **reassemble** — protocol port filtering (the bound
  :class:`~repro.protocols.base.ProtocolSpec`'s ports), per-packet or
  per-direction TCP reassembly (reusing :class:`~repro.netstack.
  reassembly.StreamReassembler` incrementally), flow-level dispatch;
* **decode** — frame parsing with the bound protocol's parser (IEC
  104's shared :class:`~repro.iec104.codec.TolerantParser` by
  default); live socket :class:`~repro.stream.ingest.ByteChunk`
  items enter here directly through a per-link stream decoder built
  by the spec;
* **dispatch** — delivery to the registered
  :class:`~repro.stream.analyzers.StreamAnalyzer` instances.

Every stage keeps received/emitted/filtered/error/drop counters, and
delivery is deterministic. Two orders matter, and they are different —
exactly as in the batch pipeline:

* *decode* runs in **arrival order** (the pcap file order), because the
  tolerant parser learns per-link profiles from the frames it has seen
  — the same order the batch :func:`~repro.analysis.apdu_stream.
  extract_apdus` uses;
* *dispatch* delivers APDU events in **time_us order** through a
  bounded reordering buffer, because the batch analyses time-sort
  events (``tokenize``'s stable sort) before consuming them. The
  buffer holds an event until the stream clock passes
  ``reorder_window_us``; ties release in arrival order, matching the
  stable sort exactly. Events that arrive too late to reorder (beyond
  the window) are still delivered, and counted in
  ``order_violations``.

Eviction sweeps run on stream time, never the wall clock — replaying
the same capture reproduces the same state, byte for byte.
"""

from __future__ import annotations

import heapq
from collections import deque

from ..analysis.apdu_stream import ApduEvent
from ..iec104.codec import TolerantParser
from ..netstack.addresses import IPv4Address
from ..protocols.base import ProtocolSpec, get_protocol
from ..netstack.packet import CapturedPacket, FlowKey
from ..netstack.pcap import PcapRecord
from ..netstack.reassembly import StreamReassembler
from ..simnet.clock import Ticks
from .analyzers import StreamAnalyzer
from .eviction import EvictionPolicy, EvictionStats
from .ingest import ByteChunk, Source
from .snapshots import LinkSnapshot, StageCounters

#: Stage names, in pipeline order.
STAGES = ("ingest", "frame", "reassemble", "decode", "dispatch")


class StageTally:
    """Mutable per-stage accounting (the event bus accumulator).

    Snapshots expose the immutable :class:`~repro.stream.snapshots.
    StageCounters` form via :meth:`freeze`.
    """

    __slots__ = ("received", "emitted", "filtered", "errors",
                 "dropped")

    def __init__(self) -> None:
        self.received = 0
        self.emitted = 0
        self.filtered = 0
        self.errors = 0
        self.dropped = 0

    def as_dict(self) -> dict[str, int]:
        return {"received": self.received, "emitted": self.emitted,
                "filtered": self.filtered, "errors": self.errors,
                "dropped": self.dropped}

    def freeze(self) -> StageCounters:
        """The immutable snapshot form of the current counts."""
        return StageCounters(received=self.received,
                             emitted=self.emitted,
                             filtered=self.filtered,
                             errors=self.errors,
                             dropped=self.dropped)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StageTally({self.as_dict()})"


class StreamPipeline:
    """Push packets through the staged bus into online analyzers.

    ``reassemble=False`` (default) is the paper-faithful per-packet
    decode; ``True`` routes payloads through per-direction
    :class:`StreamReassembler` state first (the ablation mode).
    ``queue_capacity`` bounds the dispatch-stage reordering buffer:
    when it fills, the oldest buffered event is released early (still
    deterministic — early releases are a pure function of the arrival
    sequence). ``reorder_window_us`` is how far behind the stream
    clock an event may arrive and still be delivered in time order.

    ``protocol`` binds the pipeline to one
    :class:`~repro.protocols.base.ProtocolSpec` (default IEC 104):
    the spec's ports drive the reassemble-stage filter and its
    factories build the parser and the per-link live-tap decoders.
    A heterogeneous fleet mixes protocols by giving each link's
    pipeline its own spec. ``parser`` overrides the spec's parser
    (e.g. a shared or instrumented one).
    """

    def __init__(self, source: Source,
                 names: dict[IPv4Address, str] | None = None,
                 analyzers: list[StreamAnalyzer] | None = None,
                 reassemble: bool = False,
                 parser: TolerantParser | None = None,
                 batch_size: int = 512,
                 queue_capacity: int = 4096,
                 reorder_window_us: Ticks = 5_000_000,
                 eviction: EvictionPolicy | None = None,
                 max_failures_kept: int = 256,
                 link: str = "",
                 protocol: ProtocolSpec | None = None):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        self.source = source
        if names is None:
            host_names = getattr(source, "host_names", None)
            names = dict(host_names()) if callable(host_names) else {}
        self.names = names
        self.analyzers: list[StreamAnalyzer] = list(analyzers or [])
        self.reassemble = reassemble
        self.protocol = protocol if protocol is not None \
            else get_protocol("iec104")
        self._ports = self.protocol.ports
        self.parser = parser if parser is not None \
            else self.protocol.new_parser()
        self.batch_size = batch_size
        self.queue_capacity = queue_capacity
        self.reorder_window_us = reorder_window_us
        self.eviction = eviction
        self.eviction_stats = EvictionStats()
        #: Display name when the pipeline runs as one fleet member.
        self.link = link
        self.counters = {stage: StageTally() for stage in STAGES}
        # Hot-path aliases: the StageTally objects are created once and
        # never replaced, so the per-item stages skip the dict probe.
        self._tally_ingest = self.counters["ingest"]
        self._tally_decode = self.counters["decode"]
        self._tally_dispatch = self.counters["dispatch"]
        #: Stream clock: the largest time_us seen (never moves back).
        self.now_us: Ticks = 0
        #: Items that arrived with time_us behind the stream clock.
        self.late_items = 0
        #: Events delivered behind an already-released timestamp
        #: (arrived later than ``reorder_window_us`` allows).
        self.order_violations = 0
        self.events_dispatched = 0
        self.failures: deque = deque(maxlen=max_failures_kept)
        self.failure_count = 0
        #: Dispatch reorder buffer: (time_us, arrival_seq, event).
        self._reorder: list[tuple[Ticks, int, ApduEvent]] = []
        self._reorder_seq = 0
        self._watermark: Ticks = -1
        self._reassemblers: dict[FlowKey, StreamReassembler] = {}
        self._reassembler_touch: dict[FlowKey, Ticks] = {}
        #: Per-link incremental decoders built by the protocol spec.
        self._decoders: dict[tuple[str, str], object] = {}
        self._decoder_touch: dict[tuple[str, str], Ticks] = {}
        self._last_sweep_us: Ticks = 0

    # -- driving ------------------------------------------------------

    def add_analyzer(self, analyzer: StreamAnalyzer) -> None:
        self.analyzers.append(analyzer)

    @property
    def exhausted(self) -> bool:
        """True once the source can never yield another item."""
        return self.source.exhausted

    def switch_to_detect(self) -> None:
        """Flip every learn/detect analyzer to DETECT (idempotent).

        The monitor loop calls this at ``--detect-after``; keeping it
        on the pipeline lets a fleet supervisor apply the same switch
        uniformly to every member (including late-discovered links).
        """
        from .detector import OnlineCombinedDetector
        for analyzer in self.analyzers:
            if isinstance(analyzer, OnlineCombinedDetector):
                analyzer.switch_to_detect()

    def step(self, max_items: int | None = None) -> int:
        """Pull one bounded batch from the source and process it.

        Returns the number of items ingested (0 when the source had
        nothing new)."""
        batch = self.source.poll(max_items or self.batch_size)
        if not batch:
            return 0
        # Batch fast path: the loop below is the hottest few lines of
        # the streaming engine, so the per-item helpers are bound to
        # locals and the release/evict calls are guarded inline (a
        # guard is ~10x cheaper than a no-op method call).
        ingest = self._ingest
        reorder = self._reorder
        window = self.reorder_window_us
        eviction = self.eviction
        for item in batch:
            ingest(item)
            # Release and sweep per item, not per batch: both become
            # pure functions of the item sequence, so a link produces
            # byte-identical state however its feed is batched (own
            # pcap, demuxed substream, live tap).
            if reorder and reorder[0][0] <= self.now_us - window:
                self._release(self.now_us - window)
            if eviction is not None \
                    and eviction.due(self.now_us, self._last_sweep_us):
                self.sweep()
        return len(batch)

    def run_until_exhausted(self, max_items: int | None = None) -> int:
        """Drain a finite source completely; return items processed.

        A tail-mode (``follow``) source is never exhausted — use
        :meth:`step` from the monitor loop instead."""
        total = 0
        while True:
            moved = self.step()
            total += moved
            if max_items is not None and total >= max_items:
                break
            if not moved:
                # Exhausted, or not exhausted but nothing deliverable
                # (e.g. a truncated record at a non-growing tail):
                # stop rather than spin.
                break
        self.flush()
        return total

    # -- stage: ingest / frame ---------------------------------------

    def _ingest(self, item) -> None:
        counters = self._tally_ingest
        counters.received += 1
        try:
            time_us = item.time_us
        except AttributeError:
            time_us = self.now_us
        if time_us < self.now_us:
            self.late_items += 1
        else:
            self.now_us = time_us
        if isinstance(item, ByteChunk):
            counters.emitted += 1
            self._decode_chunk(item)
            return
        if isinstance(item, PcapRecord):
            packet = self._frame(item)
            if packet is None:
                return
        elif isinstance(item, CapturedPacket):
            packet = item
        else:
            counters.errors += 1
            return
        counters.emitted += 1
        self._reassemble(packet)

    def _frame(self, record: PcapRecord) -> CapturedPacket | None:
        counters = self.counters["frame"]
        counters.received += 1
        packet = CapturedPacket.decode(record.time_us, record.data)
        if packet is None:
            counters.errors += 1
            return None
        counters.emitted += 1
        return packet

    # -- stage: reassemble -------------------------------------------

    def _name_for(self, address: IPv4Address, port: int) -> str:
        name = self.names.get(address)
        if name is not None:
            return name
        return f"{address}:{port}"

    def _reassemble(self, packet: CapturedPacket) -> None:
        counters = self.counters["reassemble"]
        counters.received += 1
        ports = self._ports
        if packet.tcp.src_port not in ports \
                and packet.tcp.dst_port not in ports:
            counters.filtered += 1
            return
        for analyzer in self.analyzers:
            analyzer.on_packet(packet)
        src = self._name_for(packet.ip.src, packet.tcp.src_port)
        dst = self._name_for(packet.ip.dst, packet.tcp.dst_port)
        if not self.reassemble:
            if not packet.payload:
                return
            counters.emitted += 1
            self._decode(packet.time_us, src, dst, packet.payload,
                         packet.wire_length)
            return
        key = packet.flow_key
        reassembler = self._reassemblers.get(key)
        if reassembler is None:
            reassembler = StreamReassembler()
            self._reassemblers[key] = reassembler
        self._reassembler_touch[key] = packet.time_us
        data = reassembler.feed(packet.tcp.seq, packet.payload,
                                syn=packet.flags.syn,
                                fin=packet.flags.fin)
        if not data:
            return
        counters.emitted += 1
        self._decode(packet.time_us, src, dst, data,
                     packet.wire_length)

    @property
    def retransmissions(self) -> int:
        """Total retransmitted segments seen (reassemble mode only)."""
        return sum(reassembler.stats.retransmissions
                   for reassembler in self._reassemblers.values())

    # -- stage: decode ------------------------------------------------

    def _decode(self, time_us: Ticks, src: str, dst: str,
                payload: bytes, wire_bytes: int) -> None:
        self._tally_decode.received += 1
        results = self.parser.parse_stream(payload,
                                           link_key=(src, dst))
        self._emit_results(results, time_us, src, dst, wire_bytes)

    def _decode_chunk(self, chunk: ByteChunk) -> None:
        """Live socket path: no packet framing, so a per-link
        StreamDecoder buffers partial APDUs across chunks."""
        self._tally_decode.received += 1
        link = (chunk.src, chunk.dst)
        decoder = self._decoders.get(link)
        if decoder is None:
            decoder = self.protocol.new_stream_decoder(self.parser,
                                                       link)
            self._decoders[link] = decoder
        self._decoder_touch[link] = chunk.time_us
        results = decoder.feed(chunk.data)
        self._emit_results(results, chunk.time_us, chunk.src,
                           chunk.dst, len(chunk.data))

    def _emit_results(self, results, time_us: Ticks, src: str,
                      dst: str, wire_bytes: int) -> None:
        counters = self._tally_decode
        enqueue = self._enqueue
        for result in results:
            if result.apdu is not None:
                counters.emitted += 1
                enqueue(ApduEvent(
                    time_us=time_us, src=src, dst=dst,
                    apdu=result.apdu, compliant=result.compliant,
                    wire_bytes=wire_bytes))
            else:
                counters.errors += 1
                self.failure_count += 1
                self.failures.append((time_us, src, dst, result))

    # -- stage: dispatch ----------------------------------------------

    def _enqueue(self, event: ApduEvent) -> None:
        """Buffer an event for time-ordered release."""
        self._tally_dispatch.received += 1
        # Heap bypass: with nothing buffered and the event already at
        # or behind the release horizon, push-then-immediately-pop is
        # a round trip through the heap for the identical outcome —
        # dispatch directly. (With the buffer empty there is no other
        # event it could be ordered against.)
        if (not self._reorder
                and event.time_us <= self.now_us - self.reorder_window_us):
            self._dispatch(event)
            return
        heapq.heappush(self._reorder,
                       (event.time_us, self._reorder_seq, event))
        self._reorder_seq += 1
        # Bounded queue: over capacity, release the oldest early.
        while len(self._reorder) > self.queue_capacity:
            self._pop_dispatch()

    def _release(self, horizon_us: Ticks) -> None:
        """Deliver every buffered event at or before the horizon."""
        while self._reorder and self._reorder[0][0] <= horizon_us:
            self._pop_dispatch()

    def flush(self) -> None:
        """Deliver everything still buffered (source exhausted or a
        final snapshot is about to be taken)."""
        while self._reorder:
            self._pop_dispatch()

    def _pop_dispatch(self) -> None:
        _time_us, _seq, event = heapq.heappop(self._reorder)
        self._dispatch(event)

    def _dispatch(self, event: ApduEvent) -> None:
        time_us = event.time_us
        if time_us < self._watermark:
            self.order_violations += 1
        else:
            self._watermark = time_us
        counters = self._tally_dispatch
        for analyzer in self.analyzers:
            analyzer.on_event(event)
            counters.emitted += 1
        self.events_dispatched += 1

    @property
    def reorder_pending(self) -> int:
        return len(self._reorder)

    # -- eviction -----------------------------------------------------

    def _maybe_evict(self) -> None:
        if self.eviction is None:
            return
        if not self.eviction.due(self.now_us, self._last_sweep_us):
            return
        self.sweep()

    def sweep(self) -> None:
        """Run one eviction sweep now (normally driven by the policy).

        Reclaims idle reassemblers and stream decoders, then lets each
        analyzer reclaim its own idle state."""
        if self.eviction is None:
            return
        horizon = self.eviction.horizon(self.now_us)
        self.eviction_stats.sweeps += 1
        for key in [key for key, touched
                    in self._reassembler_touch.items()
                    if touched < horizon]:
            del self._reassemblers[key]
            del self._reassembler_touch[key]
            self.eviction_stats.reassemblers_evicted += 1
        for link in [link for link, touched
                     in self._decoder_touch.items()
                     if touched < horizon]:
            del self._decoders[link]
            del self._decoder_touch[link]
            self.eviction_stats.reassemblers_evicted += 1
        for analyzer in self.analyzers:
            analyzer.evict(horizon, self.eviction_stats)
        self._last_sweep_us = self.now_us

    @property
    def live_reassemblers(self) -> int:
        return len(self._reassemblers)

    # -- reporting ----------------------------------------------------

    def link_snapshot(self) -> LinkSnapshot:
        """The typed snapshot: clock, stage counters, analyzers.

        This is the contract the renderers and the fleet supervisor
        consume; :meth:`snapshot` is its legacy dict projection.
        """
        return LinkSnapshot(
            link=self.link,
            time_us=self.now_us,
            packets=self.counters["reassemble"].received,
            events=self.events_dispatched,
            failures=self.failure_count,
            late_items=self.late_items,
            order_violations=self.order_violations,
            reorder_pending=self.reorder_pending,
            reassemblers=self.live_reassemblers,
            protocol=self.protocol.name,
            stages={stage: tally.freeze()
                    for stage, tally in self.counters.items()},
            eviction=self.eviction_stats.as_dict(),
            analyzers={analyzer.name: analyzer.snapshot()
                       for analyzer in self.analyzers},
        )

    def snapshot(self) -> dict:
        """The snapshot as a plain dict (the pre-schema shape plus
        the ``schema``/``link`` keys of the versioned contract)."""
        return self.link_snapshot().to_json()
