"""Packet sources for the streaming pipeline.

Batch analysis consumes a finished capture; the streaming engine pulls
from a :class:`Source` — an object that yields whatever has arrived
*so far* and says whether more may ever come. Three adapters cover the
workloads named in the roadmap:

* :class:`PcapTailSource` — incremental classic-pcap reader that
  tolerates a file still being written (``tail -f`` for captures);
* :class:`CaptureSource` — follows the packet list of a live
  :class:`~repro.simnet.scenario.SyntheticCapture` tap (or any object
  with a ``.packets`` list) as the simulator appends to it;
* :class:`ByteChunk` + :class:`TransportTap` — the socket_transport
  live path, where there is no L2-L4 framing: reliable APDU byte
  chunks enter the pipeline directly at the decode stage.

Sources are pull-based: the pipeline calls :meth:`Source.poll` with a
batch bound, which is what keeps ingest memory bounded no matter how
fast the producer writes.
"""

from __future__ import annotations

import struct
from typing import Iterable, Protocol, runtime_checkable

from ..netstack.addresses import IPv4Address
from ..netstack.packet import CapturedPacket
from ..netstack.pcap import (MAGIC_NSEC, MAGIC_USEC, PcapError,
                             PcapRecord, scan_complete_records)
from ..netstack.pcapng import (EPB_TYPE, IDB_TYPE, SHB_TYPE, SPB_TYPE,
                               Interface, PcapngError, parse_epb_body,
                               parse_idb_body, parse_spb_body)

#: One classic-pcap global header (see repro.netstack.pcap).
_GLOBAL_HEADER_SIZE = 24
_RECORD_HEADER_SIZE = 16
#: A pcapng block header (type + length) plus, for an SHB, the
#: byte-order magic needed to interpret the length at all.
_BLOCK_PROBE_SIZE = 12
_US_PER_SECOND = 1_000_000
_PCAPNG_BYTE_ORDER_MAGIC = 0x1A2B3C4D

#: Item types a source may yield (the pipeline routes on type).
SourceItem = object


@runtime_checkable
class Source(Protocol):
    """What the pipeline pulls from.

    ``poll`` returns at most ``max_items`` newly available items
    (possibly none); ``exhausted`` is True once no further item can
    ever arrive. A tail-mode source is never exhausted.
    """

    def poll(self, max_items: int) -> list[SourceItem]:
        ...  # pragma: no cover - protocol

    @property
    def exhausted(self) -> bool:
        ...  # pragma: no cover - protocol


class ListSource:
    """Source over an already-materialized item list (tests, replays)."""

    def __init__(self, items: Iterable[SourceItem]):
        self._items = list(items)
        self._cursor = 0

    def poll(self, max_items: int) -> list[SourceItem]:
        batch = self._items[self._cursor:self._cursor + max_items]
        self._cursor += len(batch)
        return batch

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._items)


class CaptureSource:
    """Follow the (possibly still-growing) packet list of a capture tap.

    Works for a finished :class:`SyntheticCapture` and for a live one
    whose simulator is still appending: each ``poll`` picks up where
    the previous one stopped. ``finished`` marks the producer done so
    the pipeline can drain and stop.
    """

    def __init__(self, capture, finished: bool = True):
        self._capture = capture
        self._cursor = 0
        self.finished = finished

    @property
    def _packets(self) -> list[CapturedPacket]:
        return self._capture.packets

    def host_names(self) -> dict[IPv4Address, str]:
        names = getattr(self._capture, "host_names", None)
        return dict(names()) if callable(names) else {}

    def poll(self, max_items: int) -> list[SourceItem]:
        packets = self._packets
        batch = packets[self._cursor:self._cursor + max_items]
        self._cursor += len(batch)
        return list(batch)

    @property
    def exhausted(self) -> bool:
        return self.finished and self._cursor >= len(self._packets)


class PcapTailSource:
    """Incrementally read a classic pcap file that may still grow.

    Unlike :class:`~repro.netstack.pcap.PcapReader`, a short read at
    the tail is not an error: partial header or record bytes stay
    buffered until the writer appends the rest. With ``follow=False``
    the source is exhausted at the first complete read of the file;
    with ``follow=True`` it keeps polling for appended bytes forever
    (the monitor decides when to stop).
    """

    def __init__(self, path, follow: bool = False):
        self._stream = open(path, "rb")
        self.follow = follow
        self._buffer = b""
        #: Consumed-bytes cursor into ``_buffer``: the batch scanner
        #: advances it per record and the buffer is trimmed once per
        #: poll, so a poll costs one slice however many records it
        #: yields (the old path re-sliced the whole remainder per
        #: record — quadratic on large polls).
        self._offset = 0
        self._header_done = False
        self._endian = "<"
        self._nanoseconds = False
        self._record_struct = struct.Struct("<IIII")
        #: Records whose bytes were complete but whose frame bytes
        #: failed to decode are counted by the pipeline, not here.
        self.records_read = 0
        self._eof_seen = False

    def close(self) -> None:
        self._stream.close()

    def _parse_header(self) -> bool:
        if len(self._buffer) - self._offset < _GLOBAL_HEADER_SIZE:
            return False
        start = self._offset
        header = self._buffer[start:start + _GLOBAL_HEADER_SIZE]
        magic = struct.unpack("<I", header[:4])[0]
        if magic in (MAGIC_USEC, MAGIC_NSEC):
            self._endian = "<"
        else:
            magic = struct.unpack(">I", header[:4])[0]
            if magic not in (MAGIC_USEC, MAGIC_NSEC):
                raise PcapError(f"bad pcap magic 0x{magic:08x}")
            self._endian = ">"
        self._nanoseconds = magic == MAGIC_NSEC
        self._record_struct = struct.Struct(self._endian + "IIII")
        self._offset = start + _GLOBAL_HEADER_SIZE
        self._header_done = True
        return True

    def poll(self, max_items: int) -> list[SourceItem]:
        chunk = self._stream.read(max(65536, max_items * 256))
        if chunk:
            if self._offset:
                self._buffer = self._buffer[self._offset:]
                self._offset = 0
            self._buffer += chunk
            self._eof_seen = False
        else:
            self._eof_seen = True
        if not self._header_done and not self._parse_header():
            return []
        records, self._offset = scan_complete_records(
            self._buffer, self._record_struct, self._nanoseconds,
            offset=self._offset, limit=max_items)
        self.records_read += len(records)
        return records

    @property
    def exhausted(self) -> bool:
        if self.follow:
            return False
        return (self._eof_seen and self._header_done
                and len(self._buffer) - self._offset
                < _RECORD_HEADER_SIZE)

    @property
    def pending_bytes(self) -> int:
        """Buffered bytes awaiting record completion."""
        return len(self._buffer) - self._offset


class PcapngTailSource:
    """Incrementally read a pcapng file that may still grow.

    The pcapng sibling of :class:`PcapTailSource`, with the same
    contract: a short read at the tail (half a block header, half a
    block body) stays buffered until the writer appends the rest;
    ``follow=False`` exhausts at the first complete read of the file,
    ``follow=True`` polls forever. Block bodies decode through the
    same :func:`~repro.netstack.pcapng.parse_epb_body` /
    :func:`~repro.netstack.pcapng.parse_idb_body` helpers as the
    batch :class:`~repro.netstack.pcapng.PcapngReader`, so tail and
    batch reads of the same bytes yield identical records. EPB and
    SPB blocks become records; SHB resets the section (endianness and
    interface list); unknown block types are counted in
    ``blocks_skipped``.
    """

    def __init__(self, path, follow: bool = False):
        self._stream = open(path, "rb")
        self.follow = follow
        self._buffer = b""
        #: Consumed-bytes cursor into ``_buffer`` (same single-trim-
        #: per-poll discipline as :class:`PcapTailSource`).
        self._offset = 0
        self._endian = "<"
        self._have_section = False
        self._interfaces: list[Interface] = []
        self.records_read = 0
        self.blocks_skipped = 0
        self._eof_seen = False

    def close(self) -> None:
        self._stream.close()

    def _next_block(self) -> tuple[int, bytes] | None:
        """Pop one complete block off the buffer, or None to wait."""
        buffer = self._buffer
        start = self._offset
        if len(buffer) - start < _BLOCK_PROBE_SIZE:
            return None
        # The SHB type value reads the same under either byte order,
        # so probing with the current endianness is safe even across
        # a section boundary that flips it.
        block_type = struct.unpack_from(self._endian + "I", buffer,
                                        start)[0]
        if block_type == SHB_TYPE:
            # Length interpretation needs the byte-order magic, which
            # sits just after the header.
            if struct.unpack_from("<I", buffer, start + 8)[0] \
                    == _PCAPNG_BYTE_ORDER_MAGIC:
                endian = "<"
            elif struct.unpack_from(">I", buffer, start + 8)[0] \
                    == _PCAPNG_BYTE_ORDER_MAGIC:
                endian = ">"
            else:
                raise PcapngError("bad byte-order magic")
            length = struct.unpack_from(endian + "I", buffer,
                                        start + 4)[0]
            if length < 16 or length % 4:
                raise PcapngError(f"invalid SHB length {length}")
            if len(buffer) - start < length:
                return None
            trailer = struct.unpack_from(endian + "I", buffer,
                                         start + length - 4)[0]
            if trailer != length:
                raise PcapngError("block length trailer mismatch")
            self._endian = endian
            self._have_section = True
            self._interfaces = []  # new section resets interfaces
            self._offset = start + length
            return SHB_TYPE, buffer[start + 8:start + length - 4]
        if not self._have_section:
            raise PcapngError(
                f"not a pcapng stream (first block 0x{block_type:08x})")
        length = struct.unpack_from(self._endian + "I", buffer,
                                    start + 4)[0]
        if length < 12 or length % 4:
            raise PcapngError(f"invalid block length {length}")
        if len(buffer) - start < length:
            return None
        trailer = struct.unpack_from(self._endian + "I", buffer,
                                     start + length - 4)[0]
        if trailer != length:
            raise PcapngError("block length trailer mismatch")
        self._offset = start + length
        return block_type, buffer[start + 8:start + length - 4]

    def poll(self, max_items: int) -> list[SourceItem]:
        chunk = self._stream.read(max(65536, max_items * 256))
        if chunk:
            if self._offset:
                self._buffer = self._buffer[self._offset:]
                self._offset = 0
            self._buffer += chunk
            self._eof_seen = False
        else:
            self._eof_seen = True
        records: list[SourceItem] = []
        while len(records) < max_items:
            block = self._next_block()
            if block is None:
                break
            block_type, body = block
            if block_type == IDB_TYPE:
                self._interfaces.append(
                    parse_idb_body(body, self._endian))
            elif block_type == EPB_TYPE:
                records.append(parse_epb_body(body, self._endian,
                                              self._interfaces))
                self.records_read += 1
            elif block_type == SPB_TYPE:
                records.append(parse_spb_body(body, self._endian))
                self.records_read += 1
            elif block_type != SHB_TYPE:
                # NRB, ISB, custom blocks: skipped, like the reader.
                self.blocks_skipped += 1
        return records

    @property
    def exhausted(self) -> bool:
        if self.follow:
            return False
        return (self._eof_seen and self._have_section
                and len(self._buffer) - self._offset
                < _BLOCK_PROBE_SIZE)

    @property
    def pending_bytes(self) -> int:
        """Buffered bytes awaiting block completion."""
        return len(self._buffer) - self._offset


class ByteChunk:
    """Reliable APDU bytes from the live socket path.

    There is no packet capture between two real endpoints — the kernel
    already reassembled TCP — so the chunk enters the pipeline at the
    decode stage. ``time_us`` is a caller-supplied monotone tick (the
    tap keeps its own deterministic counter by default).
    """

    __slots__ = ("time_us", "src", "dst", "data")

    def __init__(self, time_us: int, src: str, dst: str, data: bytes):
        self.time_us = time_us
        self.src = src
        self.dst = dst
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ByteChunk(time_us={self.time_us}, src={self.src!r}, "
                f"dst={self.dst!r}, {len(self.data)} bytes)")


class TransportTap:
    """Buffer + Source for live endpoint byte streams.

    :meth:`tap` wraps a :class:`~repro.iec104.socket_transport.
    SocketTransport`'s receiver callback so every chunk the endpoint
    consumes is also queued here, labelled with a (src, dst) direction.
    Chunks are stamped with a deterministic monotone microsecond
    counter unless the caller supplies real ticks via :meth:`push`.
    """

    def __init__(self, tick_step_us: int = 1000):
        self._queue: list[ByteChunk] = []
        self._now_us = 0
        self._tick_step_us = tick_step_us
        self.finished = False

    def push(self, src: str, dst: str, data: bytes,
             time_us: int | None = None) -> None:
        if time_us is None:
            self._now_us += self._tick_step_us
            time_us = self._now_us
        else:
            self._now_us = max(self._now_us, time_us)
        self._queue.append(ByteChunk(time_us=time_us, src=src,
                                     dst=dst, data=data))

    def tap(self, transport, src: str, dst: str) -> None:
        """Interpose on ``transport.receiver`` (keeps the original)."""
        original = transport.receiver

        def receive(data: bytes) -> None:
            self.push(src, dst, data)
            if original is not None:
                original(data)

        transport.receiver = receive

    def poll(self, max_items: int) -> list[SourceItem]:
        batch = self._queue[:max_items]
        del self._queue[:len(batch)]
        return batch

    @property
    def exhausted(self) -> bool:
        return self.finished and not self._queue


class MergedSource:
    """Time-ordered fan-in over several sources.

    Delivery is deterministic: the buffered heads are merged by
    ``time_us`` (ties broken by source index). A head is only released
    while every non-exhausted source has at least one buffered item —
    otherwise a later poll of the starved source could yield an earlier
    timestamp and break ordering.
    """

    def __init__(self, sources: list):
        self._sources = list(sources)
        self._heads: list[list[SourceItem]] = [[] for _ in self._sources]

    @staticmethod
    def _time_of(item: SourceItem) -> int:
        return getattr(item, "time_us", 0)

    def poll(self, max_items: int) -> list[SourceItem]:
        for index, source in enumerate(self._sources):
            if not self._heads[index] and not source.exhausted:
                self._heads[index] = list(source.poll(max_items))
        merged: list[SourceItem] = []
        while len(merged) < max_items:
            candidates = [(self._time_of(head[0]), index)
                          for index, head in enumerate(self._heads)
                          if head]
            if not candidates:
                break
            starved = any(not head and not source.exhausted
                          for head, source in zip(self._heads,
                                                  self._sources))
            if starved:
                break
            _, index = min(candidates)
            merged.append(self._heads[index].pop(0))
        return merged

    @property
    def exhausted(self) -> bool:
        return (all(source.exhausted for source in self._sources)
                and not any(self._heads))
