"""The typed snapshot contract of the monitoring surface.

Monitor output used to be free-form ``dict``s assembled inside
:meth:`StreamPipeline.snapshot`; every consumer (renderers, the CLI,
dashboards) had to agree on the keys by convention. This module makes
the contract explicit: frozen dataclasses describe exactly what a
snapshot contains, and :meth:`to_json` is the one place that maps the
typed form onto the versioned wire schema (``"schema": 1``).

Three shapes:

* :class:`StageCounters` — one pipeline stage's immutable counter set
  (the mutable accumulator lives in the pipeline as ``StageTally`` and
  is frozen into this at snapshot time);
* :class:`LinkSnapshot` — everything one :class:`~repro.stream.
  pipeline.StreamPipeline` knows at an instant. Deliberately free of
  any fleet-relative derived state (health, rank): the same link
  produces the byte-identical snapshot whether it runs alone under
  ``repro monitor`` or as one member of a fleet — that is what the
  parity suite in ``tests/stream/test_fleet.py`` pins.
* :class:`FleetSnapshot` — the aggregate view over N links: summed
  totals and stage counters, per-analyzer rollups, per-link health
  classified against the fleet clock, and the top-K anomaly links.

Schema history:

* ``1`` — initial versioned schema (PR 5). The unversioned PR 4 dict
  had the same link-level keys minus ``schema``/``link``.
* ``2`` — adds the per-link ``protocol`` tag (the protocol
  abstraction: each link binds one
  :class:`~repro.protocols.base.ProtocolSpec`). ``from_json`` still
  accepts schema-1 documents, defaulting ``protocol`` to
  ``"iec104"`` — every schema-1 writer was IEC 104-only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..simnet.clock import Ticks

#: Version stamped into every ``to_json`` document.
SNAPSHOT_SCHEMA_VERSION = 2

#: Schemas ``from_json`` reads: the current one and schema 1 (whose
#: documents lack ``protocol`` — IEC 104 by construction).
_READABLE_SCHEMAS = (1, SNAPSHOT_SCHEMA_VERSION)

#: How many links ``FleetSnapshot.top_anomalies`` keeps.
TOP_ANOMALIES = 5


@dataclass(frozen=True, slots=True)
class StageCounters:
    """Immutable per-stage accounting (one stage of the event bus)."""

    received: int = 0
    emitted: int = 0
    filtered: int = 0
    errors: int = 0
    dropped: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"received": self.received, "emitted": self.emitted,
                "filtered": self.filtered, "errors": self.errors,
                "dropped": self.dropped}

    @classmethod
    def from_dict(cls, data: Mapping[str, int]) -> "StageCounters":
        """Inverse of :meth:`as_dict` (the shard wire format)."""
        return cls(received=data.get("received", 0),
                   emitted=data.get("emitted", 0),
                   filtered=data.get("filtered", 0),
                   errors=data.get("errors", 0),
                   dropped=data.get("dropped", 0))

    def __add__(self, other: "StageCounters") -> "StageCounters":
        return StageCounters(
            received=self.received + other.received,
            emitted=self.emitted + other.emitted,
            filtered=self.filtered + other.filtered,
            errors=self.errors + other.errors,
            dropped=self.dropped + other.dropped)


class LinkHealth(enum.Enum):
    """Liveness of one link, judged by the T3-scaled eviction signal.

    A healthy IEC 104 link is never silent longer than the t3 idle
    timer (a TESTFR keep-alive is due then), so silence is graded
    against t3 multiples — see :class:`~repro.stream.fleet.
    LinkHealthPolicy` for the thresholds.
    """

    LIVE = "live"
    IDLE = "idle"
    DEAD = "dead"


@dataclass(frozen=True, slots=True)
class LinkSnapshot:
    """One pipeline's state at an instant (the per-link contract).

    ``stages`` maps stage name to frozen :class:`StageCounters`;
    ``analyzers`` maps analyzer name to that analyzer's own snapshot
    dict (analyzer payloads stay open-schema — each analyzer owns its
    keys); ``eviction`` is the :class:`~repro.stream.eviction.
    EvictionStats` counter dict. ``protocol`` names the
    :class:`~repro.protocols.base.ProtocolSpec` the link's pipeline
    is bound to (schema 2).
    """

    link: str
    time_us: Ticks
    packets: int
    events: int
    failures: int
    late_items: int
    order_violations: int
    reorder_pending: int
    reassemblers: int
    protocol: str = "iec104"
    stages: Mapping[str, StageCounters] = field(default_factory=dict)
    eviction: Mapping[str, int] = field(default_factory=dict)
    analyzers: Mapping[str, Mapping[str, Any]] = \
        field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        """The versioned wire form (plain JSON-serializable dict)."""
        return {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "link": self.link,
            "time_us": self.time_us,
            "packets": self.packets,
            "events": self.events,
            "failures": self.failures,
            "late_items": self.late_items,
            "order_violations": self.order_violations,
            "reorder_pending": self.reorder_pending,
            "reassemblers": self.reassemblers,
            "protocol": self.protocol,
            "stages": {stage: counters.as_dict()
                       for stage, counters in self.stages.items()},
            "eviction": dict(self.eviction),
            "analyzers": {name: dict(data)
                          for name, data in self.analyzers.items()},
        }

    @classmethod
    def from_json(cls, document: Mapping[str, Any]) -> "LinkSnapshot":
        """Rebuild a snapshot from its :meth:`to_json` wire form.

        This is the parent half of the sharded-fleet wire contract
        (:mod:`repro.stream.shard`): workers serialize their link
        snapshots with :meth:`to_json` and the supervisor rebuilds the
        typed form here, so a merged :class:`FleetSnapshot` is derived
        from exactly the same shapes as an in-process fleet's.
        """
        schema = document.get("schema")
        if schema not in _READABLE_SCHEMAS:
            raise ValueError(
                f"unsupported snapshot schema {schema!r} "
                f"(expected {SNAPSHOT_SCHEMA_VERSION})")
        return cls(
            link=document["link"],
            time_us=document["time_us"],
            packets=document["packets"],
            events=document["events"],
            failures=document["failures"],
            late_items=document["late_items"],
            order_violations=document["order_violations"],
            reorder_pending=document["reorder_pending"],
            reassemblers=document["reassemblers"],
            protocol=document.get("protocol", "iec104"),
            stages={stage: StageCounters.from_dict(counters)
                    for stage, counters
                    in document.get("stages", {}).items()},
            eviction=dict(document.get("eviction", {})),
            analyzers={name: dict(data) for name, data
                       in document.get("analyzers", {}).items()},
        )

    @property
    def alerts(self) -> int:
        """Detector alerts on this link (0 when no detector runs)."""
        detector = self.analyzers.get("detector", {})
        value = detector.get("alerts", 0)
        return value if isinstance(value, int) else 0


@dataclass(frozen=True, slots=True)
class LinkAnomaly:
    """One entry of the fleet's top-K anomaly ranking."""

    link: str
    alerts: int
    failures: int
    order_violations: int

    def as_dict(self) -> dict[str, Any]:
        return {"link": self.link, "alerts": self.alerts,
                "failures": self.failures,
                "order_violations": self.order_violations}

    @property
    def score(self) -> tuple[int, int, int]:
        return (self.alerts, self.failures, self.order_violations)


@dataclass(frozen=True, slots=True)
class FleetSnapshot:
    """The aggregate over every link of a fleet at an instant.

    ``time_us`` is the fleet clock — the max of the member link clocks
    (each link clock is its own capture's latest timestamp). Totals
    are exact sums over ``links``; ``analyzers`` holds per-analyzer
    rollups where every integer counter is summed across the links
    that report it (non-numeric analyzer fields are per-link detail
    and do not aggregate). ``health`` maps link name to a
    :class:`LinkHealth` value string, classified by the supervisor's
    :class:`~repro.stream.fleet.LinkHealthPolicy`. ``unrouted`` counts
    demuxed frames that matched no link (0 without a demux).
    """

    time_us: Ticks
    links: tuple[LinkSnapshot, ...]
    health: Mapping[str, str] = field(default_factory=dict)
    packets: int = 0
    events: int = 0
    failures: int = 0
    late_items: int = 0
    order_violations: int = 0
    stages: Mapping[str, StageCounters] = field(default_factory=dict)
    analyzers: Mapping[str, Mapping[str, int]] = \
        field(default_factory=dict)
    top_anomalies: tuple[LinkAnomaly, ...] = ()
    unrouted: int = 0

    @classmethod
    def from_links(cls, links: tuple[LinkSnapshot, ...],
                   now_us: Ticks,
                   health: Mapping[str, str] | None = None,
                   unrouted: int = 0) -> "FleetSnapshot":
        """Derive every aggregate field from the member snapshots."""
        stages: dict[str, StageCounters] = {}
        for link in links:
            for stage, counters in link.stages.items():
                stages[stage] = stages.get(stage,
                                           StageCounters()) + counters
        anomalies = sorted(
            (LinkAnomaly(link=link.link, alerts=link.alerts,
                         failures=link.failures,
                         order_violations=link.order_violations)
             for link in links),
            key=lambda entry: (tuple(-value for value in entry.score),
                               entry.link))
        top = tuple(entry for entry in anomalies[:TOP_ANOMALIES]
                    if entry.score > (0, 0, 0))
        return cls(
            time_us=now_us,
            links=links,
            health=dict(health or {}),
            packets=sum(link.packets for link in links),
            events=sum(link.events for link in links),
            failures=sum(link.failures for link in links),
            late_items=sum(link.late_items for link in links),
            order_violations=sum(link.order_violations
                                 for link in links),
            stages=stages,
            analyzers=_rollup_analyzers(links),
            top_anomalies=top,
            unrouted=unrouted,
        )

    @property
    def health_counts(self) -> dict[str, int]:
        """Links per health class (always lists all three classes)."""
        counts = {status.value: 0 for status in LinkHealth}
        for status in self.health.values():
            counts[status] = counts.get(status, 0) + 1
        return counts

    def to_json(self) -> dict[str, Any]:
        """The versioned wire form (plain JSON-serializable dict)."""
        return {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "kind": "fleet",
            "time_us": self.time_us,
            "link_count": len(self.links),
            "links": {link.link: link.to_json()
                      for link in self.links},
            "health": dict(self.health),
            "health_counts": self.health_counts,
            "packets": self.packets,
            "events": self.events,
            "failures": self.failures,
            "late_items": self.late_items,
            "order_violations": self.order_violations,
            "stages": {stage: counters.as_dict()
                       for stage, counters in self.stages.items()},
            "analyzers": {name: dict(data)
                          for name, data in self.analyzers.items()},
            "top_anomalies": [entry.as_dict()
                              for entry in self.top_anomalies],
            "unrouted": self.unrouted,
        }


def _rollup_analyzers(
        links: tuple[LinkSnapshot, ...]) -> dict[str, dict[str, int]]:
    """Sum every integer analyzer counter across the fleet.

    Only keys whose value is an ``int`` in every link that reports
    them aggregate (``bool`` is excluded — flags are not counts);
    strings, floats, lists and nested dicts are per-link detail and
    stay out of the rollup.
    """
    rollup: dict[str, dict[str, int]] = {}
    skip: dict[str, set[str]] = {}
    for link in links:
        for name, data in link.analyzers.items():
            totals = rollup.setdefault(name, {})
            bad = skip.setdefault(name, set())
            for key, value in data.items():
                if key in bad:
                    continue
                if isinstance(value, bool) \
                        or not isinstance(value, int):
                    bad.add(key)
                    totals.pop(key, None)
                    continue
                totals[key] = totals.get(key, 0) + value
    return rollup
