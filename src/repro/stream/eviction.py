"""Idle-state eviction so streaming memory stays bounded.

Every stateful stage of the pipeline — the per-direction TCP
reassemblers, the live flow table, the per-connection Markov chains,
the rolling session windows — keys its state on a flow or host pair.
Under an arbitrarily long run, dead keys accumulate; the eviction
policy reclaims any entry idle longer than a timeout.

The timeout is T3-scaled: a healthy IEC 104 connection is never silent
longer than the t3 idle timer (20 s by default) because either side
sends a TESTFR keep-alive then. An entry idle for several multiples of
t3 is dead, not quiet — evicting it cannot lose live protocol state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..iec104.constants import ProtocolTimers
from ..simnet.clock import Ticks, seconds_to_ticks

#: Evict state idle longer than this many t3 periods.
T3_MULTIPLE = 3.0


def default_idle_timeout_us(
        timers: ProtocolTimers | None = None,
        multiple: float = T3_MULTIPLE) -> Ticks:
    """The default idle timeout: ``multiple`` x t3, in ticks."""
    t3 = (timers or ProtocolTimers()).t3
    return seconds_to_ticks(t3 * multiple)


@dataclass
class EvictionPolicy:
    """When and what the pipeline reclaims.

    ``idle_timeout_us`` is the per-entry idle bound; ``sweep_every_us``
    is how often the pipeline runs a sweep (sweeps walk every table, so
    they are amortized rather than per-packet). Both are stream-time
    ticks — eviction is driven by capture timestamps, never the wall
    clock, so replaying a capture evicts identically every run.
    """

    idle_timeout_us: Ticks = 0
    sweep_every_us: Ticks = 0

    def __post_init__(self) -> None:
        if not self.idle_timeout_us:
            self.idle_timeout_us = default_idle_timeout_us()
        if not self.sweep_every_us:
            # Sweep once per timeout period: an entry lingers at most
            # 2x the timeout, and sweeps stay rare.
            self.sweep_every_us = self.idle_timeout_us

    def horizon(self, now_us: Ticks) -> Ticks:
        """Entries last touched before this tick are dead."""
        return now_us - self.idle_timeout_us

    def due(self, now_us: Ticks, last_sweep_us: Ticks) -> bool:
        return now_us - last_sweep_us >= self.sweep_every_us


@dataclass
class EvictionStats:
    """Counters reported in monitor snapshots."""

    sweeps: int = 0
    flows_evicted: int = 0
    reassemblers_evicted: int = 0
    chains_evicted: int = 0
    sessions_evicted: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "sweeps": self.sweeps,
            "flows_evicted": self.flows_evicted,
            "reassemblers_evicted": self.reassemblers_evicted,
            "chains_evicted": self.chains_evicted,
            "sessions_evicted": self.sessions_evicted,
        }
