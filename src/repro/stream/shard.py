"""Sharded fleet monitoring: N worker processes, one merged view.

A single :class:`~repro.stream.fleet.FleetSupervisor` runs every link
in one Python process, so a fleet the size of the paper's (~27
substations) is bounded by one core no matter how many the host has.
This module partitions the links across worker *processes*:

* :func:`shard_of` maps a link name to a shard with ``crc32`` — a
  process-stable hash (``hash()`` is salted per interpreter), so every
  worker independently agrees which links it owns;
* each worker runs :func:`run_shard_worker`: its own
  :class:`~repro.stream.fleet.LinkDemux` over the *whole* capture with
  an :class:`ShardAccept` predicate, so demux discovery lands
  deterministically — frames for other shards count as ``foreign`` and
  are dropped without building any per-link state;
* workers ship their per-link state to the parent as schema-versioned
  :meth:`~repro.stream.snapshots.LinkSnapshot.to_json` documents over
  a duplex pipe; the parent (:class:`ShardedFleetSupervisor`) rebuilds
  them with :meth:`~repro.stream.snapshots.LinkSnapshot.from_json` and
  merges them through the same
  :meth:`~repro.stream.snapshots.FleetSnapshot.from_links` an
  in-process fleet uses.

Because a :class:`~repro.stream.snapshots.LinkSnapshot` is free of
fleet-relative state by design, the merged
:class:`~repro.stream.snapshots.FleetSnapshot` is field-for-field
identical to a single-process run over the same capture: the fleet
clock is the max of the shard clocks, totals are sums over the same
link set, health is classified in the parent against the merged clock,
and ``unrouted`` agrees because every worker scans the same file (the
routed/foreign/unrouted partition is decided before shard filtering).
``tests/stream/test_shard.py`` pins that equality for 1, 2 and 4
workers.

The pipeline factory crosses a process boundary, so it must be
picklable — a module-level callable or a frozen dataclass like
:class:`MonitorPipelineFactory`, never a lambda or closure (the
staticcheck shard-safety rule flags those at the call site;
:class:`ShardedFleetSupervisor` also fails fast at construction).
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
import zlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..netstack.addresses import IPv4Address
from ..netstack.pcapng import sniff_format
from ..protocols.base import get_protocol
from ..simnet.clock import Ticks
from .analyzers import LiveFlowTable, OnlineChains, RollingSessionWindows
from .detector import OnlineCombinedDetector
from .eviction import EvictionPolicy
from .fleet import (FleetSupervisor, LinkDemux, LinkHealthPolicy,
                    PipelineFactory)
from .ingest import PcapngTailSource, PcapTailSource, Source
from .pipeline import StreamPipeline
from .snapshots import FleetSnapshot, LinkSnapshot

#: How long an idle worker blocks on its command pipe per round (s).
_IDLE_POLL_S = 0.05


def shard_of(name: str, shards: int) -> int:
    """The shard owning link ``name`` among ``shards`` workers.

    ``crc32`` rather than ``hash()``: the builtin string hash is
    salted per interpreter (PYTHONHASHSEED), so it cannot be used to
    make independent processes agree on a partition.
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    return zlib.crc32(name.encode("utf-8")) % shards


@dataclass(frozen=True)
class ShardAccept:
    """Accept predicate for one shard's demux (picklable)."""

    shard: int
    shards: int

    def __post_init__(self) -> None:
        if not 0 <= self.shard < self.shards:
            raise ValueError(
                f"shard {self.shard} outside 0..{self.shards - 1}")

    def __call__(self, name: str) -> bool:
        return zlib.crc32(name.encode("utf-8")) % self.shards \
            == self.shard


@dataclass(frozen=True)
class MonitorPipelineFactory:
    """The ``repro monitor`` pipeline recipe as a picklable value.

    ``repro monitor`` used to build pipelines through a closure over
    its argparse namespace; a closure cannot cross a process boundary,
    so the recipe is now this frozen dataclass — the same factory
    object serves the in-process fleet, the sharded workers, and any
    test that wants monitor-equivalent pipelines.

    Protocol binding is per link, resolved in priority order: an
    explicit ``link_protocols`` entry (the CLI's ``@proto`` suffix),
    then the source's port-based ``protocol_hint`` (set by
    :class:`~repro.stream.fleet.LinkDemux` from the link's first
    packet), then the factory-wide ``protocol`` default. Both are
    plain spec *names*, not spec objects, so the factory pickles
    across the shard process boundary and every worker resolves the
    identical spec from its own registry.
    """

    names: Mapping[IPv4Address, str] = field(default_factory=dict)
    reassemble: bool = False
    evict: bool = True
    protocol: str = "iec104"
    link_protocols: tuple[tuple[str, str], ...] = ()

    def protocol_for(self, link: str, source: Source) -> str:
        """The spec name ``link`` binds (override > hint > default)."""
        for name, wanted in self.link_protocols:
            if name == link:
                return wanted
        hint = getattr(source, "protocol_hint", None)
        return hint if hint is not None else self.protocol

    def __call__(self, link: str, source: Source) -> StreamPipeline:
        analyzers = [LiveFlowTable(), OnlineChains(),
                     RollingSessionWindows(), OnlineCombinedDetector()]
        eviction = EvictionPolicy() if self.evict else None
        spec = get_protocol(self.protocol_for(link, source))
        return StreamPipeline(source, names=dict(self.names),
                              analyzers=analyzers,
                              reassemble=self.reassemble,
                              eviction=eviction, link=link,
                              protocol=spec)


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one shard worker needs, shipped over the boundary.

    Exactly one feeding shape is set: ``path`` (one merged capture,
    demuxed per worker with an :class:`ShardAccept`) or ``links``
    (``(name, path)`` pairs — the worker opens only the files whose
    link name hashes to its shard). Sources are opened *inside* the
    worker: open file objects do not survive pickling, and
    independent readers keep the workers free of shared read state.
    """

    shard: int
    shards: int
    factory: PipelineFactory
    path: str | None = None
    links: tuple[tuple[str, str], ...] = ()
    names: Mapping[IPv4Address, str] = field(default_factory=dict)
    follow: bool = False
    demux_batch: int = 512
    detect_after_us: Ticks | None = None

    def __post_init__(self) -> None:
        if (self.path is None) == (not self.links):
            raise ValueError(
                "WorkerConfig needs exactly one of path / links")
        if not 0 <= self.shard < self.shards:
            raise ValueError(
                f"shard {self.shard} outside 0..{self.shards - 1}")


def _open_tail_source(path: str, follow: bool) -> Source:
    """A tail source for ``path``, sniffing pcap vs pcapng."""
    with open(path, "rb") as stream:
        fmt = sniff_format(stream)
    if fmt == "pcapng":
        return PcapngTailSource(path, follow=follow)
    return PcapTailSource(path, follow=follow)


def _shard_report(fleet: FleetSupervisor,
                  demux: LinkDemux | None) -> dict[str, Any]:
    """One worker's snapshot payload (wire-format link documents)."""
    return {
        "links": [snapshot.to_json()
                  for snapshot in fleet.link_snapshots()],
        "now_us": fleet.now_us,
        "unrouted": demux.unrouted if demux is not None else 0,
        "foreign": demux.foreign if demux is not None else 0,
    }


def _worker_loop(fleet: FleetSupervisor, demux: LinkDemux | None,
                 config: WorkerConfig, conn: Any) -> None:
    """Step the shard's fleet, answering parent commands in between.

    The worker makes progress on its own (one ``fleet.step()`` per
    round) and services the command pipe between steps, so the parent
    never has to pump data — it only ever asks questions. The
    DETECT flip is driven by the worker's *stream* clock
    (``detect_after_us``), keeping it deterministic on replay.
    """
    detect_at = config.detect_after_us
    switched = detect_at is None
    moved_total = 0
    while True:
        moved = fleet.step()
        moved_total += moved
        if not switched and detect_at is not None \
                and fleet.now_us >= detect_at:
            fleet.switch_to_detect()
            switched = True
        # Busy rounds only peek at the pipe; idle rounds block briefly
        # so a drained worker does not spin.
        timeout = 0 if moved else _IDLE_POLL_S
        while conn.poll(timeout):
            message = conn.recv()
            command = message[0]
            if command == "status":
                conn.send(("status", {
                    "moved": moved_total,
                    "now_us": fleet.now_us,
                    "exhausted": fleet.exhausted,
                    "links": fleet.link_count,
                }))
            elif command == "snapshot":
                conn.send(("snapshot", _shard_report(fleet, demux)))
            elif command == "flush":
                fleet.flush()
                conn.send(("ok",))
            elif command == "detect":
                fleet.switch_to_detect()
                switched = True
                conn.send(("ok",))
            elif command == "stop":
                conn.send(("ok",))
                return
            else:
                conn.send(("error",
                           f"unknown shard command {command!r}"))
                return
            timeout = 0


def run_shard_worker(config: WorkerConfig, conn: Any) -> None:
    """Shard worker entrypoint (one process; talks over ``conn``).

    Builds the shard's fleet from ``config``, then serves the command
    loop until ``stop``. Any crash is shipped to the parent as an
    ``("error", traceback)`` message instead of dying silently.
    """
    sources: list[Source] = []
    try:
        accept = ShardAccept(config.shard, config.shards)
        demux: LinkDemux | None = None
        if config.path is not None:
            source = _open_tail_source(config.path, config.follow)
            sources.append(source)
            demux = LinkDemux(source, names=dict(config.names),
                              accept=accept)
            fleet = FleetSupervisor(demux=demux,
                                    pipeline_factory=config.factory,
                                    demux_batch=config.demux_batch)
        else:
            fleet = FleetSupervisor()
            for name, path in config.links:
                if not accept(name):
                    continue
                source = _open_tail_source(path, config.follow)
                sources.append(source)
                fleet.add_link(config.factory(name, source),
                               name=name)
        _worker_loop(fleet, demux, config, conn)
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:  # pragma: no cover - parent already gone
            pass
    finally:
        for source in sources:
            source.close()
        conn.close()


class ShardWorkerError(RuntimeError):
    """A shard worker died or reported a failure."""


class ShardedFleetSupervisor:
    """Drive N shard workers and merge their state into one fleet view.

    Presents the same driving/reporting surface as
    :class:`~repro.stream.fleet.FleetSupervisor` (``step`` /
    ``flush`` / ``switch_to_detect`` / ``now_us`` / ``exhausted`` /
    ``snapshot``), so :func:`~repro.stream.monitor.run_monitor` drives
    either interchangeably. The parent holds **no** packet state: it
    asks workers for status (cheap counters) while they pump their
    captures, and only pulls full snapshots when one is rendered.

    ``factory`` must be picklable (checked eagerly, so a lambda fails
    here with a clear message instead of deep inside
    ``multiprocessing``). Call :meth:`close` (or use the instance as a
    context manager) to stop the workers.
    """

    def __init__(self, factory: PipelineFactory, *, workers: int,
                 path: str | None = None,
                 links: Sequence[tuple[str, str]] = (),
                 names: Mapping[IPv4Address, str] | None = None,
                 follow: bool = False,
                 demux_batch: int = 512,
                 health: LinkHealthPolicy | None = None,
                 detect_after_us: Ticks | None = None,
                 mp_context: Any = None):
        if workers < 1:
            raise ValueError(
                f"worker count must be >= 1, got {workers}")
        try:
            pickle.dumps(factory)
        except Exception as exc:
            raise ValueError(
                "a sharded fleet's pipeline factory must be picklable "
                "(a module-level callable or frozen dataclass such as "
                "MonitorPipelineFactory, not a lambda or closure): "
                f"{exc}") from exc
        context = mp_context if mp_context is not None \
            else multiprocessing.get_context()
        self.worker_count = workers
        self.health_policy = health or LinkHealthPolicy()
        self._conns: list[Any] = []
        self._procs: list[Any] = []
        self._moved = [0] * workers
        self._status: list[dict[str, Any]] = [
            {"moved": 0, "now_us": 0, "exhausted": False, "links": 0}
            for _ in range(workers)]
        self._closed = False
        for shard in range(workers):
            parent_conn, child_conn = context.Pipe()
            config = WorkerConfig(
                shard=shard, shards=workers, factory=factory,
                path=path, links=tuple(links),
                names=dict(names or {}), follow=follow,
                demux_batch=demux_batch,
                detect_after_us=detect_after_us)
            process = context.Process(
                target=run_shard_worker, args=(config, child_conn),
                name=f"repro-shard-{shard}", daemon=True)
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(process)

    # -- wire helpers -------------------------------------------------

    def _recv(self, index: int, expect: str) -> Any:
        try:
            reply = self._conns[index].recv()
        except (EOFError, OSError) as exc:
            raise ShardWorkerError(
                f"shard worker {index} died mid-command") from exc
        if reply[0] == "error":
            raise ShardWorkerError(
                f"shard worker {index} failed:\n{reply[1]}")
        if reply[0] != expect:
            raise ShardWorkerError(
                f"shard worker {index} replied {reply[0]!r} "
                f"to a {expect!r} request")
        return reply[1] if len(reply) > 1 else None

    def _broadcast(self, message: tuple, expect: str) -> list[Any]:
        """Send ``message`` to every worker, then collect replies.

        Sends are pipelined before any receive, so the N round trips
        overlap instead of serializing.
        """
        if self._closed:
            raise ShardWorkerError("sharded fleet is closed")
        for conn in self._conns:
            conn.send(message)
        return [self._recv(index, expect)
                for index in range(self.worker_count)]

    # -- driving ------------------------------------------------------

    def step(self) -> int:
        """One supervision round; returns items the workers moved
        since the previous round (the workers pump continuously —
        this only samples their progress counters)."""
        statuses = self._broadcast(("status",), "status")
        moved = 0
        for index, status in enumerate(statuses):
            moved += status["moved"] - self._moved[index]
            self._moved[index] = status["moved"]
            self._status[index] = status
        return moved

    def flush(self) -> None:
        """Flush every shard's reorder buffers."""
        self._broadcast(("flush",), "ok")

    def switch_to_detect(self) -> None:
        """Flip every shard (and its future links) to DETECT."""
        self._broadcast(("detect",), "ok")

    @property
    def now_us(self) -> Ticks:
        """The fleet clock as of the last :meth:`step` sample."""
        return max((status["now_us"] for status in self._status),
                   default=0)

    @property
    def exhausted(self) -> bool:
        """True once every shard reported itself exhausted."""
        return all(status["exhausted"] for status in self._status)

    @property
    def link_count(self) -> int:
        return sum(status["links"] for status in self._status)

    # -- reporting ----------------------------------------------------

    def _gather(self) -> tuple[tuple[LinkSnapshot, ...], Ticks, int]:
        reports = self._broadcast(("snapshot",), "snapshot")
        links = tuple(sorted(
            (LinkSnapshot.from_json(document)
             for report in reports for document in report["links"]),
            key=lambda snapshot: snapshot.link))
        now = max((report["now_us"] for report in reports), default=0)
        # Every worker scans the whole capture, so each counts the
        # same unrouted frames; max (not sum) tolerates workers being
        # at different read offsets mid-stream and equals the
        # single-process count once drained.
        unrouted = max((report["unrouted"] for report in reports),
                       default=0)
        return links, now, unrouted

    @property
    def links(self) -> list[str]:
        """Link names, sorted (the snapshot order)."""
        links, _now, _unrouted = self._gather()
        return [snapshot.link for snapshot in links]

    def link_snapshots(self) -> tuple[LinkSnapshot, ...]:
        links, _now, _unrouted = self._gather()
        return links

    def snapshot(self) -> FleetSnapshot:
        """The merged fleet view — same derivation as in-process.

        Health is classified in the parent against the merged fleet
        clock: a worker cannot judge lag, because its local clock may
        itself be the laggard.
        """
        links, now, unrouted = self._gather()
        health = {snapshot.link: self.health_policy.classify(
                      now - snapshot.time_us).value
                  for snapshot in links}
        return FleetSnapshot.from_links(links, now_us=now,
                                        health=health,
                                        unrouted=unrouted)

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        """Stop the workers and reap their processes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except OSError:
                pass
        for conn in self._conns:
            try:
                conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
        for process in self._procs:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5)

    def __enter__(self) -> "ShardedFleetSupervisor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
