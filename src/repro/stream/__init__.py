"""repro.stream — online streaming analysis and monitoring engine.

Push-based, bounded-memory counterpart to the batch analysis layer:
packets flow from a :class:`~repro.stream.ingest.Source` through the
:class:`~repro.stream.pipeline.StreamPipeline` stages into incremental
analyzers whose state is provably consistent with the batch passes
(see ``tests/stream/test_parity.py``). ``repro monitor`` is the CLI
front-end; :mod:`repro.stream.eviction` keeps long-running state
bounded.
"""

from .analyzers import (FlowTally, LiveFlowTable, OnlineChains,
                        RollingFeatures, RollingSessionWindows,
                        StreamAnalyzer)
from .detector import DetectorMode, OnlineCombinedDetector
from .eviction import (T3_MULTIPLE, EvictionPolicy, EvictionStats,
                       default_idle_timeout_us)
from .fleet import (DemuxLinkSource, FleetSupervisor, LinkDemux,
                    LinkHealthPolicy)
from .ingest import (ByteChunk, CaptureSource, ListSource,
                     MergedSource, PcapngTailSource, PcapTailSource,
                     Source, TransportTap)
from .monitor import render_json, render_text, run_monitor
from .pipeline import STAGES, StageTally, StreamPipeline
from .shard import (MonitorPipelineFactory, ShardAccept,
                    ShardedFleetSupervisor, ShardWorkerError,
                    WorkerConfig, run_shard_worker, shard_of)
from .snapshots import (SNAPSHOT_SCHEMA_VERSION, FleetSnapshot,
                        LinkAnomaly, LinkHealth, LinkSnapshot,
                        StageCounters)

__all__ = [
    "ByteChunk", "CaptureSource", "DemuxLinkSource", "DetectorMode",
    "EvictionPolicy", "EvictionStats", "FleetSnapshot",
    "FleetSupervisor", "FlowTally", "LinkAnomaly", "LinkDemux",
    "LinkHealth", "LinkHealthPolicy", "LinkSnapshot", "ListSource",
    "LiveFlowTable", "MergedSource", "MonitorPipelineFactory",
    "OnlineChains", "OnlineCombinedDetector", "PcapTailSource",
    "PcapngTailSource", "RollingFeatures", "RollingSessionWindows",
    "SNAPSHOT_SCHEMA_VERSION", "STAGES", "ShardAccept",
    "ShardWorkerError", "ShardedFleetSupervisor", "Source",
    "StageCounters", "StageTally", "StreamAnalyzer", "StreamPipeline",
    "T3_MULTIPLE", "TransportTap", "WorkerConfig",
    "default_idle_timeout_us", "render_json", "render_text",
    "run_monitor", "run_shard_worker", "shard_of",
]
