"""The balancing-area grid simulation.

Couples the generator fleet, the aggregate load, the frequency model
and the AGC controller, stepping at a fixed resolution. The network
simulator reads values through :meth:`GridSimulation.advance_to`-backed
accessors, so grid time advances lazily with simulated network time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .agc import AGCController
from .constants import AGC_CYCLE_SECONDS
from .frequency import FrequencyModel
from .generator import Generator, GeneratorFleet
from .interchange import InterchangeModel
from .load import SystemLoad


@dataclass
class GridEventScript:
    """Scripted physical events applied during the run."""

    #: (time, generator_name) — unit starts its synchronization ramp.
    generator_syncs: list[tuple[float, str]] = field(default_factory=list)
    #: (time, duration, magnitude_mw) — load disconnects ("unmet load").
    load_losses: list[tuple[float, float, float]] = (
        field(default_factory=list))
    #: (time, generator_name) — unit trips offline.
    generator_trips: list[tuple[float, str]] = field(default_factory=list)


class GridSimulation:
    """Single-area power system with AGC, advanced lazily in time."""

    def __init__(self, fleet: GeneratorFleet, load: SystemLoad,
                 frequency: FrequencyModel | None = None,
                 agc: AGCController | None = None,
                 script: GridEventScript | None = None,
                 dt: float = 1.0, start_time: float = 0.0,
                 rng: random.Random | None = None,
                 measurement_noise: float = 0.002,
                 interchange: InterchangeModel | None = None):
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.fleet = fleet
        self.load = load
        self.frequency = frequency or FrequencyModel()
        self.agc = agc or AGCController(generators=list(fleet))
        self.interchange = interchange
        self.script = script or GridEventScript()
        self.dt = dt
        self.now = start_time
        self._rng = rng or random.Random(20)
        self._noise = measurement_noise
        self._next_agc = start_time
        #: Latest set points decided by AGC, per generator name.
        self.latest_setpoints: dict[str, float] = {
            generator.name: generator.setpoint_mw for generator in fleet}
        for start, duration, magnitude in self.script.load_losses:
            self.load.schedule_loss(start, duration, magnitude)
        self._pending_syncs = sorted(self.script.generator_syncs)
        self._pending_trips = sorted(self.script.generator_trips)

    def advance_to(self, when: float) -> None:
        """Step the physics forward until ``when`` (no-op if behind)."""
        while self.now + self.dt <= when:
            self._step()

    def _step(self) -> None:
        now = self.now + self.dt
        while self._pending_syncs and self._pending_syncs[0][0] <= now:
            _, name = self._pending_syncs.pop(0)
            self.fleet[name].begin_synchronization(now)
        while self._pending_trips and self._pending_trips[0][0] <= now:
            _, name = self._pending_trips.pop(0)
            self.fleet[name].trip()
        self.fleet.step(now, self.dt,
                        frequency_hz=self.frequency.frequency_hz)
        demand = self.load.demand_at(now)
        interchange_error = 0.0
        if self.interchange is not None:
            self.interchange.update(self.frequency.frequency_hz)
            # Exports are load seen by this area's generation.
            demand += self.interchange.net_export_mw
            interchange_error = self.interchange.interchange_error_mw
        self.frequency.step(self.fleet.total_output_mw, demand, self.dt)
        if now >= self._next_agc:
            self.latest_setpoints.update(
                self.agc.cycle(now, self.frequency.frequency_hz,
                               interchange_error_mw=interchange_error))
            self._next_agc = now + AGC_CYCLE_SECONDS
        self.now = now

    # -- measurement accessors (what RTU points read) -----------------------

    def _jitter(self, value: float, scale: float) -> float:
        if self._noise <= 0:
            return value
        return value + self._rng.gauss(0.0, self._noise * max(1.0, scale))

    def gen_active_power(self, name: str, when: float) -> float:
        self.advance_to(when)
        return self._jitter(self.fleet[name].output_mw, 10.0)

    def gen_reactive_power(self, name: str, when: float) -> float:
        self.advance_to(when)
        return self._jitter(self.fleet[name].reactive_mvar, 5.0)

    def gen_voltage(self, name: str, when: float) -> float:
        self.advance_to(when)
        return self._jitter(self.fleet[name].voltage_kv, 2.0)

    def gen_current(self, name: str, when: float) -> float:
        self.advance_to(when)
        return self._jitter(self.fleet[name].current_ka, 0.05)

    def gen_breaker(self, name: str, when: float) -> int:
        self.advance_to(when)
        return self.fleet[name].breaker

    def system_frequency(self, when: float) -> float:
        self.advance_to(when)
        return self._jitter(self.frequency.frequency_hz, 0.001)

    def setpoint_for(self, name: str, when: float) -> float:
        self.advance_to(when)
        return self.latest_setpoints.get(name, 0.0)


def build_default_grid(generator_names: list[str],
                       rng: random.Random | None = None,
                       script: GridEventScript | None = None,
                       capacity_range: tuple[float, float] = (80.0, 400.0),
                       ) -> GridSimulation:
    """Construct a plausible balancing area around ``generator_names``.

    Each named generator gets a capacity drawn from ``capacity_range``
    and starts online at ~70% loading; total load matches generation so
    AGC starts near balance.
    """
    rng = rng or random.Random(11)
    fleet = GeneratorFleet()
    total = 0.0
    for name in generator_names:
        capacity = rng.uniform(*capacity_range)
        generator = Generator(name=name, capacity_mw=capacity,
                              setpoint_mw=0.7 * capacity,
                              ramp_rate_mw_per_s=capacity / 300.0)
        generator.output_mw = generator.setpoint_mw
        fleet.add(generator)
        total += generator.output_mw
    load = SystemLoad(base_mw=total, swing_mw=0.02 * total,
                      swing_period_s=3600.0, noise_mw=0.002 * total,
                      rng=random.Random(rng.randrange(1 << 30)))
    agc = AGCController(generators=list(fleet))
    return GridSimulation(fleet=fleet, load=load, agc=agc, script=script,
                          rng=random.Random(rng.randrange(1 << 30)))
