"""Generator model with ramp limits and a synchronization sequence.

The synchronization sequence reproduces the physics behind the paper's
Fig. 20 / Fig. 21 signature: terminal voltage ramps from 0 kV to its
nominal value, the breaker closes (double-point status 0 -> 2), and only
then does active power ramp toward the set point while reactive power
settles around a (possibly negative) operating value.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from .constants import NOMINAL_VOLTAGE_KV


class GeneratorState(enum.Enum):
    OFFLINE = "offline"
    VOLTAGE_RAMP = "ramping voltage"   # excitation building up
    SYNCHRONIZED = "synchronized"      # nominal voltage, breaker open
    ONLINE = "online"                  # breaker closed, delivering power


#: Breaker double-point states (IEC 104 DIQ semantics, paper Fig. 20).
BREAKER_OPEN = 0
BREAKER_CLOSED = 2


@dataclass
class Generator:
    """One dispatchable generating unit."""

    name: str
    capacity_mw: float
    setpoint_mw: float = 0.0
    ramp_rate_mw_per_s: float = 1.0
    nominal_voltage_kv: float = NOMINAL_VOLTAGE_KV
    #: Seconds for the voltage ramp during synchronization.
    sync_voltage_ramp_s: float = 120.0
    #: Seconds spent synchronized before the breaker closes.
    sync_hold_s: float = 60.0
    #: Dispatch target applied when the unit comes online after a
    #: synchronization (the operator's initial loading order).
    post_sync_setpoint_mw: float | None = None
    #: Governor droop: fraction of frequency deviation per unit of
    #: full-capacity output change (typical 4-5%). None disables the
    #: governor (the unit follows its set point only).
    droop: float | None = 0.05

    state: GeneratorState = GeneratorState.ONLINE
    output_mw: float = 0.0
    reactive_mvar: float = 0.0
    voltage_kv: float = NOMINAL_VOLTAGE_KV
    _sync_started: float | None = None

    def __post_init__(self) -> None:
        if self.capacity_mw <= 0:
            raise ValueError("capacity must be positive")
        if self.ramp_rate_mw_per_s <= 0:
            raise ValueError("ramp rate must be positive")
        self.setpoint_mw = self._clamp(self.setpoint_mw)
        if self.state is GeneratorState.OFFLINE:
            self.voltage_kv = 0.0
            self.output_mw = 0.0

    def _clamp(self, value: float) -> float:
        return max(0.0, min(self.capacity_mw, value))

    @property
    def breaker(self) -> int:
        return (BREAKER_CLOSED if self.state is GeneratorState.ONLINE
                else BREAKER_OPEN)

    @property
    def current_ka(self) -> float:
        """Stator current estimate from apparent power and voltage."""
        if self.voltage_kv <= 1.0:
            return 0.0
        apparent = math.hypot(self.output_mw, self.reactive_mvar)
        return apparent / (math.sqrt(3.0) * self.voltage_kv)

    def apply_setpoint(self, setpoint_mw: float) -> None:
        """AGC dispatch: update the target output."""
        self.setpoint_mw = self._clamp(setpoint_mw)

    def begin_synchronization(self, now: float) -> None:
        """Start bringing an offline unit onto the grid (Fig. 20)."""
        if self.state is not GeneratorState.OFFLINE:
            raise RuntimeError(f"{self.name} is not offline")
        self.state = GeneratorState.VOLTAGE_RAMP
        self._sync_started = now

    def trip(self) -> None:
        """Instantaneous disconnection (breaker opens)."""
        self.state = GeneratorState.OFFLINE
        self.output_mw = 0.0
        self.reactive_mvar = 0.0
        self.voltage_kv = 0.0
        self._sync_started = None

    def governor_response_mw(self, frequency_hz: float,
                             nominal_hz: float = 60.0) -> float:
        """Primary frequency response: MW added by the governor.

        Droop control: output rises when frequency sags, proportional
        to deviation, scaled by 1/droop of capacity per unit frequency.
        This arrests a frequency excursion within seconds, before AGC's
        secondary control restores the set point (Figs. 18-19 physics).
        """
        if self.droop is None or self.state is not GeneratorState.ONLINE:
            return 0.0
        per_unit_deviation = (frequency_hz - nominal_hz) / nominal_hz
        return -per_unit_deviation / self.droop * self.capacity_mw

    def step(self, now: float, dt: float,
             frequency_hz: float | None = None) -> None:
        """Advance the unit by ``dt`` seconds.

        ``frequency_hz`` enables the governor's primary frequency
        response on top of the dispatched set point."""
        if self.state is GeneratorState.OFFLINE:
            return
        if self.state is GeneratorState.VOLTAGE_RAMP:
            elapsed = now - self._sync_started
            fraction = min(1.0, elapsed / self.sync_voltage_ramp_s)
            self.voltage_kv = self.nominal_voltage_kv * fraction
            if fraction >= 1.0:
                self.state = GeneratorState.SYNCHRONIZED
            return
        if self.state is GeneratorState.SYNCHRONIZED:
            self.voltage_kv = self.nominal_voltage_kv
            elapsed = now - self._sync_started
            if elapsed >= self.sync_voltage_ramp_s + self.sync_hold_s:
                self.state = GeneratorState.ONLINE
                if self.post_sync_setpoint_mw is not None:
                    self.apply_setpoint(self.post_sync_setpoint_mw)
            return
        # ONLINE: ramp output toward the set point plus any governor
        # (primary frequency response) contribution.
        target = self.setpoint_mw
        if frequency_hz is not None:
            target += self.governor_response_mw(frequency_hz)
        target = self._clamp(target)
        delta = target - self.output_mw
        max_step = self.ramp_rate_mw_per_s * dt
        self.output_mw += max(-max_step, min(max_step, delta))
        # Reactive power follows loading with a lagging response; it may
        # be negative (the unit absorbing VArs), as the paper notes.
        target_q = 0.25 * self.output_mw - 0.05 * self.capacity_mw
        self.reactive_mvar += 0.2 * (target_q - self.reactive_mvar)
        self.voltage_kv = self.nominal_voltage_kv


@dataclass
class GeneratorFleet:
    """The dispatchable units of one balancing area."""

    units: dict[str, Generator] = field(default_factory=dict)

    def add(self, generator: Generator) -> Generator:
        if generator.name in self.units:
            raise ValueError(f"duplicate generator {generator.name}")
        self.units[generator.name] = generator
        return generator

    def __getitem__(self, name: str) -> Generator:
        return self.units[name]

    def __iter__(self):
        return iter(self.units.values())

    def __len__(self) -> int:
        return len(self.units)

    @property
    def total_output_mw(self) -> float:
        return sum(unit.output_mw for unit in self.units.values())

    @property
    def online(self) -> list[Generator]:
        return [unit for unit in self.units.values()
                if unit.state is GeneratorState.ONLINE]

    def step(self, now: float, dt: float,
             frequency_hz: float | None = None) -> None:
        for unit in self.units.values():
            unit.step(now, dt, frequency_hz=frequency_hz)
