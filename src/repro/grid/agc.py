"""Automatic Generation Control.

AGC is the algorithm the paper's balancing authority runs (Section 2):
it measures the frequency deviation (and interchange error), computes
the Area Control Error, and dispatches participating generators up or
down to restore balance. In the synthetic network, AGC set points leave
the control center as IEC 104 ``C_SE_NC_1`` (I50) commands — the
AGC-SP rows of paper Table 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .constants import (DEFAULT_FREQUENCY_BIAS_MW_PER_HZ,
                        NOMINAL_FREQUENCY_HZ)
from .generator import Generator, GeneratorState


@dataclass
class AGCController:
    """Proportional-integral area control with participation factors."""

    generators: list[Generator]
    frequency_bias_mw_per_hz: float = DEFAULT_FREQUENCY_BIAS_MW_PER_HZ
    #: Integral gain on accumulated ACE.
    integral_gain: float = 0.08
    #: Proportional gain on instantaneous ACE.
    proportional_gain: float = 0.5
    #: Participation factor per generator name (defaults to capacity
    #: share among online units).
    participation: dict[str, float] = field(default_factory=dict)

    _ace_integral: float = 0.0
    #: History of (time, ace, total_dispatch) for analysis/plots.
    history: list[tuple[float, float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.generators:
            raise ValueError("AGC needs at least one generator")

    def area_control_error(self, frequency_hz: float,
                           interchange_error_mw: float = 0.0) -> float:
        """ACE = dP_interchange + 10 * B * df (NERC sign convention).

        Positive ACE means over-generation: units must ramp *down*.
        """
        df = frequency_hz - NOMINAL_FREQUENCY_HZ
        return interchange_error_mw + self.frequency_bias_mw_per_hz * df

    def _participation_factors(self) -> dict[str, float]:
        online = [generator for generator in self.generators
                  if generator.state is GeneratorState.ONLINE]
        if not online:
            return {}
        factors = {}
        total = 0.0
        for generator in online:
            weight = self.participation.get(generator.name,
                                            generator.capacity_mw)
            if weight <= 0.0:
                # Explicitly excluded (e.g. a unit still being loaded
                # manually after synchronization).
                continue
            factors[generator.name] = weight
            total += weight
        if total <= 0.0:
            return {}
        return {name: weight / total for name, weight in factors.items()}

    def cycle(self, now: float, frequency_hz: float,
              interchange_error_mw: float = 0.0) -> dict[str, float]:
        """Run one AGC cycle; return new set points per generator name.

        The returned set points are also applied to the generator
        objects, mirroring what the RTU does when the I50 command lands.
        """
        ace = self.area_control_error(frequency_hz, interchange_error_mw)
        self._ace_integral += ace
        correction = -(self.proportional_gain * ace
                       + self.integral_gain * self._ace_integral)
        factors = self._participation_factors()
        setpoints: dict[str, float] = {}
        total_dispatch = 0.0
        for generator in self.generators:
            factor = factors.get(generator.name)
            if factor is None:
                continue
            target = generator.output_mw + correction * factor
            target = max(0.0, min(generator.capacity_mw, target))
            generator.apply_setpoint(target)
            setpoints[generator.name] = target
            total_dispatch += target
        self.history.append((now, ace, total_dispatch))
        return setpoints
