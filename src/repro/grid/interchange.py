"""Tie lines and scheduled interchange between balancing areas.

The paper's balancing authority coordinates "power balance across
multiple geographical regions"; its AGC tracks not just frequency but
also the power flowing over inter-area exchange lines (Section 2).
This module models those tie lines so the ACE's interchange term is
driven by physics instead of being pinned to zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .constants import NOMINAL_FREQUENCY_HZ


@dataclass
class TieLine:
    """One inter-area exchange line.

    Flow is positive when exporting from this area. The actual flow
    responds to the local frequency deviation: an over-frequency area
    pushes extra power into its neighbours (the synchronous-grid
    self-balancing the frequency-bias term approximates).
    """

    name: str
    capacity_mw: float
    scheduled_mw: float = 0.0
    #: MW of extra export per Hz of local over-frequency.
    stiffness_mw_per_hz: float = 800.0
    actual_mw: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_mw <= 0:
            raise ValueError("tie-line capacity must be positive")
        if abs(self.scheduled_mw) > self.capacity_mw:
            raise ValueError("schedule exceeds capacity")
        self.actual_mw = self.scheduled_mw

    def update(self, frequency_hz: float) -> float:
        """Advance the line's actual flow; return it."""
        deviation = frequency_hz - NOMINAL_FREQUENCY_HZ
        target = self.scheduled_mw + self.stiffness_mw_per_hz * deviation
        target = max(-self.capacity_mw, min(self.capacity_mw, target))
        # First-order approach to the target (line + neighbour inertia).
        self.actual_mw += 0.3 * (target - self.actual_mw)
        return self.actual_mw

    @property
    def deviation_mw(self) -> float:
        """Actual minus scheduled flow (the ACE interchange term)."""
        return self.actual_mw - self.scheduled_mw

    def reschedule(self, scheduled_mw: float) -> None:
        """Market/operator action: change the scheduled interchange."""
        if abs(scheduled_mw) > self.capacity_mw:
            raise ValueError("schedule exceeds capacity")
        self.scheduled_mw = scheduled_mw


@dataclass
class InterchangeModel:
    """The area's full set of tie lines."""

    lines: list[TieLine] = field(default_factory=list)

    def add(self, line: TieLine) -> TieLine:
        if any(existing.name == line.name for existing in self.lines):
            raise ValueError(f"duplicate tie line {line.name}")
        self.lines.append(line)
        return line

    def __getitem__(self, name: str) -> TieLine:
        for line in self.lines:
            if line.name == name:
                return line
        raise KeyError(name)

    def update(self, frequency_hz: float) -> float:
        """Advance every line; return the net interchange error (MW)."""
        return sum(line.update(frequency_hz) - line.scheduled_mw
                   for line in self.lines)

    @property
    def net_export_mw(self) -> float:
        return sum(line.actual_mw for line in self.lines)

    @property
    def interchange_error_mw(self) -> float:
        return sum(line.deviation_mw for line in self.lines)
