"""Power-system physics substrate: generators, load, frequency, AGC,
and the generator-activation behaviour signature of paper Fig. 21."""

from .agc import AGCController
from .constants import (AGC_CYCLE_SECONDS, DISTRIBUTION_SCALE,
                        NOMINAL_FREQUENCY_HZ, NOMINAL_VOLTAGE_KV,
                        TABLE1_ROWS, TRANSMISSION_SCALE, GridScale)
from .frequency import FrequencyModel
from .interchange import InterchangeModel, TieLine
from .generator import (BREAKER_CLOSED, BREAKER_OPEN, Generator,
                        GeneratorFleet, GeneratorState)
from .load import SystemLoad
from .signature import ActivationSignature, SignatureEvent, SignatureState
from .simulation import GridEventScript, GridSimulation, build_default_grid

__all__ = [
    "AGCController", "AGC_CYCLE_SECONDS", "ActivationSignature",
    "BREAKER_CLOSED", "BREAKER_OPEN", "DISTRIBUTION_SCALE",
    "FrequencyModel", "Generator", "GeneratorFleet", "GeneratorState",
    "GridEventScript", "GridScale", "GridSimulation",
    "InterchangeModel", "TieLine",
    "NOMINAL_FREQUENCY_HZ", "NOMINAL_VOLTAGE_KV", "SignatureEvent",
    "SignatureState", "SystemLoad", "TABLE1_ROWS", "TRANSMISSION_SCALE",
    "build_default_grid",
]
