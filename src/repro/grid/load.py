"""Aggregate system load with diurnal drift, noise and scripted loss.

The "unmet load" event of paper Figs. 18-19 is a sudden loss of load:
generation momentarily exceeds demand, frequency rises, and AGC must
dispatch generators downward until the load is reconnected.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field


@dataclass
class SystemLoad:
    """Balancing-area demand in MW."""

    base_mw: float
    #: Amplitude of the slow (diurnal-like) oscillation.
    swing_mw: float = 0.0
    swing_period_s: float = 86400.0
    noise_mw: float = 0.0
    rng: random.Random = field(default_factory=lambda: random.Random(7))
    #: Active load-loss events as (start, end, magnitude_mw).
    _losses: list[tuple[float, float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.base_mw <= 0:
            raise ValueError("base load must be positive")
        if self.swing_period_s <= 0:
            raise ValueError("swing period must be positive")

    def schedule_loss(self, start: float, duration: float,
                      magnitude_mw: float) -> None:
        """Disconnect ``magnitude_mw`` of load during
        [start, start+duration)."""
        if duration <= 0 or magnitude_mw <= 0:
            raise ValueError("loss duration and magnitude must be positive")
        self._losses.append((start, start + duration, magnitude_mw))

    def demand_at(self, now: float) -> float:
        """Instantaneous demand in MW."""
        demand = self.base_mw
        if self.swing_mw:
            demand += self.swing_mw * math.sin(
                2.0 * math.pi * now / self.swing_period_s)
        if self.noise_mw:
            demand += self.rng.gauss(0.0, self.noise_mw)
        for start, end, magnitude in self._losses:
            if start <= now < end:
                demand -= magnitude
        return max(0.0, demand)
