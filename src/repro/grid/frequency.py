"""System frequency dynamics (aggregate swing model).

A single-area equivalent: frequency deviation integrates the
generation/load imbalance scaled by the system inertia, with
load-damping pulling it back. Good enough to give AGC something real to
chase and to produce the frequency excursions of paper Figs. 18-19.
"""

from __future__ import annotations

from dataclasses import dataclass

from .constants import NOMINAL_FREQUENCY_HZ


@dataclass
class FrequencyModel:
    """df/dt = (P_gen - P_load) / M - D * df."""

    #: Equivalent inertia: MW-seconds needed to move frequency 1 Hz/s.
    inertia_mw_s_per_hz: float = 3000.0
    #: Load damping in MW shed per Hz of deviation, folded into a decay.
    damping_per_s: float = 0.08
    frequency_hz: float = NOMINAL_FREQUENCY_HZ

    def __post_init__(self) -> None:
        if self.inertia_mw_s_per_hz <= 0:
            raise ValueError("inertia must be positive")
        if self.damping_per_s < 0:
            raise ValueError("damping must be >= 0")

    @property
    def deviation_hz(self) -> float:
        return self.frequency_hz - NOMINAL_FREQUENCY_HZ

    def step(self, generation_mw: float, load_mw: float, dt: float) -> float:
        """Advance by ``dt`` seconds; return the new frequency."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        imbalance = generation_mw - load_mw
        deviation = self.deviation_hz
        deviation += (imbalance / self.inertia_mw_s_per_hz) * dt
        deviation -= self.damping_per_s * deviation * dt
        self.frequency_hz = NOMINAL_FREQUENCY_HZ + deviation
        return self.frequency_hz
