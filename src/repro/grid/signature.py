"""Generator-activation behaviour signature (paper Fig. 21).

The paper builds a state machine over three DPI-extracted series —
terminal voltage U, breaker status, and active power P — that captures
how a generator legitimately comes online:

    OFFLINE --(U rises)--> VOLTAGE_RAMP --(U ~ nominal)--> SYNCHRONIZED
        --(breaker 0->2)--> CONNECTED --(P rises)--> GENERATING

Any other path (e.g. active power flowing while the breaker reads
open) is an anomaly — exactly the cyber-physical whitelist idea the
paper proposes for SOCs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .constants import NOMINAL_VOLTAGE_KV
from .generator import BREAKER_CLOSED, BREAKER_OPEN


class SignatureState(enum.Enum):
    OFFLINE = "offline"
    VOLTAGE_RAMP = "voltage ramp"
    SYNCHRONIZED = "synchronized"
    CONNECTED = "connected"
    GENERATING = "generating"


@dataclass(frozen=True)
class SignatureEvent:
    """One state transition (or anomaly) in the signature machine."""

    time: float
    state: SignatureState
    anomaly: str | None = None

    @property
    def is_anomaly(self) -> bool:
        return self.anomaly is not None


@dataclass
class ActivationSignature:
    """Online detector consuming (time, U, breaker, P) samples."""

    nominal_voltage_kv: float = NOMINAL_VOLTAGE_KV
    #: Voltage below this fraction of nominal counts as "dead bus".
    dead_fraction: float = 0.05
    #: Voltage above this fraction of nominal counts as "at nominal".
    ready_fraction: float = 0.95
    #: Active power above this (MW) counts as delivering.
    power_threshold_mw: float = 2.0

    state: SignatureState = SignatureState.OFFLINE
    events: list[SignatureEvent] = field(default_factory=list)

    def _emit(self, time: float, state: SignatureState,
              anomaly: str | None = None) -> SignatureEvent:
        event = SignatureEvent(time=time, state=state, anomaly=anomaly)
        self.events.append(event)
        self.state = state
        return event

    def observe(self, time: float, voltage_kv: float, breaker: int,
                power_mw: float) -> SignatureEvent | None:
        """Feed one sample; return a transition/anomaly event, if any."""
        dead = voltage_kv < self.dead_fraction * self.nominal_voltage_kv
        ready = voltage_kv >= self.ready_fraction * self.nominal_voltage_kv
        delivering = power_mw >= self.power_threshold_mw

        # Global anomaly: power cannot flow through an open breaker.
        if delivering and breaker == BREAKER_OPEN:
            return self._emit(time, self.state,
                              anomaly="active power with breaker open")

        if self.state is SignatureState.OFFLINE:
            if breaker == BREAKER_CLOSED and dead:
                return self._emit(time, self.state,
                                  anomaly="breaker closed on dead bus")
            if not dead and not ready:
                return self._emit(time, SignatureState.VOLTAGE_RAMP)
            if ready:
                # Jumped straight to nominal between samples (paper
                # Fig. 18 shows exactly this 0 -> 120 kV jump).
                return self._emit(time, SignatureState.SYNCHRONIZED)
            return None

        if self.state is SignatureState.VOLTAGE_RAMP:
            if ready:
                return self._emit(time, SignatureState.SYNCHRONIZED)
            if dead:
                return self._emit(time, SignatureState.OFFLINE)
            return None

        if self.state is SignatureState.SYNCHRONIZED:
            if breaker == BREAKER_CLOSED:
                return self._emit(time, SignatureState.CONNECTED)
            if dead:
                return self._emit(time, SignatureState.OFFLINE)
            return None

        if self.state is SignatureState.CONNECTED:
            if delivering:
                return self._emit(time, SignatureState.GENERATING)
            if breaker == BREAKER_OPEN:
                return self._emit(time, SignatureState.SYNCHRONIZED)
            return None

        # GENERATING
        if breaker == BREAKER_OPEN or dead:
            return self._emit(time, SignatureState.OFFLINE)
        return None

    @property
    def anomalies(self) -> list[SignatureEvent]:
        return [event for event in self.events if event.is_anomaly]

    @property
    def completed_activation(self) -> bool:
        """True when the full expected activation path was observed."""
        states = [event.state for event in self.events
                  if not event.is_anomaly]
        expected = [SignatureState.VOLTAGE_RAMP,
                    SignatureState.SYNCHRONIZED,
                    SignatureState.CONNECTED,
                    SignatureState.GENERATING]
        iterator = iter(states)
        return all(any(state is target for state in iterator)
                   for target in expected)
