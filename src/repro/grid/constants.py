"""Power-system constants, including Table 1 of the paper."""

from __future__ import annotations

from dataclasses import dataclass

#: Nominal system frequency in Hz (US interconnections; paper Section 2).
NOMINAL_FREQUENCY_HZ = 60.0

#: Nominal transmission voltage used by the synthetic substations (kV).
NOMINAL_VOLTAGE_KV = 130.0


@dataclass(frozen=True)
class GridScale:
    """One row of paper Table 1: scale of a grid segment."""

    name: str
    power_watts: float
    area_km2: float
    voltage_kv_bound: str


#: Paper Table 1 — comparison of transmission vs distribution systems.
TRANSMISSION_SCALE = GridScale(name="Transmission", power_watts=1e9,
                               area_km2=4.67e6, voltage_kv_bound="> 110")
DISTRIBUTION_SCALE = GridScale(name="Distribution", power_watts=1e6,
                               area_km2=10_600.0, voltage_kv_bound="< 34.5")

TABLE1_ROWS = (TRANSMISSION_SCALE, DISTRIBUTION_SCALE)

#: Default AGC cycle period in seconds (typical EMS AGC runs every 2-4 s).
AGC_CYCLE_SECONDS = 4.0

#: Frequency bias used by the AGC area control error (MW per 0.1 Hz).
DEFAULT_FREQUENCY_BIAS_MW_PER_HZ = 250.0
