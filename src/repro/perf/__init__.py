"""Performance fast paths for the capture→analysis pipeline.

The expensive step of every benchmark run is regenerating the
synthetic Y1/Y2 captures. :mod:`repro.perf.cache` keys the generated
pcap bytes (plus the host-name map) on a content address derived from
the :class:`~repro.datasets.generate.CaptureConfig`, the year and a
digest of the generating code, so repeat runs skip simulation
entirely and deserialize the cached capture instead.
"""

from .cache import (CachedCapture, CacheStats, STATS, cache_dir,
                    cached_generate, capture_key, clear_cache,
                    code_digest, list_entries)

__all__ = [
    "CachedCapture",
    "CacheStats",
    "STATS",
    "cache_dir",
    "cached_generate",
    "capture_key",
    "clear_cache",
    "code_digest",
    "list_entries",
]
