"""Content-addressed capture cache.

Synthetic capture generation dominates the wall-clock of benchmark and
CI runs: simulating one year takes seconds while reading the resulting
pcap back takes milliseconds. This module caches the *output* of
:func:`repro.datasets.generate_capture` — the pcap bytes and the
host-name map — under a key that is a content address of everything
the output depends on:

* every field of the :class:`~repro.datasets.generate.CaptureConfig`,
* the capture year,
* a digest of the generating code (all ``.py`` sources of the
  ``datasets``, ``simnet``, ``grid``, ``netstack`` and ``iec104``
  packages).

Editing any generator source therefore invalidates the cache
automatically — stale entries can never be served.

Entries live under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro-uncharted``), three files per key:

* ``<key>.pcap`` — the capture, exactly as ``repro generate`` writes it;
* ``<key>.names.json`` — the host-name map (``ip -> name``);
* ``<key>.meta.json`` — provenance (year, config, counts, creation
  time) for ``repro cache ls``.

The simulator's timebase is integer microseconds, exactly what a
classic pcap record header stores, so the pcap round trip is lossless
by construction and no timestamp sidecar is needed. (Format 1 carried
a ``<key>.times.bin`` float64 sidecar; the format version below keys
those stale entries out.)

Writes go through a temporary file and ``os.replace`` so concurrent
benchmark processes never observe a half-written entry.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..datasets import CaptureConfig, generate_capture
from ..netstack.addresses import IPv4Address
from ..netstack.packet import CapturedPacket
from ..netstack.pcap import PcapReader

#: Environment variable overriding the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Packages whose sources feed the code digest: everything that can
#: change the bytes of a generated capture.
_PIPELINE_PACKAGES = ("datasets", "simnet", "grid", "netstack",
                      "iec104")

#: On-disk entry layout version. Bumped to 2 when the float-timestamp
#: sidecar was retired; format-1 entries miss cleanly and are
#: regenerated.
_FORMAT_VERSION = 2


def cache_dir() -> Path:
    """The cache root (not created until an entry is stored)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-uncharted"


@dataclass
class CacheStats:
    """Process-wide hit/miss counters (observable from benchmarks)."""

    hits: int = 0
    misses: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


#: The module-level counter instance every lookup updates.
STATS = CacheStats()

#: Memoized code digest (the sources cannot change mid-process).
_CODE_DIGEST: str | None = None


def code_digest() -> str:
    """SHA-256 over every pipeline source file (path + contents)."""
    global _CODE_DIGEST
    if _CODE_DIGEST is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for name in _PIPELINE_PACKAGES:
            for source in sorted((package_root / name).rglob("*.py")):
                digest.update(str(source.relative_to(package_root))
                              .encode())
                digest.update(b"\0")
                digest.update(source.read_bytes())
                digest.update(b"\0")
        _CODE_DIGEST = digest.hexdigest()
    return _CODE_DIGEST


def capture_key(year: int, config: CaptureConfig) -> str:
    """Content address of ``generate_capture(year, config)``.

    ``workers`` is deliberately part of the key: the windowed mode
    produces different (equally valid) bytes than the monolithic
    default, so the two must never share an entry.
    """
    document = {"year": year, "config": asdict(config),
                "code": code_digest(), "format": _FORMAT_VERSION}
    serialized = json.dumps(document, sort_keys=True)
    return hashlib.sha256(serialized.encode()).hexdigest()


@dataclass(slots=True)
class CachedCapture:
    """A capture deserialized from the cache.

    Exposes the two members the analysis pipeline and the benchmark
    fixtures consume — ``packets`` and :meth:`host_names` — plus the
    provenance key. (The full :class:`SyntheticCapture` carries live
    simulation objects that are not meaningful to rehydrate.)
    """

    year: int
    key: str
    packets: list[CapturedPacket]
    names: dict[IPv4Address, str] = field(default_factory=dict)

    def host_names(self) -> dict[IPv4Address, str]:
        return self.names


def _entry_paths(key: str) -> dict[str, Path]:
    root = cache_dir()
    return {"pcap": root / f"{key}.pcap",
            "names": root / f"{key}.names.json",
            "meta": root / f"{key}.meta.json"}


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def store(year: int, config: CaptureConfig, capture) -> str:
    """Write ``capture`` to the cache; returns its key."""
    key = capture_key(year, config)
    paths = _entry_paths(key)
    cache_dir().mkdir(parents=True, exist_ok=True)

    buffer = io.BytesIO()
    capture.to_pcap(buffer)
    _atomic_write(paths["pcap"], buffer.getvalue())

    names = {str(address): name
             for address, name in capture.host_names().items()}
    _atomic_write(paths["names"],
                  json.dumps(names, indent=2, sort_keys=True).encode())

    meta = {"year": year, "config": asdict(config),
            "packets": len(capture.packets),
            "pcap_bytes": paths["pcap"].stat().st_size,
            "code": code_digest(), "format": _FORMAT_VERSION,
            "created": time.time()}
    _atomic_write(paths["meta"],
                  json.dumps(meta, indent=2, sort_keys=True).encode())
    return key


def load(key: str, year: int) -> CachedCapture | None:
    """Deserialize the entry for ``key``; None if absent/incomplete."""
    paths = _entry_paths(key)
    if not all(path.exists() for path in paths.values()):
        return None
    with open(paths["pcap"], "rb") as stream:
        records = list(PcapReader(stream))
    # The pcap header's integer microseconds ARE the canonical tick;
    # decoding reconstructs every packet bit-identically.
    packets = []
    for record in records:
        packet = CapturedPacket.decode(record.time_us, record.data)
        if packet is not None:
            packets.append(packet)
    names = {IPv4Address.parse(address): name
             for address, name in
             json.loads(paths["names"].read_text()).items()}
    return CachedCapture(year=year, key=key, packets=packets,
                         names=names)


def cached_generate(year: int,
                    config: CaptureConfig | None = None):
    """``generate_capture`` behind the content-addressed cache.

    On a hit returns a :class:`CachedCapture`; on a miss generates,
    stores and returns the fresh :class:`SyntheticCapture`. Both
    expose ``packets`` and ``host_names()``, which is the entire
    surface the analysis pipeline needs.
    """
    config = config or CaptureConfig()
    key = capture_key(year, config)
    cached = load(key, year)
    if cached is not None:
        STATS.hits += 1
        return cached
    STATS.misses += 1
    capture = generate_capture(year, config)
    store(year, config, capture)
    return capture


def list_entries() -> list[dict]:
    """Metadata of every complete cache entry, newest first."""
    root = cache_dir()
    if not root.is_dir():
        return []
    entries = []
    for meta_path in sorted(root.glob("*.meta.json")):
        key = meta_path.name[:-len(".meta.json")]
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError):
            continue
        meta["key"] = key
        entries.append(meta)
    entries.sort(key=lambda meta: meta.get("created", 0.0),
                 reverse=True)
    return entries


def clear_cache() -> int:
    """Delete every cache entry; returns the number removed."""
    root = cache_dir()
    if not root.is_dir():
        return 0
    removed = 0
    for meta_path in list(root.glob("*.meta.json")):
        key = meta_path.name[:-len(".meta.json")]
        # Include the retired format-1 float sidecar in the sweep.
        stale = [*_entry_paths(key).values(),
                 root / f"{key}.times.bin"]
        for path in stale:
            try:
                path.unlink()
            except FileNotFoundError:
                pass
        removed += 1
    for leftover in root.glob("*.tmp"):
        try:
            leftover.unlink()
        except FileNotFoundError:
            pass
    return removed
